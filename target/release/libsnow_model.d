/root/repo/target/release/libsnow_model.rlib: /root/repo/crates/model/src/lib.rs /root/repo/crates/model/src/script.rs /root/repo/crates/model/src/world.rs /root/repo/vendor/rand/src/lib.rs
