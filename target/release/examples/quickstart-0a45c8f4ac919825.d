/root/repo/target/release/examples/quickstart-0a45c8f4ac919825.d: crates/snow/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0a45c8f4ac919825: crates/snow/../../examples/quickstart.rs

crates/snow/../../examples/quickstart.rs:
