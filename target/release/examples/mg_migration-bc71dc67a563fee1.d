/root/repo/target/release/examples/mg_migration-bc71dc67a563fee1.d: crates/snow/../../examples/mg_migration.rs

/root/repo/target/release/examples/mg_migration-bc71dc67a563fee1: crates/snow/../../examples/mg_migration.rs

crates/snow/../../examples/mg_migration.rs:
