/root/repo/target/release/examples/heterogeneous-5163905164f6a520.d: crates/snow/../../examples/heterogeneous.rs

/root/repo/target/release/examples/heterogeneous-5163905164f6a520: crates/snow/../../examples/heterogeneous.rs

crates/snow/../../examples/heterogeneous.rs:
