/root/repo/target/release/examples/ring_mobility-68493c40ee696f44.d: crates/snow/../../examples/ring_mobility.rs

/root/repo/target/release/examples/ring_mobility-68493c40ee696f44: crates/snow/../../examples/ring_mobility.rs

crates/snow/../../examples/ring_mobility.rs:
