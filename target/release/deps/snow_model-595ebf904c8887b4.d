/root/repo/target/release/deps/snow_model-595ebf904c8887b4.d: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

/root/repo/target/release/deps/libsnow_model-595ebf904c8887b4.rlib: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

/root/repo/target/release/deps/libsnow_model-595ebf904c8887b4.rmeta: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

crates/model/src/lib.rs:
crates/model/src/script.rs:
crates/model/src/world.rs:
