/root/repo/target/release/deps/rand-7331c96af3bf579c.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7331c96af3bf579c.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7331c96af3bf579c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
