/root/repo/target/release/deps/ablation-7c74b32478459920.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-7c74b32478459920: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
