/root/repo/target/release/deps/state_transfer-5edc21aec63e87dc.d: crates/bench/benches/state_transfer.rs

/root/repo/target/release/deps/state_transfer-5edc21aec63e87dc: crates/bench/benches/state_transfer.rs

crates/bench/benches/state_transfer.rs:
