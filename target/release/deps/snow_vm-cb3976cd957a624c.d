/root/repo/target/release/deps/snow_vm-cb3976cd957a624c.d: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs

/root/repo/target/release/deps/libsnow_vm-cb3976cd957a624c.rlib: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs

/root/repo/target/release/deps/libsnow_vm-cb3976cd957a624c.rmeta: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs

crates/vm/src/lib.rs:
crates/vm/src/daemon.rs:
crates/vm/src/host.rs:
crates/vm/src/ids.rs:
crates/vm/src/post.rs:
crates/vm/src/process.rs:
crates/vm/src/vm.rs:
crates/vm/src/wire.rs:
