/root/repo/target/release/deps/table2-3b9556908aa099a3.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-3b9556908aa099a3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
