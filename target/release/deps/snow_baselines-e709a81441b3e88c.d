/root/repo/target/release/deps/snow_baselines-e709a81441b3e88c.d: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

/root/repo/target/release/deps/libsnow_baselines-e709a81441b3e88c.rlib: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

/root/repo/target/release/deps/libsnow_baselines-e709a81441b3e88c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

crates/baselines/src/lib.rs:
crates/baselines/src/broadcast.rs:
crates/baselines/src/cocheck.rs:
crates/baselines/src/forwarding.rs:
