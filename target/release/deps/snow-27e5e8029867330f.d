/root/repo/target/release/deps/snow-27e5e8029867330f.d: crates/snow/src/lib.rs

/root/repo/target/release/deps/libsnow-27e5e8029867330f.rlib: crates/snow/src/lib.rs

/root/repo/target/release/deps/libsnow-27e5e8029867330f.rmeta: crates/snow/src/lib.rs

crates/snow/src/lib.rs:
