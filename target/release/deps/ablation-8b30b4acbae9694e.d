/root/repo/target/release/deps/ablation-8b30b4acbae9694e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-8b30b4acbae9694e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
