/root/repo/target/release/deps/table1-01fdf9d8988ced9a.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-01fdf9d8988ced9a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
