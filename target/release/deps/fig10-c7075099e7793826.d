/root/repo/target/release/deps/fig10-c7075099e7793826.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-c7075099e7793826: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
