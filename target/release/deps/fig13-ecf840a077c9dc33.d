/root/repo/target/release/deps/fig13-ecf840a077c9dc33.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-ecf840a077c9dc33: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
