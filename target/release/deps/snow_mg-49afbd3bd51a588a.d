/root/repo/target/release/deps/snow_mg-49afbd3bd51a588a.d: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/release/deps/libsnow_mg-49afbd3bd51a588a.rlib: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/release/deps/libsnow_mg-49afbd3bd51a588a.rmeta: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

crates/mg/src/lib.rs:
crates/mg/src/checkpoint.rs:
crates/mg/src/comm.rs:
crates/mg/src/grid.rs:
crates/mg/src/stencil.rs:
crates/mg/src/vcycle.rs:
crates/mg/src/workloads.rs:
