/root/repo/target/release/deps/snow_trace-d7a3de2bfcabdcbe.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libsnow_trace-d7a3de2bfcabdcbe.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libsnow_trace-d7a3de2bfcabdcbe.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/event.rs:
crates/trace/src/report.rs:
crates/trace/src/spacetime.rs:
crates/trace/src/tracer.rs:
