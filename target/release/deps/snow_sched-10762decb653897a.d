/root/repo/target/release/deps/snow_sched-10762decb653897a.d: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libsnow_sched-10762decb653897a.rlib: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libsnow_sched-10762decb653897a.rmeta: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/client.rs:
crates/sched/src/directory.rs:
crates/sched/src/records.rs:
crates/sched/src/scheduler.rs:
