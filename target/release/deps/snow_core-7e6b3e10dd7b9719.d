/root/repo/target/release/deps/snow_core-7e6b3e10dd7b9719.d: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/release/deps/libsnow_core-7e6b3e10dd7b9719.rlib: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/release/deps/libsnow_core-7e6b3e10dd7b9719.rmeta: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

crates/core/src/lib.rs:
crates/core/src/compat.rs:
crates/core/src/computation.rs:
crates/core/src/error.rs:
crates/core/src/migrate.rs:
crates/core/src/process.rs:
crates/core/src/rml.rs:
