/root/repo/target/release/deps/criterion-e0f4815500d28ff5.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e0f4815500d28ff5.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e0f4815500d28ff5.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
