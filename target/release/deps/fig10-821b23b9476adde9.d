/root/repo/target/release/deps/fig10-821b23b9476adde9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-821b23b9476adde9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
