/root/repo/target/release/deps/snow_state-baf1888400cc7d28.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

/root/repo/target/release/deps/libsnow_state-baf1888400cc7d28.rlib: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

/root/repo/target/release/deps/libsnow_state-baf1888400cc7d28.rmeta: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/snapshot.rs:
