/root/repo/target/release/deps/snow_codec-188e0cc0901ad28c.d: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

/root/repo/target/release/deps/libsnow_codec-188e0cc0901ad28c.rlib: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

/root/repo/target/release/deps/libsnow_codec-188e0cc0901ad28c.rmeta: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

crates/codec/src/lib.rs:
crates/codec/src/error.rs:
crates/codec/src/host.rs:
crates/codec/src/value.rs:
crates/codec/src/wire.rs:
