/root/repo/target/release/deps/snow_bench-9d0530a591e1d74f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsnow_bench-9d0530a591e1d74f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsnow_bench-9d0530a591e1d74f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
