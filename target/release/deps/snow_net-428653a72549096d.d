/root/repo/target/release/deps/snow_net-428653a72549096d.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

/root/repo/target/release/deps/libsnow_net-428653a72549096d.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

/root/repo/target/release/deps/libsnow_net-428653a72549096d.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/datagram.rs:
crates/net/src/link.rs:
