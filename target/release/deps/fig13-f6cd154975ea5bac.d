/root/repo/target/release/deps/fig13-f6cd154975ea5bac.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-f6cd154975ea5bac: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
