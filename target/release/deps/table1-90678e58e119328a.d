/root/repo/target/release/deps/table1-90678e58e119328a.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-90678e58e119328a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
