/root/repo/target/release/deps/snow-fa0c4f30aba15f3a.d: crates/snow/src/lib.rs

/root/repo/target/release/deps/libsnow-fa0c4f30aba15f3a.rlib: crates/snow/src/lib.rs

/root/repo/target/release/deps/libsnow-fa0c4f30aba15f3a.rmeta: crates/snow/src/lib.rs

crates/snow/src/lib.rs:
