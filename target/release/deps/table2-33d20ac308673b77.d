/root/repo/target/release/deps/table2-33d20ac308673b77.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-33d20ac308673b77: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
