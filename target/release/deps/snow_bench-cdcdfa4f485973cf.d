/root/repo/target/release/deps/snow_bench-cdcdfa4f485973cf.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsnow_bench-cdcdfa4f485973cf.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsnow_bench-cdcdfa4f485973cf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
