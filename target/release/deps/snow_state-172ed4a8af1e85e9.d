/root/repo/target/release/deps/snow_state-172ed4a8af1e85e9.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

/root/repo/target/release/deps/libsnow_state-172ed4a8af1e85e9.rlib: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

/root/repo/target/release/deps/libsnow_state-172ed4a8af1e85e9.rmeta: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/pipeline.rs:
crates/state/src/snapshot.rs:
