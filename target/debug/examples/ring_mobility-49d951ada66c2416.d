/root/repo/target/debug/examples/ring_mobility-49d951ada66c2416.d: crates/snow/../../examples/ring_mobility.rs

/root/repo/target/debug/examples/ring_mobility-49d951ada66c2416: crates/snow/../../examples/ring_mobility.rs

crates/snow/../../examples/ring_mobility.rs:
