/root/repo/target/debug/examples/quickstart-b1031bba4b2738c2.d: crates/snow/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b1031bba4b2738c2.rmeta: crates/snow/../../examples/quickstart.rs Cargo.toml

crates/snow/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
