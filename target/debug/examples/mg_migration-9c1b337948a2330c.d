/root/repo/target/debug/examples/mg_migration-9c1b337948a2330c.d: crates/snow/../../examples/mg_migration.rs

/root/repo/target/debug/examples/mg_migration-9c1b337948a2330c: crates/snow/../../examples/mg_migration.rs

crates/snow/../../examples/mg_migration.rs:
