/root/repo/target/debug/examples/heterogeneous-8992069569c88a6a.d: crates/snow/../../examples/heterogeneous.rs

/root/repo/target/debug/examples/heterogeneous-8992069569c88a6a: crates/snow/../../examples/heterogeneous.rs

crates/snow/../../examples/heterogeneous.rs:
