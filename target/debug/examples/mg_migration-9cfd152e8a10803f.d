/root/repo/target/debug/examples/mg_migration-9cfd152e8a10803f.d: crates/snow/../../examples/mg_migration.rs

/root/repo/target/debug/examples/mg_migration-9cfd152e8a10803f: crates/snow/../../examples/mg_migration.rs

crates/snow/../../examples/mg_migration.rs:
