/root/repo/target/debug/examples/deadlock_scenario-55cbb069429c0be7.d: crates/snow/../../examples/deadlock_scenario.rs

/root/repo/target/debug/examples/deadlock_scenario-55cbb069429c0be7: crates/snow/../../examples/deadlock_scenario.rs

crates/snow/../../examples/deadlock_scenario.rs:
