/root/repo/target/debug/examples/deadlock_scenario-b60a113f7410ef06.d: crates/snow/../../examples/deadlock_scenario.rs Cargo.toml

/root/repo/target/debug/examples/libdeadlock_scenario-b60a113f7410ef06.rmeta: crates/snow/../../examples/deadlock_scenario.rs Cargo.toml

crates/snow/../../examples/deadlock_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
