/root/repo/target/debug/examples/deadlock_scenario-c3f32ae7fcaae9d2.d: crates/snow/../../examples/deadlock_scenario.rs

/root/repo/target/debug/examples/deadlock_scenario-c3f32ae7fcaae9d2: crates/snow/../../examples/deadlock_scenario.rs

crates/snow/../../examples/deadlock_scenario.rs:
