/root/repo/target/debug/examples/quickstart-217651375aee7e1a.d: crates/snow/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-217651375aee7e1a: crates/snow/../../examples/quickstart.rs

crates/snow/../../examples/quickstart.rs:
