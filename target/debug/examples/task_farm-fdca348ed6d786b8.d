/root/repo/target/debug/examples/task_farm-fdca348ed6d786b8.d: crates/snow/../../examples/task_farm.rs Cargo.toml

/root/repo/target/debug/examples/libtask_farm-fdca348ed6d786b8.rmeta: crates/snow/../../examples/task_farm.rs Cargo.toml

crates/snow/../../examples/task_farm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
