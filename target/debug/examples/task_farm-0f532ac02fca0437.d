/root/repo/target/debug/examples/task_farm-0f532ac02fca0437.d: crates/snow/../../examples/task_farm.rs

/root/repo/target/debug/examples/task_farm-0f532ac02fca0437: crates/snow/../../examples/task_farm.rs

crates/snow/../../examples/task_farm.rs:
