/root/repo/target/debug/examples/mg_migration-5fafe4e537d4c53d.d: crates/snow/../../examples/mg_migration.rs Cargo.toml

/root/repo/target/debug/examples/libmg_migration-5fafe4e537d4c53d.rmeta: crates/snow/../../examples/mg_migration.rs Cargo.toml

crates/snow/../../examples/mg_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
