/root/repo/target/debug/examples/heterogeneous-195297569b8184e4.d: crates/snow/../../examples/heterogeneous.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneous-195297569b8184e4.rmeta: crates/snow/../../examples/heterogeneous.rs Cargo.toml

crates/snow/../../examples/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
