/root/repo/target/debug/examples/task_farm-01f90417a043ca29.d: crates/snow/../../examples/task_farm.rs

/root/repo/target/debug/examples/task_farm-01f90417a043ca29: crates/snow/../../examples/task_farm.rs

crates/snow/../../examples/task_farm.rs:
