/root/repo/target/debug/examples/heterogeneous-eb08e3e390312648.d: crates/snow/../../examples/heterogeneous.rs

/root/repo/target/debug/examples/heterogeneous-eb08e3e390312648: crates/snow/../../examples/heterogeneous.rs

crates/snow/../../examples/heterogeneous.rs:
