/root/repo/target/debug/examples/ring_mobility-7ad0eab30d440512.d: crates/snow/../../examples/ring_mobility.rs

/root/repo/target/debug/examples/ring_mobility-7ad0eab30d440512: crates/snow/../../examples/ring_mobility.rs

crates/snow/../../examples/ring_mobility.rs:
