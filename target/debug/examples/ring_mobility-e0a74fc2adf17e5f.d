/root/repo/target/debug/examples/ring_mobility-e0a74fc2adf17e5f.d: crates/snow/../../examples/ring_mobility.rs Cargo.toml

/root/repo/target/debug/examples/libring_mobility-e0a74fc2adf17e5f.rmeta: crates/snow/../../examples/ring_mobility.rs Cargo.toml

crates/snow/../../examples/ring_mobility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
