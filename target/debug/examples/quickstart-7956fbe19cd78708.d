/root/repo/target/debug/examples/quickstart-7956fbe19cd78708.d: crates/snow/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7956fbe19cd78708: crates/snow/../../examples/quickstart.rs

crates/snow/../../examples/quickstart.rs:
