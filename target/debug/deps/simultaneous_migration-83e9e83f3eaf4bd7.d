/root/repo/target/debug/deps/simultaneous_migration-83e9e83f3eaf4bd7.d: crates/snow/../../tests/simultaneous_migration.rs

/root/repo/target/debug/deps/simultaneous_migration-83e9e83f3eaf4bd7: crates/snow/../../tests/simultaneous_migration.rs

crates/snow/../../tests/simultaneous_migration.rs:
