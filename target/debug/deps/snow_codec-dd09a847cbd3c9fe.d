/root/repo/target/debug/deps/snow_codec-dd09a847cbd3c9fe.d: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

/root/repo/target/debug/deps/snow_codec-dd09a847cbd3c9fe: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

crates/codec/src/lib.rs:
crates/codec/src/error.rs:
crates/codec/src/host.rs:
crates/codec/src/value.rs:
crates/codec/src/wire.rs:
