/root/repo/target/debug/deps/snow_state-75520d177f8ea8bc.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

/root/repo/target/debug/deps/snow_state-75520d177f8ea8bc: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/snapshot.rs:
