/root/repo/target/debug/deps/snow_mg-2d38ab02df6303dc.d: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/debug/deps/libsnow_mg-2d38ab02df6303dc.rlib: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/debug/deps/libsnow_mg-2d38ab02df6303dc.rmeta: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

crates/mg/src/lib.rs:
crates/mg/src/checkpoint.rs:
crates/mg/src/comm.rs:
crates/mg/src/grid.rs:
crates/mg/src/stencil.rs:
crates/mg/src/vcycle.rs:
crates/mg/src/workloads.rs:
