/root/repo/target/debug/deps/snow-c0d6ee896baf1e04.d: crates/snow/src/lib.rs

/root/repo/target/debug/deps/libsnow-c0d6ee896baf1e04.rlib: crates/snow/src/lib.rs

/root/repo/target/debug/deps/libsnow-c0d6ee896baf1e04.rmeta: crates/snow/src/lib.rs

crates/snow/src/lib.rs:
