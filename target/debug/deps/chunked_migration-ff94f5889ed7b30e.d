/root/repo/target/debug/deps/chunked_migration-ff94f5889ed7b30e.d: crates/snow/../../tests/chunked_migration.rs Cargo.toml

/root/repo/target/debug/deps/libchunked_migration-ff94f5889ed7b30e.rmeta: crates/snow/../../tests/chunked_migration.rs Cargo.toml

crates/snow/../../tests/chunked_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
