/root/repo/target/debug/deps/state_transfer_modeled-bab6de4b1299953d.d: crates/bench/benches/state_transfer.rs Cargo.toml

/root/repo/target/debug/deps/libstate_transfer_modeled-bab6de4b1299953d.rmeta: crates/bench/benches/state_transfer.rs Cargo.toml

crates/bench/benches/state_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
