/root/repo/target/debug/deps/migration_smoke-66d01bbb76be114c.d: crates/core/tests/migration_smoke.rs

/root/repo/target/debug/deps/migration_smoke-66d01bbb76be114c: crates/core/tests/migration_smoke.rs

crates/core/tests/migration_smoke.rs:
