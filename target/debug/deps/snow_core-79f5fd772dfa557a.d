/root/repo/target/debug/deps/snow_core-79f5fd772dfa557a.d: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/debug/deps/libsnow_core-79f5fd772dfa557a.rlib: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/debug/deps/libsnow_core-79f5fd772dfa557a.rmeta: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

crates/core/src/lib.rs:
crates/core/src/compat.rs:
crates/core/src/computation.rs:
crates/core/src/error.rs:
crates/core/src/migrate.rs:
crates/core/src/process.rs:
crates/core/src/rml.rs:
