/root/repo/target/debug/deps/snow_mg-c0782bedc14a12d0.d: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/debug/deps/snow_mg-c0782bedc14a12d0: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

crates/mg/src/lib.rs:
crates/mg/src/checkpoint.rs:
crates/mg/src/comm.rs:
crates/mg/src/grid.rs:
crates/mg/src/stencil.rs:
crates/mg/src/vcycle.rs:
crates/mg/src/workloads.rs:
