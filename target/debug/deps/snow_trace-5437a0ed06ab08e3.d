/root/repo/target/debug/deps/snow_trace-5437a0ed06ab08e3.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/snow_trace-5437a0ed06ab08e3: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/event.rs:
crates/trace/src/report.rs:
crates/trace/src/spacetime.rs:
crates/trace/src/tracer.rs:
