/root/repo/target/debug/deps/dynamic_hosts-1da7891b31167e84.d: crates/snow/../../tests/dynamic_hosts.rs

/root/repo/target/debug/deps/dynamic_hosts-1da7891b31167e84: crates/snow/../../tests/dynamic_hosts.rs

crates/snow/../../tests/dynamic_hosts.rs:
