/root/repo/target/debug/deps/snow_trace-aa10c523a7f90a48.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libsnow_trace-aa10c523a7f90a48.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libsnow_trace-aa10c523a7f90a48.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/event.rs:
crates/trace/src/report.rs:
crates/trace/src/spacetime.rs:
crates/trace/src/tracer.rs:
