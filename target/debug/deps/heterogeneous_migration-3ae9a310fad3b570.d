/root/repo/target/debug/deps/heterogeneous_migration-3ae9a310fad3b570.d: crates/snow/../../tests/heterogeneous_migration.rs

/root/repo/target/debug/deps/heterogeneous_migration-3ae9a310fad3b570: crates/snow/../../tests/heterogeneous_migration.rs

crates/snow/../../tests/heterogeneous_migration.rs:
