/root/repo/target/debug/deps/snow_baselines-d143d89e8f6bb63f.d: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

/root/repo/target/debug/deps/snow_baselines-d143d89e8f6bb63f: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

crates/baselines/src/lib.rs:
crates/baselines/src/broadcast.rs:
crates/baselines/src/cocheck.rs:
crates/baselines/src/forwarding.rs:
