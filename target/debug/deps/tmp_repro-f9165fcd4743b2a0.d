/root/repo/target/debug/deps/tmp_repro-f9165fcd4743b2a0.d: crates/core/tests/tmp_repro.rs

/root/repo/target/debug/deps/tmp_repro-f9165fcd4743b2a0: crates/core/tests/tmp_repro.rs

crates/core/tests/tmp_repro.rs:
