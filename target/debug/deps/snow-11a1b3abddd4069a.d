/root/repo/target/debug/deps/snow-11a1b3abddd4069a.d: crates/snow/src/lib.rs

/root/repo/target/debug/deps/snow-11a1b3abddd4069a: crates/snow/src/lib.rs

crates/snow/src/lib.rs:
