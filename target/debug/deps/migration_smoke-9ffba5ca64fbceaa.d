/root/repo/target/debug/deps/migration_smoke-9ffba5ca64fbceaa.d: crates/core/tests/migration_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libmigration_smoke-9ffba5ca64fbceaa.rmeta: crates/core/tests/migration_smoke.rs Cargo.toml

crates/core/tests/migration_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
