/root/repo/target/debug/deps/mg_snow-eab98139bef98467.d: crates/mg/tests/mg_snow.rs Cargo.toml

/root/repo/target/debug/deps/libmg_snow-eab98139bef98467.rmeta: crates/mg/tests/mg_snow.rs Cargo.toml

crates/mg/tests/mg_snow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
