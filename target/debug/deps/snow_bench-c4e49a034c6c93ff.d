/root/repo/target/debug/deps/snow_bench-c4e49a034c6c93ff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/snow_bench-c4e49a034c6c93ff: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
