/root/repo/target/debug/deps/prop_pipeline-521b70c1bdbee615.d: crates/state/tests/prop_pipeline.rs

/root/repo/target/debug/deps/prop_pipeline-521b70c1bdbee615: crates/state/tests/prop_pipeline.rs

crates/state/tests/prop_pipeline.rs:
