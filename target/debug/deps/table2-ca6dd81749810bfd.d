/root/repo/target/debug/deps/table2-ca6dd81749810bfd.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ca6dd81749810bfd: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
