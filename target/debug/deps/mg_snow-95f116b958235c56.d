/root/repo/target/debug/deps/mg_snow-95f116b958235c56.d: crates/mg/tests/mg_snow.rs

/root/repo/target/debug/deps/mg_snow-95f116b958235c56: crates/mg/tests/mg_snow.rs

crates/mg/tests/mg_snow.rs:
