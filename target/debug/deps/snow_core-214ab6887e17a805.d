/root/repo/target/debug/deps/snow_core-214ab6887e17a805.d: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/debug/deps/libsnow_core-214ab6887e17a805.rlib: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/debug/deps/libsnow_core-214ab6887e17a805.rmeta: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

crates/core/src/lib.rs:
crates/core/src/compat.rs:
crates/core/src/computation.rs:
crates/core/src/error.rs:
crates/core/src/migrate.rs:
crates/core/src/process.rs:
crates/core/src/rml.rs:
