/root/repo/target/debug/deps/scale-33736388a0fa44a1.d: crates/snow/../../tests/scale.rs

/root/repo/target/debug/deps/scale-33736388a0fa44a1: crates/snow/../../tests/scale.rs

crates/snow/../../tests/scale.rs:
