/root/repo/target/debug/deps/crossbeam-0241737b8b67926b.d: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs

/root/repo/target/debug/deps/crossbeam-0241737b8b67926b: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs

vendor/crossbeam/src/lib.rs:
vendor/crossbeam/src/channel.rs:
