/root/repo/target/debug/deps/snow_model-19ae1aafa750cd07.d: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_model-19ae1aafa750cd07.rmeta: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/script.rs:
crates/model/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
