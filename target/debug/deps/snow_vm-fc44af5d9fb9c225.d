/root/repo/target/debug/deps/snow_vm-fc44af5d9fb9c225.d: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs

/root/repo/target/debug/deps/libsnow_vm-fc44af5d9fb9c225.rlib: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs

/root/repo/target/debug/deps/libsnow_vm-fc44af5d9fb9c225.rmeta: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs

crates/vm/src/lib.rs:
crates/vm/src/daemon.rs:
crates/vm/src/host.rs:
crates/vm/src/ids.rs:
crates/vm/src/post.rs:
crates/vm/src/process.rs:
crates/vm/src/vm.rs:
crates/vm/src/wire.rs:
