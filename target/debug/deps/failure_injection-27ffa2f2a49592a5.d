/root/repo/target/debug/deps/failure_injection-27ffa2f2a49592a5.d: crates/snow/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-27ffa2f2a49592a5: crates/snow/../../tests/failure_injection.rs

crates/snow/../../tests/failure_injection.rs:
