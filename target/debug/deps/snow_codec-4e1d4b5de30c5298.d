/root/repo/target/debug/deps/snow_codec-4e1d4b5de30c5298.d: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

/root/repo/target/debug/deps/libsnow_codec-4e1d4b5de30c5298.rlib: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

/root/repo/target/debug/deps/libsnow_codec-4e1d4b5de30c5298.rmeta: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs

crates/codec/src/lib.rs:
crates/codec/src/error.rs:
crates/codec/src/host.rs:
crates/codec/src/value.rs:
crates/codec/src/wire.rs:
