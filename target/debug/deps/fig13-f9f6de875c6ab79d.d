/root/repo/target/debug/deps/fig13-f9f6de875c6ab79d.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-f9f6de875c6ab79d: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
