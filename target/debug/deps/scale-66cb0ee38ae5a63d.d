/root/repo/target/debug/deps/scale-66cb0ee38ae5a63d.d: crates/snow/../../tests/scale.rs

/root/repo/target/debug/deps/scale-66cb0ee38ae5a63d: crates/snow/../../tests/scale.rs

crates/snow/../../tests/scale.rs:
