/root/repo/target/debug/deps/simultaneous_migration-5e6b44c09001feb0.d: crates/snow/../../tests/simultaneous_migration.rs Cargo.toml

/root/repo/target/debug/deps/libsimultaneous_migration-5e6b44c09001feb0.rmeta: crates/snow/../../tests/simultaneous_migration.rs Cargo.toml

crates/snow/../../tests/simultaneous_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
