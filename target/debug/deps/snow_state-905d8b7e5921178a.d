/root/repo/target/debug/deps/snow_state-905d8b7e5921178a.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

/root/repo/target/debug/deps/libsnow_state-905d8b7e5921178a.rlib: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

/root/repo/target/debug/deps/libsnow_state-905d8b7e5921178a.rmeta: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/pipeline.rs:
crates/state/src/snapshot.rs:
