/root/repo/target/debug/deps/snow-42ea3235beb18af3.d: crates/snow/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsnow-42ea3235beb18af3.rmeta: crates/snow/src/lib.rs Cargo.toml

crates/snow/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
