/root/repo/target/debug/deps/snow_state-cd6c243f8def3b7c.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_state-cd6c243f8def3b7c.rmeta: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs Cargo.toml

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/pipeline.rs:
crates/state/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
