/root/repo/target/debug/deps/snow_model-3b2a2d914a4fde9b.d: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

/root/repo/target/debug/deps/libsnow_model-3b2a2d914a4fde9b.rlib: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

/root/repo/target/debug/deps/libsnow_model-3b2a2d914a4fde9b.rmeta: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

crates/model/src/lib.rs:
crates/model/src/script.rs:
crates/model/src/world.rs:
