/root/repo/target/debug/deps/ordering-c63a61bd9fcd91db.d: crates/snow/../../tests/ordering.rs

/root/repo/target/debug/deps/ordering-c63a61bd9fcd91db: crates/snow/../../tests/ordering.rs

crates/snow/../../tests/ordering.rs:
