/root/repo/target/debug/deps/snow_core-256540fa424acdf7.d: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_core-256540fa424acdf7.rmeta: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compat.rs:
crates/core/src/computation.rs:
crates/core/src/error.rs:
crates/core/src/migrate.rs:
crates/core/src/process.rs:
crates/core/src/rml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
