/root/repo/target/debug/deps/state_transfer_modeled-50a5ba1bed6de0be.d: crates/bench/benches/state_transfer.rs

/root/repo/target/debug/deps/state_transfer_modeled-50a5ba1bed6de0be: crates/bench/benches/state_transfer.rs

crates/bench/benches/state_transfer.rs:
