/root/repo/target/debug/deps/snow-2686a470de43d80b.d: crates/snow/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsnow-2686a470de43d80b.rmeta: crates/snow/src/lib.rs Cargo.toml

crates/snow/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
