/root/repo/target/debug/deps/snow_trace-35b1a32005dec0f3.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_trace-35b1a32005dec0f3.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/event.rs crates/trace/src/report.rs crates/trace/src/spacetime.rs crates/trace/src/tracer.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/event.rs:
crates/trace/src/report.rs:
crates/trace/src/spacetime.rs:
crates/trace/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
