/root/repo/target/debug/deps/fig10-be3af84bdde1767d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-be3af84bdde1767d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
