/root/repo/target/debug/deps/deadlock_freedom-0b4a9d0386bbdb0a.d: crates/snow/../../tests/deadlock_freedom.rs

/root/repo/target/debug/deps/deadlock_freedom-0b4a9d0386bbdb0a: crates/snow/../../tests/deadlock_freedom.rs

crates/snow/../../tests/deadlock_freedom.rs:
