/root/repo/target/debug/deps/prop_pipeline-9e359ce46bb25ea1.d: crates/state/tests/prop_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libprop_pipeline-9e359ce46bb25ea1.rmeta: crates/state/tests/prop_pipeline.rs Cargo.toml

crates/state/tests/prop_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
