/root/repo/target/debug/deps/prop_state-8c7c4e3117d8aa46.d: crates/state/tests/prop_state.rs Cargo.toml

/root/repo/target/debug/deps/libprop_state-8c7c4e3117d8aa46.rmeta: crates/state/tests/prop_state.rs Cargo.toml

crates/state/tests/prop_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
