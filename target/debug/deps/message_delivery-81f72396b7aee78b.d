/root/repo/target/debug/deps/message_delivery-81f72396b7aee78b.d: crates/snow/../../tests/message_delivery.rs

/root/repo/target/debug/deps/message_delivery-81f72396b7aee78b: crates/snow/../../tests/message_delivery.rs

crates/snow/../../tests/message_delivery.rs:
