/root/repo/target/debug/deps/heterogeneous_migration-21e843fb0463ba44.d: crates/snow/../../tests/heterogeneous_migration.rs

/root/repo/target/debug/deps/heterogeneous_migration-21e843fb0463ba44: crates/snow/../../tests/heterogeneous_migration.rs

crates/snow/../../tests/heterogeneous_migration.rs:
