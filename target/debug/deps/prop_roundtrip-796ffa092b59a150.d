/root/repo/target/debug/deps/prop_roundtrip-796ffa092b59a150.d: crates/codec/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-796ffa092b59a150: crates/codec/tests/prop_roundtrip.rs

crates/codec/tests/prop_roundtrip.rs:
