/root/repo/target/debug/deps/baselines-2da470f35d26f428.d: crates/bench/benches/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-2da470f35d26f428.rmeta: crates/bench/benches/baselines.rs Cargo.toml

crates/bench/benches/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
