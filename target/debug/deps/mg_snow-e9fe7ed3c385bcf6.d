/root/repo/target/debug/deps/mg_snow-e9fe7ed3c385bcf6.d: crates/mg/tests/mg_snow.rs

/root/repo/target/debug/deps/mg_snow-e9fe7ed3c385bcf6: crates/mg/tests/mg_snow.rs

crates/mg/tests/mg_snow.rs:
