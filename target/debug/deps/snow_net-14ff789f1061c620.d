/root/repo/target/debug/deps/snow_net-14ff789f1061c620.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_net-14ff789f1061c620.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/datagram.rs:
crates/net/src/link.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
