/root/repo/target/debug/deps/deadlock_freedom-98c31210801e770f.d: crates/snow/../../tests/deadlock_freedom.rs

/root/repo/target/debug/deps/deadlock_freedom-98c31210801e770f: crates/snow/../../tests/deadlock_freedom.rs

crates/snow/../../tests/deadlock_freedom.rs:
