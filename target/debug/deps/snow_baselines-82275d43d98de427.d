/root/repo/target/debug/deps/snow_baselines-82275d43d98de427.d: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_baselines-82275d43d98de427.rmeta: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/broadcast.rs:
crates/baselines/src/cocheck.rs:
crates/baselines/src/forwarding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
