/root/repo/target/debug/deps/prop_roundtrip-08803dbf2dd80c44.d: crates/codec/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-08803dbf2dd80c44.rmeta: crates/codec/tests/prop_roundtrip.rs Cargo.toml

crates/codec/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
