/root/repo/target/debug/deps/migration_cost-35d2347168429d35.d: crates/bench/benches/migration_cost.rs Cargo.toml

/root/repo/target/debug/deps/libmigration_cost-35d2347168429d35.rmeta: crates/bench/benches/migration_cost.rs Cargo.toml

crates/bench/benches/migration_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
