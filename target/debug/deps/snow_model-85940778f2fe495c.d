/root/repo/target/debug/deps/snow_model-85940778f2fe495c.d: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

/root/repo/target/debug/deps/snow_model-85940778f2fe495c: crates/model/src/lib.rs crates/model/src/script.rs crates/model/src/world.rs

crates/model/src/lib.rs:
crates/model/src/script.rs:
crates/model/src/world.rs:
