/root/repo/target/debug/deps/table1-2d040f132dbb4a0e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2d040f132dbb4a0e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
