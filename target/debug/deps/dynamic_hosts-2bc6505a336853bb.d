/root/repo/target/debug/deps/dynamic_hosts-2bc6505a336853bb.d: crates/snow/../../tests/dynamic_hosts.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_hosts-2bc6505a336853bb.rmeta: crates/snow/../../tests/dynamic_hosts.rs Cargo.toml

crates/snow/../../tests/dynamic_hosts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
