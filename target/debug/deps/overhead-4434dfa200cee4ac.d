/root/repo/target/debug/deps/overhead-4434dfa200cee4ac.d: crates/bench/benches/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-4434dfa200cee4ac.rmeta: crates/bench/benches/overhead.rs Cargo.toml

crates/bench/benches/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
