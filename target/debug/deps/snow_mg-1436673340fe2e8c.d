/root/repo/target/debug/deps/snow_mg-1436673340fe2e8c.d: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_mg-1436673340fe2e8c.rmeta: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs Cargo.toml

crates/mg/src/lib.rs:
crates/mg/src/checkpoint.rs:
crates/mg/src/comm.rs:
crates/mg/src/grid.rs:
crates/mg/src/stencil.rs:
crates/mg/src/vcycle.rs:
crates/mg/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
