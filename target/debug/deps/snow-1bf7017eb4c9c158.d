/root/repo/target/debug/deps/snow-1bf7017eb4c9c158.d: crates/snow/src/lib.rs

/root/repo/target/debug/deps/libsnow-1bf7017eb4c9c158.rlib: crates/snow/src/lib.rs

/root/repo/target/debug/deps/libsnow-1bf7017eb4c9c158.rmeta: crates/snow/src/lib.rs

crates/snow/src/lib.rs:
