/root/repo/target/debug/deps/snow_state-a75917004eaf7b99.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

/root/repo/target/debug/deps/snow_state-a75917004eaf7b99: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/pipeline.rs crates/state/src/snapshot.rs

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/pipeline.rs:
crates/state/src/snapshot.rs:
