/root/repo/target/debug/deps/failure_injection-a85776462385e74f.d: crates/snow/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-a85776462385e74f: crates/snow/../../tests/failure_injection.rs

crates/snow/../../tests/failure_injection.rs:
