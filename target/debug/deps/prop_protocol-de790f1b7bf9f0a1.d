/root/repo/target/debug/deps/prop_protocol-de790f1b7bf9f0a1.d: crates/snow/../../tests/prop_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprop_protocol-de790f1b7bf9f0a1.rmeta: crates/snow/../../tests/prop_protocol.rs Cargo.toml

crates/snow/../../tests/prop_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
