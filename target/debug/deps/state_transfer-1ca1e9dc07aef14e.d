/root/repo/target/debug/deps/state_transfer-1ca1e9dc07aef14e.d: crates/bench/benches/state_transfer.rs Cargo.toml

/root/repo/target/debug/deps/libstate_transfer-1ca1e9dc07aef14e.rmeta: crates/bench/benches/state_transfer.rs Cargo.toml

crates/bench/benches/state_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
