/root/repo/target/debug/deps/snow_net-5d064d8b9903b672.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

/root/repo/target/debug/deps/libsnow_net-5d064d8b9903b672.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

/root/repo/target/debug/deps/libsnow_net-5d064d8b9903b672.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/datagram.rs:
crates/net/src/link.rs:
