/root/repo/target/debug/deps/message_delivery-b3a13c95ec7d438e.d: crates/snow/../../tests/message_delivery.rs Cargo.toml

/root/repo/target/debug/deps/libmessage_delivery-b3a13c95ec7d438e.rmeta: crates/snow/../../tests/message_delivery.rs Cargo.toml

crates/snow/../../tests/message_delivery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
