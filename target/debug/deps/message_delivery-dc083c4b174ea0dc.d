/root/repo/target/debug/deps/message_delivery-dc083c4b174ea0dc.d: crates/snow/../../tests/message_delivery.rs

/root/repo/target/debug/deps/message_delivery-dc083c4b174ea0dc: crates/snow/../../tests/message_delivery.rs

crates/snow/../../tests/message_delivery.rs:
