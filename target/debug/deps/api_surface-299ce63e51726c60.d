/root/repo/target/debug/deps/api_surface-299ce63e51726c60.d: crates/core/tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-299ce63e51726c60: crates/core/tests/api_surface.rs

crates/core/tests/api_surface.rs:
