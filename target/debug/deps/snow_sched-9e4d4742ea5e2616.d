/root/repo/target/debug/deps/snow_sched-9e4d4742ea5e2616.d: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_sched-9e4d4742ea5e2616.rmeta: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/client.rs:
crates/sched/src/directory.rs:
crates/sched/src/records.rs:
crates/sched/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
