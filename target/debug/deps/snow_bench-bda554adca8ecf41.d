/root/repo/target/debug/deps/snow_bench-bda554adca8ecf41.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_bench-bda554adca8ecf41.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
