/root/repo/target/debug/deps/snow_baselines-e5be1ff97459cf38.d: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

/root/repo/target/debug/deps/libsnow_baselines-e5be1ff97459cf38.rlib: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

/root/repo/target/debug/deps/libsnow_baselines-e5be1ff97459cf38.rmeta: crates/baselines/src/lib.rs crates/baselines/src/broadcast.rs crates/baselines/src/cocheck.rs crates/baselines/src/forwarding.rs

crates/baselines/src/lib.rs:
crates/baselines/src/broadcast.rs:
crates/baselines/src/cocheck.rs:
crates/baselines/src/forwarding.rs:
