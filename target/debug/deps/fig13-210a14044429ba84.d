/root/repo/target/debug/deps/fig13-210a14044429ba84.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-210a14044429ba84: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
