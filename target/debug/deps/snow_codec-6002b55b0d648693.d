/root/repo/target/debug/deps/snow_codec-6002b55b0d648693.d: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_codec-6002b55b0d648693.rmeta: crates/codec/src/lib.rs crates/codec/src/error.rs crates/codec/src/host.rs crates/codec/src/value.rs crates/codec/src/wire.rs Cargo.toml

crates/codec/src/lib.rs:
crates/codec/src/error.rs:
crates/codec/src/host.rs:
crates/codec/src/value.rs:
crates/codec/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
