/root/repo/target/debug/deps/prop_protocol-cc4e9d38a582d49b.d: crates/snow/../../tests/prop_protocol.rs

/root/repo/target/debug/deps/prop_protocol-cc4e9d38a582d49b: crates/snow/../../tests/prop_protocol.rs

crates/snow/../../tests/prop_protocol.rs:
