/root/repo/target/debug/deps/simultaneous_migration-2a7394543c849186.d: crates/snow/../../tests/simultaneous_migration.rs

/root/repo/target/debug/deps/simultaneous_migration-2a7394543c849186: crates/snow/../../tests/simultaneous_migration.rs

crates/snow/../../tests/simultaneous_migration.rs:
