/root/repo/target/debug/deps/failure_injection-d80e821be1a8bb07.d: crates/snow/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-d80e821be1a8bb07.rmeta: crates/snow/../../tests/failure_injection.rs Cargo.toml

crates/snow/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
