/root/repo/target/debug/deps/fig10-e484f5be5a8de150.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-e484f5be5a8de150: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
