/root/repo/target/debug/deps/snow_mg-c5165ccb6316c5e1.d: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/debug/deps/libsnow_mg-c5165ccb6316c5e1.rlib: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/debug/deps/libsnow_mg-c5165ccb6316c5e1.rmeta: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

crates/mg/src/lib.rs:
crates/mg/src/checkpoint.rs:
crates/mg/src/comm.rs:
crates/mg/src/grid.rs:
crates/mg/src/stencil.rs:
crates/mg/src/vcycle.rs:
crates/mg/src/workloads.rs:
