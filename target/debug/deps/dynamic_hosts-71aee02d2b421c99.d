/root/repo/target/debug/deps/dynamic_hosts-71aee02d2b421c99.d: crates/snow/../../tests/dynamic_hosts.rs

/root/repo/target/debug/deps/dynamic_hosts-71aee02d2b421c99: crates/snow/../../tests/dynamic_hosts.rs

crates/snow/../../tests/dynamic_hosts.rs:
