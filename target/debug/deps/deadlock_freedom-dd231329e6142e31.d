/root/repo/target/debug/deps/deadlock_freedom-dd231329e6142e31.d: crates/snow/../../tests/deadlock_freedom.rs Cargo.toml

/root/repo/target/debug/deps/libdeadlock_freedom-dd231329e6142e31.rmeta: crates/snow/../../tests/deadlock_freedom.rs Cargo.toml

crates/snow/../../tests/deadlock_freedom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
