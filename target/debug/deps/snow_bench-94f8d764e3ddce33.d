/root/repo/target/debug/deps/snow_bench-94f8d764e3ddce33.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsnow_bench-94f8d764e3ddce33.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsnow_bench-94f8d764e3ddce33.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
