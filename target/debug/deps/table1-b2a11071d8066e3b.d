/root/repo/target/debug/deps/table1-b2a11071d8066e3b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b2a11071d8066e3b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
