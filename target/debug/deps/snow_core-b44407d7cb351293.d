/root/repo/target/debug/deps/snow_core-b44407d7cb351293.d: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

/root/repo/target/debug/deps/snow_core-b44407d7cb351293: crates/core/src/lib.rs crates/core/src/compat.rs crates/core/src/computation.rs crates/core/src/error.rs crates/core/src/migrate.rs crates/core/src/process.rs crates/core/src/rml.rs

crates/core/src/lib.rs:
crates/core/src/compat.rs:
crates/core/src/computation.rs:
crates/core/src/error.rs:
crates/core/src/migrate.rs:
crates/core/src/process.rs:
crates/core/src/rml.rs:
