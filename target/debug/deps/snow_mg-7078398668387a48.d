/root/repo/target/debug/deps/snow_mg-7078398668387a48.d: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

/root/repo/target/debug/deps/snow_mg-7078398668387a48: crates/mg/src/lib.rs crates/mg/src/checkpoint.rs crates/mg/src/comm.rs crates/mg/src/grid.rs crates/mg/src/stencil.rs crates/mg/src/vcycle.rs crates/mg/src/workloads.rs

crates/mg/src/lib.rs:
crates/mg/src/checkpoint.rs:
crates/mg/src/comm.rs:
crates/mg/src/grid.rs:
crates/mg/src/stencil.rs:
crates/mg/src/vcycle.rs:
crates/mg/src/workloads.rs:
