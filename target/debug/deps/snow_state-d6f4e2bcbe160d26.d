/root/repo/target/debug/deps/snow_state-d6f4e2bcbe160d26.d: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

/root/repo/target/debug/deps/libsnow_state-d6f4e2bcbe160d26.rlib: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

/root/repo/target/debug/deps/libsnow_state-d6f4e2bcbe160d26.rmeta: crates/state/src/lib.rs crates/state/src/cost.rs crates/state/src/exec.rs crates/state/src/memory.rs crates/state/src/snapshot.rs

crates/state/src/lib.rs:
crates/state/src/cost.rs:
crates/state/src/exec.rs:
crates/state/src/memory.rs:
crates/state/src/snapshot.rs:
