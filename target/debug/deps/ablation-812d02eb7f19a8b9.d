/root/repo/target/debug/deps/ablation-812d02eb7f19a8b9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-812d02eb7f19a8b9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
