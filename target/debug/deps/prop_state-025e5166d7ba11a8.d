/root/repo/target/debug/deps/prop_state-025e5166d7ba11a8.d: crates/state/tests/prop_state.rs

/root/repo/target/debug/deps/prop_state-025e5166d7ba11a8: crates/state/tests/prop_state.rs

crates/state/tests/prop_state.rs:
