/root/repo/target/debug/deps/snow-41b70049e8164f10.d: crates/snow/src/lib.rs

/root/repo/target/debug/deps/snow-41b70049e8164f10: crates/snow/src/lib.rs

crates/snow/src/lib.rs:
