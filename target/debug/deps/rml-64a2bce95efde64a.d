/root/repo/target/debug/deps/rml-64a2bce95efde64a.d: crates/bench/benches/rml.rs Cargo.toml

/root/repo/target/debug/deps/librml-64a2bce95efde64a.rmeta: crates/bench/benches/rml.rs Cargo.toml

crates/bench/benches/rml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
