/root/repo/target/debug/deps/schedules-44db3e73739cfc63.d: crates/model/tests/schedules.rs

/root/repo/target/debug/deps/schedules-44db3e73739cfc63: crates/model/tests/schedules.rs

crates/model/tests/schedules.rs:
