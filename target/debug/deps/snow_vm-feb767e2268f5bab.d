/root/repo/target/debug/deps/snow_vm-feb767e2268f5bab.d: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsnow_vm-feb767e2268f5bab.rmeta: crates/vm/src/lib.rs crates/vm/src/daemon.rs crates/vm/src/host.rs crates/vm/src/ids.rs crates/vm/src/post.rs crates/vm/src/process.rs crates/vm/src/vm.rs crates/vm/src/wire.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/daemon.rs:
crates/vm/src/host.rs:
crates/vm/src/ids.rs:
crates/vm/src/post.rs:
crates/vm/src/process.rs:
crates/vm/src/vm.rs:
crates/vm/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
