/root/repo/target/debug/deps/schedules-5c45a2c2057cbbbd.d: crates/model/tests/schedules.rs Cargo.toml

/root/repo/target/debug/deps/libschedules-5c45a2c2057cbbbd.rmeta: crates/model/tests/schedules.rs Cargo.toml

crates/model/tests/schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
