/root/repo/target/debug/deps/heterogeneous_migration-75361d0e0e6db407.d: crates/snow/../../tests/heterogeneous_migration.rs Cargo.toml

/root/repo/target/debug/deps/libheterogeneous_migration-75361d0e0e6db407.rmeta: crates/snow/../../tests/heterogeneous_migration.rs Cargo.toml

crates/snow/../../tests/heterogeneous_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
