/root/repo/target/debug/deps/migration_smoke-b3e7c16ef036a611.d: crates/core/tests/migration_smoke.rs

/root/repo/target/debug/deps/migration_smoke-b3e7c16ef036a611: crates/core/tests/migration_smoke.rs

crates/core/tests/migration_smoke.rs:
