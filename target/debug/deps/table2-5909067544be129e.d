/root/repo/target/debug/deps/table2-5909067544be129e.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5909067544be129e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
