/root/repo/target/debug/deps/snow_sched-02659cf4948634bb.d: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libsnow_sched-02659cf4948634bb.rlib: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libsnow_sched-02659cf4948634bb.rmeta: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/client.rs:
crates/sched/src/directory.rs:
crates/sched/src/records.rs:
crates/sched/src/scheduler.rs:
