/root/repo/target/debug/deps/prop_state-87928c69de8ab277.d: crates/state/tests/prop_state.rs

/root/repo/target/debug/deps/prop_state-87928c69de8ab277: crates/state/tests/prop_state.rs

crates/state/tests/prop_state.rs:
