/root/repo/target/debug/deps/prop_protocol-55ae6f7e57c234b1.d: crates/snow/../../tests/prop_protocol.rs

/root/repo/target/debug/deps/prop_protocol-55ae6f7e57c234b1: crates/snow/../../tests/prop_protocol.rs

crates/snow/../../tests/prop_protocol.rs:
