/root/repo/target/debug/deps/ordering-c79156b1ef1ef283.d: crates/snow/../../tests/ordering.rs Cargo.toml

/root/repo/target/debug/deps/libordering-c79156b1ef1ef283.rmeta: crates/snow/../../tests/ordering.rs Cargo.toml

crates/snow/../../tests/ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
