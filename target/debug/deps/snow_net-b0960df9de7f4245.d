/root/repo/target/debug/deps/snow_net-b0960df9de7f4245.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

/root/repo/target/debug/deps/snow_net-b0960df9de7f4245: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/datagram.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/datagram.rs:
crates/net/src/link.rs:
