/root/repo/target/debug/deps/api_surface-7eefec55a2b1c023.d: crates/core/tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-7eefec55a2b1c023: crates/core/tests/api_surface.rs

crates/core/tests/api_surface.rs:
