/root/repo/target/debug/deps/ablation-f4e9295873fc7414.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-f4e9295873fc7414: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
