/root/repo/target/debug/deps/ordering-b3b116478051c99d.d: crates/snow/../../tests/ordering.rs

/root/repo/target/debug/deps/ordering-b3b116478051c99d: crates/snow/../../tests/ordering.rs

crates/snow/../../tests/ordering.rs:
