/root/repo/target/debug/deps/scale-9f3271551a24d277.d: crates/snow/../../tests/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-9f3271551a24d277.rmeta: crates/snow/../../tests/scale.rs Cargo.toml

crates/snow/../../tests/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
