/root/repo/target/debug/deps/snow_sched-4645532f7d32e539.d: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/snow_sched-4645532f7d32e539: crates/sched/src/lib.rs crates/sched/src/client.rs crates/sched/src/directory.rs crates/sched/src/records.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/client.rs:
crates/sched/src/directory.rs:
crates/sched/src/records.rs:
crates/sched/src/scheduler.rs:
