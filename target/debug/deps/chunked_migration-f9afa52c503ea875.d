/root/repo/target/debug/deps/chunked_migration-f9afa52c503ea875.d: crates/snow/../../tests/chunked_migration.rs

/root/repo/target/debug/deps/chunked_migration-f9afa52c503ea875: crates/snow/../../tests/chunked_migration.rs

crates/snow/../../tests/chunked_migration.rs:
