/root/repo/target/debug/deps/api_surface-8f6f19ddbae955fd.d: crates/core/tests/api_surface.rs Cargo.toml

/root/repo/target/debug/deps/libapi_surface-8f6f19ddbae955fd.rmeta: crates/core/tests/api_surface.rs Cargo.toml

crates/core/tests/api_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
