//! The paper's §6 case study: 8 kernel-MG processes on separate hosts,
//! rank 0 migrated after two V-cycle iterations, no barriers, peers
//! oblivious. Prints the residual history (identical with and without
//! migration) and the XPVM-style space-time diagram of Figs 10–12.
//!
//! Run with: `cargo run -p snow --release --example mg_migration`

use snow::mg::{mg_app, MgConfig};
use snow::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn run(cfg: MgConfig, migrate: bool, tracer: Arc<Tracer>) -> HashMap<usize, snow::mg::MgResult> {
    let results = Arc::new(Mutex::new(HashMap::new()));
    let comp = Computation::builder()
        .hosts(HostSpec::ultra5(), cfg.nprocs + 2)
        .tracer(tracer)
        .build();
    let destination = comp.hosts()[cfg.nprocs + 1];
    let handles = comp.launch(cfg.nprocs, mg_app(cfg, Arc::clone(&results)));
    if migrate {
        // §6: "we force process 0 to migrate … after two iterations";
        // our poll points sit at iteration boundaries, so the request
        // lands at whichever boundary follows it.
        let new_vmid = comp.migrate(0, destination).expect("migration commits");
        println!("rank 0 relocated to {new_vmid}");
    }
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();
    let out = results.lock().unwrap().clone();
    out
}

fn main() {
    let cfg = MgConfig {
        n: 32,
        nprocs: 8,
        iterations: 4,
        levels: 3,
        ..MgConfig::default()
    };
    println!(
        "kernel MG: {n}³ grid, {p} processes, {it} V-cycle iterations",
        n = cfg.n,
        p = cfg.nprocs,
        it = cfg.iterations
    );
    println!(
        "halo messages per level: {:?} bytes (paper, n=64: [34848, 9248, 2592, 800])\n",
        (0..cfg.levels)
            .map(|l| snow::mg::plane_bytes(cfg.n, l))
            .collect::<Vec<_>>()
    );

    let base = run(cfg, false, Tracer::disabled());
    let tracer = Tracer::new();
    let migr = run(cfg, true, tracer.clone());

    println!("residual history (no migration): {:?}", base[&0].residuals);
    println!("residual history (migration):    {:?}", migr[&0].residuals);
    let identical = (0..cfg.nprocs).all(|r| base[&r].slab.as_slice() == migr[&r].slab.as_slice());
    println!(
        "\noutputs with and without migration identical: {identical} (paper §6.3: \"identical\")"
    );
    assert!(identical);

    let st = SpaceTime::build(tracer.snapshot());
    println!("\n{}", st.render(110));
    println!(
        "messages: {} sent, {} undelivered, {} FIFO violations",
        st.lines().len(),
        st.undelivered().len(),
        st.fifo_violations().len()
    );
}
