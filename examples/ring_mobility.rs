//! Mobility under a ring workload (§8 "parallel applications with
//! different communication characteristics"): a token circulates a ring
//! of processes while *every* rank, one after another, migrates to a
//! different host — the computation pauses only for the rank in motion
//! and never loses the token.
//!
//! Run with: `cargo run -p snow --example ring_mobility`

use bytes::Bytes;
use snow::prelude::*;
use std::time::Duration;

const N: usize = 4;
const LAPS: u64 = N as u64 + 2;

fn main() {
    let comp = Computation::builder()
        .hosts(HostSpec::ideal(), 2 * N + 1)
        .build();
    let spares: Vec<HostId> = comp.hosts()[N + 1..].to_vec();

    let handles = comp.launch(N, move |mut p, start| {
        let me = p.rank();
        let right = (me + 1) % N;
        let left = (me + N - 1) % N;
        let lap0 = match &start {
            Start::Fresh => 0u64,
            Start::Resumed(s) => s
                .exec
                .local("lap")
                .and_then(snow::codec::Value::as_u64)
                .unwrap(),
        };
        for lap in lap0..LAPS {
            if me == 0 {
                p.send(right, 1, Bytes::copy_from_slice(&(lap * 100).to_be_bytes()))
                    .unwrap();
                let (_s, _t, b) = p.recv(Some(left), Some(1)).unwrap();
                let v = u64::from_be_bytes(b[..8].try_into().unwrap());
                println!(
                    "lap {lap}: token came home as {v} (expected {})",
                    lap * 100 + (N as u64 - 1)
                );
                assert_eq!(v, lap * 100 + N as u64 - 1);
            } else {
                let (_s, _t, b) = p.recv(Some(left), Some(1)).unwrap();
                let v = u64::from_be_bytes(b[..8].try_into().unwrap());
                p.send(right, 1, Bytes::copy_from_slice(&(v + 1).to_be_bytes()))
                    .unwrap();
            }
            // Rank `me` migrates after completing lap `me`; a resumed
            // process starts past that lap and never re-triggers.
            if lap == me as u64 {
                while !p.poll_point().unwrap() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let state = ProcessState::new(
                    ExecState::at_entry()
                        .enter("ring")
                        .with_local("lap", snow::codec::Value::U64(lap + 1)),
                    MemoryGraph::new(),
                );
                println!("  [rank {me} @ {}] migrating after lap {lap}", p.vmid());
                p.migrate(&state).unwrap().expect_completed();
                return;
            }
        }
        p.finish();
    });

    // Migrate every rank once, in lap order; the ring stalls only while
    // the rank in motion is away.
    for (rank, spare) in spares.iter().enumerate().take(N) {
        let v = comp.migrate(rank, *spare).expect("migration commits");
        println!("  [scheduler] rank {rank} \u{2192} {v}");
    }
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();
    println!("\nall {N} ranks migrated mid-ring; {LAPS} laps completed correctly");
}
