//! Walkthrough of the paper's Fig 8 deadlock argument (Theorem 1).
//!
//! Three processes: P3 (rank 2) migrates while P2 (rank 1) is sending
//! m3 to it and P1 (rank 0) is sending m2 to P2. Under a protocol with
//! blocking connection establishment, the sends could form a circular
//! wait with the migration. Under SNOW, sends are buffered, in-transit
//! messages drain into the received-message-list, and redirected
//! connection requests land at the initialized process — so everything
//! completes.
//!
//! Run with: `cargo run -p snow --example deadlock_scenario`

use bytes::Bytes;
use snow::prelude::*;
use std::time::Duration;

fn main() {
    let tracer = Tracer::new();
    let comp = Computation::builder()
        .hosts(HostSpec::ideal(), 4)
        .tracer(tracer.clone())
        .build();
    let destination = comp.hosts()[3];

    let handles = comp.launch(3, move |mut p, start| match (p.rank(), start) {
        // P3: connected to both peers, then migrates.
        (2, Start::Fresh) => {
            let _ = p.recv(Some(0), Some(1)).unwrap();
            let _ = p.recv(Some(1), Some(1)).unwrap();
            println!("[P3] connected to P1 and P2; awaiting migration order");
            while !p.poll_point().unwrap() {
                std::thread::sleep(Duration::from_millis(1));
            }
            println!("[P3] migrating (peers are mid-send!)");
            p.migrate(&ProcessState::empty())
                .unwrap()
                .expect_completed();
        }
        (2, Start::Resumed(_)) => {
            let (_s, _t, m3) = p.recv(Some(1), Some(3)).unwrap();
            let (_s, _t, m1) = p.recv(Some(0), Some(3)).unwrap();
            println!("[P3'] received m3={m3:?} and m1={m1:?} after migration — no deadlock");
            p.finish();
        }
        // P1: sends m2 to P2, then m1 to P3 across the migration window.
        (0, Start::Fresh) => {
            p.send(2, 1, Bytes::from_static(b"hs")).unwrap();
            p.send(1, 2, Bytes::from_static(b"m2")).unwrap();
            std::thread::sleep(Duration::from_millis(30));
            println!("[P1] sending m1 to the migrating P3 …");
            p.send(2, 3, Bytes::from_static(b"m1")).unwrap();
            println!("[P1] send returned — not blocked");
            p.finish();
        }
        // P2: receiving from P1, sending m3 to P3 during the migration.
        (1, Start::Fresh) => {
            p.send(2, 1, Bytes::from_static(b"hs")).unwrap();
            let (_s, _t, m2) = p.recv(Some(0), Some(2)).unwrap();
            println!("[P2] got m2={m2:?} from P1");
            std::thread::sleep(Duration::from_millis(30));
            println!("[P2] sending m3 to the migrating P3 …");
            p.send(2, 3, Bytes::from_static(b"m3")).unwrap();
            println!("[P2] send returned — not blocked");
            p.finish();
        }
        _ => unreachable!(),
    });

    std::thread::sleep(Duration::from_millis(10));
    comp.migrate(2, destination).expect("migration commits");
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();

    let st = SpaceTime::build(tracer.snapshot());
    println!("\n{}", st.render(90));
    println!(
        "Theorem 1 holds: {} messages, {} undelivered, 0 deadlocks",
        st.lines().len(),
        st.undelivered().len()
    );
}
