//! The §6.3 heterogeneous experiment in miniature: a process on a slow
//! little-endian DEC 5000/120 behind 10 Mbit Ethernet migrates to a
//! fast big-endian Sun Ultra 5 on 100 Mbit Ethernet, carrying ~7.5 MB
//! of execution + memory state. Prints the Table 2 breakdown.
//!
//! Run with: `cargo run -p snow --release --example heterogeneous`

use snow::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn main() {
    let comp = Computation::builder()
        .host(HostSpec::ultra5()) // scheduler
        .host(HostSpec::dec5000()) // the slow source
        .host(HostSpec::ultra5()) // the destination
        .build();
    let dec = comp.hosts()[1];
    let ultra = comp.hosts()[2];

    println!(
        "source: {} (speed {:.2}×, {:.0} Mbit/s uplink)",
        HostSpec::dec5000().arch.label,
        HostSpec::dec5000().speed,
        HostSpec::dec5000().uplink.bandwidth_bps / 1e6
    );
    println!(
        "target: {} (speed {:.2}×, {:.0} Mbit/s uplink)\n",
        HostSpec::ultra5().arch.label,
        HostSpec::ultra5().speed,
        HostSpec::ultra5().uplink.bandwidth_bps / 1e6
    );

    let timings: Arc<Mutex<Option<snow::core::MigrationTimings>>> = Arc::new(Mutex::new(None));
    let restore_s: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    let t_w = Arc::clone(&timings);

    let placement = vec![dec];
    let handles = comp.launch_placed(&placement, move |mut p, start| match start {
        Start::Fresh => {
            // The paper's migrating process carries >7.5 MB of state.
            let mut state = ProcessState::new(
                ExecState::at_entry().enter("kernelMG").at_poll(2),
                MemoryGraph::new(),
            );
            state.pad_to(7_500_000);
            while !p.poll_point().unwrap() {
                std::thread::sleep(Duration::from_millis(1));
            }
            let t = p.migrate(&state).unwrap().expect_completed();
            *t_w.lock().unwrap() = Some(t);
        }
        Start::Resumed(state) => {
            assert_eq!(state.exec.call_path, vec!["main", "kernelMG"]);
            p.finish();
        }
    });

    comp.migrate(0, ultra).expect("migration commits");
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();
    let t = timings.lock().unwrap().clone().unwrap();
    let restore = StateCostModel::PAPER.restore_seconds(t.state_bytes, HostSpec::ultra5().speed);
    *restore_s.lock().unwrap() = restore;

    println!("state transferred: {:.2} MB\n", t.state_bytes as f64 / 1e6);
    println!("{:<12} {:>10} {:>10}", "operation", "model(s)", "paper(s)");
    println!(
        "{:<12} {:>10.3} {:>10}",
        "Coordinate", t.coordinate_real_s, "0.125"
    );
    println!(
        "{:<12} {:>10.3} {:>10}",
        "Collect", t.collect_modeled_s, "5.209"
    );
    println!("{:<12} {:>10.3} {:>10}", "Tx", t.tx_modeled_s, "8.591");
    println!("{:<12} {:>10.3} {:>10}", "Restore", restore, "0.696");
    println!(
        "{:<12} {:>10.3} {:>10}",
        "Migrate",
        t.collect_modeled_s + t.tx_modeled_s + restore + t.coordinate_real_s,
        "14.621"
    );
}
