//! A master/worker task farm whose workers migrate mid-farm (§8 asks
//! for "parallel applications with different communication
//! characteristics" — this one is dynamic and master-centric, the
//! opposite of MG's static ring).
//!
//! The master (rank 0) hands out tasks on demand; each worker computes
//! and reports. While the farm runs, every worker is migrated once to a
//! spare host. Workers checkpoint only their completion counter — the
//! between-tasks poll point is message-quiescent by construction.
//!
//! Run with: `cargo run -p snow --example task_farm`

use snow::mg::workloads::{farm_task_value, task_farm_master, task_farm_worker, WorkerOutcome};
use snow::mg::SnowComm;
use snow::prelude::*;
use std::sync::{Arc, Mutex};

const WORKERS: usize = 3;
const TASKS: usize = 60;

fn main() {
    let comp = Computation::builder()
        .hosts(HostSpec::ideal(), WORKERS + 2 + WORKERS)
        .build();
    let spares: Vec<HostId> = comp.hosts()[WORKERS + 2..].to_vec();
    let results: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let results_w = Arc::clone(&results);

    let handles = comp.launch(WORKERS + 1, move |p, start| {
        let rank = p.rank();
        let from = match &start {
            Start::Fresh => 0usize,
            Start::Resumed(s) => s
                .exec
                .local("completed")
                .and_then(snow::codec::Value::as_u64)
                .unwrap() as usize,
        };
        let mut comm = SnowComm::new(p, WORKERS + 1);
        if rank == 0 {
            let r = task_farm_master(&mut comm, TASKS).expect("farm completes");
            *results_w.lock().unwrap() = r;
            comm.into_process().finish();
        } else {
            match task_farm_worker(&mut comm, from, std::time::Duration::from_millis(2))
                .expect("worker runs")
            {
                WorkerOutcome::Done { completed } => {
                    println!("[worker {rank}] done: {completed} tasks (incl. pre-migration work)");
                    comm.into_process().finish();
                }
                WorkerOutcome::Migrate { completed } => {
                    println!("[worker {rank}] migrating after {completed} tasks");
                    let state = ProcessState::new(
                        ExecState::at_entry()
                            .enter("task_farm_worker")
                            .with_local("completed", snow::codec::Value::U64(completed as u64)),
                        MemoryGraph::new(),
                    );
                    comm.into_process()
                        .migrate(&state)
                        .unwrap()
                        .expect_completed();
                }
            }
        }
    });

    // Migrate every worker once while the farm runs.
    for (i, spare) in spares.iter().enumerate().take(WORKERS) {
        let worker = i + 1;
        match comp.migrate(worker, *spare) {
            Ok(v) => println!("  [scheduler] worker {worker} \u{2192} {v}"),
            Err(e) => println!("  [scheduler] worker {worker} already finished ({e})"),
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();

    let results = results.lock().unwrap();
    assert_eq!(results.len(), TASKS);
    for (task, v) in results.iter().enumerate() {
        assert_eq!(*v, farm_task_value(task), "task {task} computed wrongly");
    }
    println!("\nall {TASKS} tasks computed exactly once, correct values, across live migrations");
}
