//! Quickstart: a two-process computation where the receiver migrates to
//! a freshly joined host mid-conversation — nothing is lost, nothing is
//! reordered, and the sender never learns migration happened.
//!
//! Run with: `cargo run -p snow --example quickstart`

use bytes::Bytes;
use snow::prelude::*;
use std::time::Duration;

fn main() {
    // A virtual machine of three workstations; the scheduler rides the
    // first one.
    let tracer = Tracer::new();
    let comp = Computation::builder()
        .hosts(HostSpec::ideal(), 3)
        .tracer(tracer.clone())
        .build();
    let destination = comp.hosts()[2];

    // One application function for every rank, and for the post-
    // migration resume (Start::Resumed is the poll-point re-entry).
    let handles = comp.launch(2, move |mut p, start| match (p.rank(), start) {
        // Rank 0: receive ten numbered messages; migrate after five.
        (0, Start::Fresh) => {
            for i in 0u64..5 {
                let (_src, _tag, body) = p.recv(Some(1), Some(7)).unwrap();
                println!("[rank 0 @ {}] got #{i}: {body:?}", p.vmid());
            }
            // Wait for the migration order at a poll point.
            while !p.poll_point().unwrap() {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Carry the loop counter in the execution state.
            let state = ProcessState::new(
                ExecState::at_entry()
                    .enter("receive_loop")
                    .with_local("next", snow::codec::Value::U64(5)),
                MemoryGraph::new(),
            );
            println!(
                "[rank 0] migrating with {} B of state …",
                state.collected_bytes()
            );
            p.migrate(&state).unwrap().expect_completed();
            // The migrating process terminates here (Fig 5 line 11).
        }
        (0, Start::Resumed(state)) => {
            let next = state
                .exec
                .local("next")
                .and_then(snow::codec::Value::as_u64)
                .unwrap();
            println!("[rank 0 resumed @ {}] continuing from #{next}", p.vmid());
            for i in next..10 {
                let (_src, _tag, body) = p.recv(Some(1), Some(7)).unwrap();
                println!("[rank 0 @ {}] got #{i}: {body:?}", p.vmid());
            }
            p.finish();
        }
        // Rank 1: just sends — it has no idea the peer moves.
        (1, Start::Fresh) => {
            for i in 0u64..10 {
                p.send(0, 7, Bytes::copy_from_slice(&i.to_be_bytes()))
                    .unwrap();
                std::thread::sleep(Duration::from_millis(5));
            }
            p.finish();
        }
        _ => unreachable!(),
    });

    // The "user request" of §2.2: ask the scheduler to migrate rank 0.
    std::thread::sleep(Duration::from_millis(15));
    let new_vmid = comp.migrate(0, destination).expect("migration commits");
    println!("[scheduler] rank 0 now lives at {new_vmid}");

    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();

    // Show the XPVM-style space-time diagram of what just happened.
    let st = SpaceTime::build(tracer.snapshot());
    println!("\n{}", st.render(100));
    assert!(st.undelivered().is_empty(), "Theorem 2 violated?!");
    println!(
        "all {} messages delivered exactly once, in order",
        st.lines().len()
    );
}
