//! The SNOW process runtime: send (Fig 2), connect (Fig 3), recv (Fig 4)
//! and the disconnection handler (Fig 6).
//!
//! A [`SnowProcess`] wraps a virtual-machine [`ProcessCell`] with the
//! paper's protocol state: the PL-table cache `pl[]`, the `Connected`
//! set with its channels `cc[]`, the received-message-list, and the
//! `Closed_conn` coordination counter. All algorithm line references in
//! comments are to the paper's figures.

use crate::error::ProtoError;
use crate::rml::Rml;
use bytes::Bytes;
use snow_net::FrameClass;
use snow_state::{PipelineConfig, StateCostModel};
use snow_trace::EventKind;
use snow_vm::process::EnvError;
use snow_vm::wire::{ConnReqMsg, Ctrl, ExeStatus, SchedReply, SchedRequest};
use snow_vm::{Envelope, Incoming, Payload, PostSender, ProcessCell, Rank, Signal, Tag, Vmid};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Tag used by protocol marker envelopes (`peer_migrating`,
/// `end_of_messages`); never surfaced to applications.
pub(crate) const TAG_CTRL: Tag = -1;

/// How long a blocking protocol step may stall before reporting a
/// watchdog error instead of hanging (peers dying uncoordinated are
/// outside the paper's failure model).
pub(crate) const WATCHDOG: Duration = Duration::from_secs(60);

/// Granularity at which blocked protocol loops wake to run liveness
/// checks.
pub(crate) const TICK: Duration = Duration::from_millis(25);

/// How long `connect` waits for a grant/nack before re-sending the
/// `conn_req` under the same request id. The request and its reply ride
/// the connectionless datagram service (§2.3), so either leg may be
/// lost; re-sending is the requester's recovery, and the daemon/target
/// dedup duplicate requests.
pub(crate) const CONN_RESEND: Duration = Duration::from_millis(110);

/// The watchdog window stretched for slowed modeled hosts: a
/// `time_scale` that makes modeled seconds real must also stretch the
/// deadline, or a legitimately slow drain/transfer trips the watchdog
/// spuriously.
pub(crate) fn scaled_watchdog(scale: snow_net::TimeScale) -> Duration {
    WATCHDOG.max(scale.real(WATCHDOG.as_secs_f64()))
}

/// Events surfaced by the shared inbox-processing loop. Everything not
/// listed here (data buffering, inbound connection grants) is fully
/// handled internally.
#[derive(Debug)]
pub(crate) enum Event {
    /// A data message was appended to the RML (re-check your match).
    Data,
    /// An inbound connection was granted to `peer`.
    InboundConn(Rank),
    /// Our outbound request `req_id` was granted by `peer`.
    Granted {
        /// The request id we sent.
        req_id: u64,
        /// The granting rank.
        peer: Rank,
    },
    /// Our outbound request `req_id` was rejected.
    Nacked {
        /// The rejected request id.
        req_id: u64,
    },
    /// A scheduler reply arrived.
    Sched(SchedReply),
    /// A `peer_migrating` marker from `rank` was processed: the channel
    /// is closed and `Closed_conn` incremented.
    PeerMigrated(Rank),
    /// An `end_of_messages` marker from `rank` (meaningful during a
    /// migration drain).
    EndOfMessages(Rank),
    /// The forwarded received-message-list (initialization only).
    StateBatch(Vec<Envelope>),
    /// The canonical exe+mem state as one monolithic frame
    /// (initialization only).
    State(Bytes),
    /// One chunk of a pipelined exe+mem state stream (initialization
    /// only).
    StateChunk {
        /// Position in the stream (0 = header chunk).
        seq: u32,
        /// FNV-1a of `bytes`.
        checksum: u64,
        /// The chunk's slice of the canonical state body.
        bytes: Bytes,
    },
    /// The digest frame closing a pipelined state stream
    /// (initialization only).
    StateDigest {
        /// Whole-body FNV-1a.
        digest: u64,
        /// Chunk count the source sent.
        chunks: u32,
        /// Total body bytes the source sent.
        total_bytes: u64,
    },
    /// The destination's verdict on a transferred state image
    /// (migration source only).
    StateAck {
        /// Whether the destination restored the state successfully.
        ok: bool,
        /// The destination's vmid — lets the source discard acks from an
        /// earlier, already-aborted attempt.
        from: Vmid,
        /// Failure detail when `ok` is false.
        detail: String,
    },
    /// A peer's migration was aborted; it resumed at its pre-migration
    /// vmid and re-announced itself (the peer rank is recorded in the
    /// trace as [`EventKind::MigrationAbortSeen`]).
    PeerMigrationAborted,
}

/// Progress of a cooperative (non-blocking) connection establishment
/// toward one destination rank: Fig 3 driven one message at a time by
/// [`SnowProcess::connect_step`] instead of a blocked thread.
#[derive(Debug)]
enum PendingConn {
    /// A scheduler lookup for the destination's location is in flight.
    Lookup {
        /// When to re-issue the lookup if no reply has landed (either
        /// leg may ride a lossy datagram link).
        next_resend: Instant,
    },
    /// A `conn_req` is outstanding at `target`.
    Req {
        /// The request id we sent (grants/nacks quote it back).
        req_id: u64,
        /// The vmid the request was addressed to.
        target: Vmid,
        /// When to re-send under the same `req_id` (§2.3: the
        /// connectionless service may drop either leg).
        next_resend: Instant,
    },
}

/// A SNOW application process: the paper's protocol endpoint.
pub struct SnowProcess {
    pub(crate) cell: ProcessCell,
    pub(crate) rank: Rank,
    /// PL-table cache: rank → vmid (§2.1).
    pub(crate) pl: HashMap<Rank, Vmid>,
    /// `Connected` + `cc[]`: open logical channels per peer rank.
    pub(crate) cc: HashMap<Rank, PostSender<Incoming>>,
    /// The received-message-list (§3.1).
    pub(crate) rml: Rml,
    /// The `Closed_conn` coordination counter (Fig 6).
    pub(crate) closed_conn: u32,
    /// In-flight cooperative connection attempts (Fig 3, stepwise).
    pending_conn: HashMap<Rank, PendingConn>,
    /// Set once a `migration_request` signal has been intercepted.
    pub(crate) migrate_pending: bool,
    /// True while running `migrate()`: inbound `conn_req`s are nacked.
    pub(crate) migrating: bool,
    /// State collect/restore cost model.
    pub(crate) cost: StateCostModel,
    /// Chunked state-transfer knobs used by `migrate()`.
    pub(crate) pipeline: PipelineConfig,
    /// Failure-injection hook: corrupt this chunk seq on the *next*
    /// migration attempt (one-shot; cleared when consumed).
    pub(crate) corrupt_chunk: Option<u32>,
}

impl SnowProcess {
    /// Wrap a freshly spawned process.
    pub fn fresh(cell: ProcessCell, rank: Rank, cost: StateCostModel) -> Self {
        let mut pl = HashMap::new();
        pl.insert(rank, cell.vmid());
        SnowProcess {
            cell,
            rank,
            pl,
            cc: HashMap::new(),
            rml: Rml::new(),
            closed_conn: 0,
            pending_conn: HashMap::new(),
            migrate_pending: false,
            migrating: false,
            cost,
            pipeline: PipelineConfig::default(),
            corrupt_chunk: None,
        }
    }

    /// Override the chunked state-transfer configuration this process
    /// will use when it migrates.
    pub fn set_pipeline(&mut self, cfg: PipelineConfig) {
        self.pipeline = cfg;
    }

    /// Failure injection for tests: flip one bit in chunk `seq` of the
    /// next migration's state stream, forcing the destination's checksum
    /// check to fail and the migration to abort (or retry, under a
    /// scheduler retry policy). One-shot: a retried attempt transmits
    /// clean.
    pub fn inject_chunk_corruption(&mut self, seq: u32) {
        self.corrupt_chunk = Some(seq);
    }

    /// Install PL-table rows (rank → vmid). §2.1: "the PL table is
    /// stored inside the memory spaces of every process" — launchers
    /// distribute the initial table so first connections route directly
    /// instead of consulting the scheduler (consultation is reserved for
    /// the on-demand update after a `conn_nack`, Fig 3).
    pub fn install_pl(&mut self, entries: &[(Rank, Vmid)]) {
        for (r, v) in entries {
            if *r != self.rank {
                self.pl.insert(*r, *v);
            }
        }
    }

    /// This process's application rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// This process's vmid.
    pub fn vmid(&self) -> Vmid {
        self.cell.vmid()
    }

    /// Ranks currently in the `Connected` set.
    pub fn connected(&self) -> Vec<Rank> {
        let mut v: Vec<Rank> = self.cc.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Messages buffered in the received-message-list.
    pub fn rml_len(&self) -> usize {
        self.rml.len()
    }

    /// The environment cell (host spec, tracer, ...).
    pub fn cell(&self) -> &ProcessCell {
        &self.cell
    }

    fn trace(&self, kind: EventKind) {
        self.cell.trace(kind);
    }

    // ------------------------------------------------------------------
    // Shared inbox processing
    // ------------------------------------------------------------------

    /// Receive and classify the next inbox message, fully handling
    /// everything that has a context-independent reaction:
    /// * data messages → RML (Fig 4 line 7),
    /// * `peer_migrating` → close channel + `Closed_conn += 1`
    ///   (Fig 4 lines 12–14),
    /// * inbound `conn_req` → grant, or nack while migrating
    ///   (Fig 4 lines 9–11 / Fig 5 line 4).
    ///
    /// Returns `Ok(None)` on a tick timeout so callers can run liveness
    /// checks; errors with [`ProtoError::Watchdog`] via
    /// [`Self::wait_event`].
    pub(crate) fn next_event(&mut self, timeout: Duration) -> Result<Option<Event>, ProtoError> {
        let inc = match self.cell.recv_incoming_timeout(timeout) {
            Ok(Some(inc)) => inc,
            Ok(None) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(self.classify(inc)))
    }

    fn classify(&mut self, inc: Incoming) -> Event {
        match inc {
            Incoming::Data(env) => match env.payload {
                Payload::Data(_) => {
                    self.trace(EventKind::RmlAppend {
                        from: env.src,
                        tag: env.tag,
                        msg: env.msg,
                    });
                    self.rml.append(env);
                    Event::Data
                }
                Payload::PeerMigrating => {
                    let src = env.src;
                    self.trace(EventKind::PeerMigratingSeen { peer: src });
                    self.close_channel_to(src);
                    self.closed_conn += 1;
                    Event::PeerMigrated(src)
                }
                Payload::EndOfMessages => {
                    self.trace(EventKind::EndOfMessages { peer: env.src });
                    Event::EndOfMessages(env.src)
                }
                Payload::RmlBatch(batch) => Event::StateBatch(batch),
                Payload::ExeMemState(bytes) => Event::State(bytes),
                Payload::ExeMemStateChunk {
                    seq,
                    checksum,
                    bytes,
                } => Event::StateChunk {
                    seq,
                    checksum,
                    bytes,
                },
                Payload::ExeMemStateDigest {
                    digest,
                    chunks,
                    total_bytes,
                } => Event::StateDigest {
                    digest,
                    chunks,
                    total_bytes,
                },
                Payload::StateAck { ok, from, detail } => Event::StateAck { ok, from, detail },
                Payload::MigrationAborted => {
                    self.trace(EventKind::MigrationAbortSeen { peer: env.src });
                    Event::PeerMigrationAborted
                }
            },
            Incoming::Ctrl(ctrl) => match ctrl {
                Ctrl::ConnReq(req) => {
                    if self.migrating {
                        // Fig 5 line 4: a migrating process rejects
                        // connection requests itself.
                        let req_id = req.req_id;
                        let target = req.target;
                        self.trace(EventKind::ConnNack { to: req.from_rank });
                        self.cell
                            .answer_conn_req(req_id, Ctrl::ConnNack { req_id, target });
                        Event::Data
                    } else {
                        let peer = req.from_rank;
                        self.grant(req);
                        Event::InboundConn(peer)
                    }
                }
                Ctrl::ConnGrant {
                    req_id,
                    peer_rank,
                    peer_vmid,
                    data_to_granter,
                } => {
                    self.pl.insert(peer_rank, peer_vmid);
                    // Crossing-request dedup: the first established
                    // channel wins so each direction stays on one wire.
                    if let std::collections::hash_map::Entry::Vacant(e) = self.cc.entry(peer_rank) {
                        e.insert(data_to_granter);
                        self.trace(EventKind::ChannelOpen { peer: peer_rank });
                    }
                    Event::Granted {
                        req_id,
                        peer: peer_rank,
                    }
                }
                Ctrl::ConnNack { req_id, .. } => Event::Nacked { req_id },
                Ctrl::Sched(reply) => Event::Sched(reply),
                // Normal processes never receive scheduler *requests*.
                Ctrl::SchedRequest(_) => Event::Data,
            },
        }
    }

    /// Block for the next event, up to the watchdog limit.
    pub(crate) fn wait_event(&mut self, what: &'static str) -> Result<Event, ProtoError> {
        let deadline = Instant::now() + WATCHDOG;
        loop {
            if let Some(ev) = self.next_event(TICK)? {
                return Ok(ev);
            }
            if Instant::now() >= deadline {
                return Err(ProtoError::Watchdog(what));
            }
        }
    }

    /// Grant an inbound connection request (`grant_connection_to`,
    /// Fig 3 line 7 / Fig 4 line 10).
    pub(crate) fn grant(&mut self, req: ConnReqMsg) {
        let peer = req.from_rank;
        self.pl.insert(peer, req.from_vmid);
        let grant = Ctrl::ConnGrant {
            req_id: req.req_id,
            peer_rank: self.rank,
            peer_vmid: self.cell.vmid(),
            data_to_granter: self.cell.data_sender_to_me(req.from_vmid.host),
        };
        self.trace(EventKind::ConnAck { from: peer });
        self.cell.answer_conn_req(req.req_id, grant);
        if let std::collections::hash_map::Entry::Vacant(e) = self.cc.entry(peer) {
            e.insert(req.data_to_requester);
            self.trace(EventKind::ChannelOpen { peer });
        }
    }

    /// Close the channel toward `peer`, sending `end_of_messages` as the
    /// last message on it (§3.2.2).
    pub(crate) fn close_channel_to(&mut self, peer: Rank) {
        if let Some(tx) = self.cc.remove(&peer) {
            let env = Envelope {
                src: self.rank,
                tag: TAG_CTRL,
                msg: self.cell.tracer().next_msg_id(),
                payload: Payload::EndOfMessages,
            };
            let bytes = env.wire_bytes();
            let _ = tx.send(Incoming::Data(env), bytes);
            self.trace(EventKind::ChannelClose { peer });
        }
    }

    // ------------------------------------------------------------------
    // Scheduler consultation (Fig 3 lines 10–14)
    // ------------------------------------------------------------------

    /// Ask the scheduler where `dest` lives, updating the PL cache.
    /// Errors with [`ProtoError::DestinationTerminated`] when the
    /// scheduler reports termination.
    pub(crate) fn consult_scheduler(&mut self, dest: Rank) -> Result<Vmid, ProtoError> {
        self.trace(EventKind::SchedulerConsult { about: dest });
        self.cell.sched_send(SchedRequest::Lookup {
            about: dest,
            reply: self.cell.reply_sender(),
        })?;
        loop {
            match self.wait_event("scheduler lookup")? {
                Event::Sched(SchedReply::Location {
                    about,
                    status,
                    vmid,
                }) if about == dest => match (status, vmid) {
                    (ExeStatus::Terminated, _) | (_, None) => {
                        return Err(ProtoError::DestinationTerminated(dest))
                    }
                    (_, Some(v)) => {
                        self.pl.insert(dest, v);
                        return Ok(v);
                    }
                },
                Event::Sched(SchedReply::Error { reason }) => {
                    return Err(ProtoError::Scheduler(reason))
                }
                _ => continue,
            }
        }
    }

    // ------------------------------------------------------------------
    // connect (Fig 3)
    // ------------------------------------------------------------------

    /// Establish a connection with `dest` (sender-initiated, §3.1).
    /// On `conn_nack`, consults the scheduler and retries at the new
    /// location — the on-demand location update.
    pub(crate) fn connect(&mut self, dest: Rank) -> Result<(), ProtoError> {
        // A nacked request whose re-lookup names the *same* location is
        // making no progress: the target is dead but the scheduler has
        // not (yet) heard. Retry briefly, then report instead of
        // spinning forever — peers dying uncoordinated are outside the
        // paper's failure model, so this is surfaced, not masked.
        let mut stale_retries = 0u32;
        const MAX_STALE_RETRIES: u32 = 400;
        // Fig 3 line 1: while dest ∉ Connected
        while !self.cc.contains_key(&dest) {
            let target = match self.pl.get(&dest) {
                Some(v) => *v,
                None => self.consult_scheduler(dest)?,
            };
            let req_id = self.cell.next_req_id();
            let req = ConnReqMsg {
                req_id,
                from_rank: self.rank,
                from_vmid: self.cell.vmid(),
                target,
                reply: self.cell.reply_sender(),
                data_to_requester: self.cell.data_sender_to_me(target.host),
            };
            self.trace(EventKind::ConnReq { to: dest });
            // Fig 3 line 2: send conn_req to pl[dest].
            if let Err(EnvError::HostGone(h)) = self.cell.route_conn_req(req) {
                // The target daemon no longer exists: the requester's
                // daemon rejects on its behalf (§3.1). Re-locate.
                self.trace(EventKind::ConnNack { to: dest });
                let fresh = self.consult_scheduler(dest)?;
                if fresh.host == h {
                    // The directory still names the departed host: the
                    // destination is unreachable.
                    return Err(ProtoError::Env(EnvError::HostGone(h)));
                }
                continue;
            }
            // Fig 3 lines 3–15: wait for ack/nack, servicing other
            // traffic meanwhile. The request or its reply may have been
            // lost in the datagram service, so re-send periodically
            // under the same req_id until something comes back.
            let deadline = Instant::now() + WATCHDOG;
            let mut next_resend = Instant::now() + CONN_RESEND;
            'wait: loop {
                let ev = match self.next_event(TICK)? {
                    Some(ev) => ev,
                    None => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(ProtoError::Watchdog("connect"));
                        }
                        if now >= next_resend {
                            next_resend = now + CONN_RESEND;
                            let again = ConnReqMsg {
                                req_id,
                                from_rank: self.rank,
                                from_vmid: self.cell.vmid(),
                                target,
                                reply: self.cell.reply_sender(),
                                data_to_requester: self.cell.data_sender_to_me(target.host),
                            };
                            self.trace(EventKind::ConnReq { to: dest });
                            if self.cell.route_conn_req(again).is_err() {
                                // Host left while we waited: fall out to
                                // the re-locate path of the outer loop.
                                break 'wait;
                            }
                        }
                        continue;
                    }
                };
                match ev {
                    Event::Granted { req_id: r, peer } => {
                        if r == req_id || peer == dest {
                            break 'wait;
                        }
                    }
                    Event::Nacked { req_id: r } if r == req_id => {
                        self.trace(EventKind::ConnNack { to: dest });
                        // Fig 3 lines 9–14: consult scheduler; retry or
                        // report termination.
                        let fresh = self.consult_scheduler(dest)?;
                        if fresh == target {
                            stale_retries += 1;
                            if stale_retries >= MAX_STALE_RETRIES {
                                return Err(ProtoError::Watchdog("connect retries"));
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        } else {
                            stale_retries = 0;
                        }
                        break 'wait;
                    }
                    // Fig 3 lines 6–8: grant crossing requests. If the
                    // requester was dest itself, Connected now holds it
                    // and the outer while exits.
                    Event::InboundConn(peer) => {
                        if peer == dest || self.cc.contains_key(&dest) {
                            break 'wait;
                        }
                    }
                    _ => {
                        if self.cc.contains_key(&dest) {
                            break 'wait;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // send (Fig 2)
    // ------------------------------------------------------------------

    /// Send `payload` to rank `dest` under `tag`. Establishes the
    /// connection first when necessary; never blocks on the receiver
    /// (buffered mode, §2.3). If the channel died because the peer
    /// migrated away, re-locates and retries transparently.
    pub fn send(&mut self, dest: Rank, tag: Tag, payload: Bytes) -> Result<(), ProtoError> {
        loop {
            // Fig 2 lines 1–3.
            self.connect(dest)?;
            let env = Envelope {
                src: self.rank,
                tag,
                msg: self.cell.tracer().next_msg_id(),
                payload: Payload::Data(payload.clone()),
            };
            let bytes = env.wire_bytes();
            // Fig 2 line 4. The timestamp is captured before the post:
            // the receiver can consume (and trace) the message the
            // instant it lands, and its RecvDone must sort after our
            // Send for the log to stay causal. Recording still happens
            // only on success, so a dead-inbox retry leaves no event.
            // With tracing off the hot path pays neither the clock read
            // nor the event construction.
            let msg = env.msg;
            let t_send = if self.cell.tracer().is_enabled() {
                Some(self.cell.tracer().now_ns())
            } else {
                None
            };
            let tx = self.cc.get(&dest).expect("connected after connect()");
            match tx.send_classed(Incoming::Data(env), bytes, FrameClass::Data) {
                Ok(()) => {
                    if let Some(t_send) = t_send {
                        self.cell.trace_at(
                            t_send,
                            EventKind::Send {
                                to: dest,
                                tag,
                                bytes: payload.len(),
                                msg,
                            },
                        );
                    }
                    return Ok(());
                }
                Err(_) => {
                    // The peer's inbox died: it terminated or its
                    // migration completed and the old process exited.
                    // Drop the stale channel and re-resolve; the
                    // scheduler reports Terminated if it is truly gone.
                    self.cc.remove(&dest);
                    self.pl.remove(&dest);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // recv (Fig 4)
    // ------------------------------------------------------------------

    /// Receive a message matching `src`/`tag` (either may be `None` for
    /// a wildcard). Searches the received-message-list first; new
    /// unwanted messages are appended to it.
    pub fn recv(
        &mut self,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<(Rank, Tag, Bytes), ProtoError> {
        self.trace(EventKind::RecvStart { from: src, tag });
        let mut first_check = true;
        loop {
            // Fig 4 lines 2–4.
            if let Some(env) = self.rml.take_match(src, tag) {
                let body = match env.payload {
                    Payload::Data(b) => b,
                    _ => unreachable!("only data envelopes enter the RML"),
                };
                self.trace(EventKind::RecvDone {
                    from: env.src,
                    tag: env.tag,
                    bytes: body.len(),
                    msg: env.msg,
                    from_rml: first_check,
                });
                return Ok((env.src, env.tag, body));
            }
            first_check = false;
            // Fig 4 lines 5–15: get a new data or control message; the
            // shared classifier implements lines 6–14.
            let _ = self.wait_event("recv")?;
        }
    }

    /// Non-blocking probe: is a matching message already buffered or
    /// deliverable? Drains deliverable inbox traffic into the RML first.
    pub fn probe(&mut self, src: Option<Rank>, tag: Option<Tag>) -> Result<bool, ProtoError> {
        while let Some(_ev) = self.next_event(Duration::ZERO)? {}
        Ok(self
            .rml
            .take_match(src, tag)
            .map(|env| {
                // Put it back in front: probe must not consume.
                self.rml.prepend_batch(vec![env]);
            })
            .is_some())
    }

    // ------------------------------------------------------------------
    // Cooperative (non-blocking) protocol steps
    // ------------------------------------------------------------------
    //
    // The blocking send/recv/connect above park an OS thread per rank —
    // fine for apps, ruinous for a 10k-rank harness. These entry points
    // expose the same Fig 2/3/4 state machines one step at a time, so a
    // bounded worker pool can multiplex thousands of ranks: a blocked
    // `connect` would otherwise pin its worker waiting for a grant from
    // a rank the pool has not scheduled, which deadlocks once every
    // worker is pinned.

    /// Drain every deliverable inbox message without blocking, running
    /// the shared classifier on each (data → RML, inbound `conn_req` →
    /// grant, markers → channel close + `Closed_conn`) and feeding
    /// grants, nacks and scheduler replies into any in-flight
    /// [`Self::connect_step`] state.
    pub fn pump(&mut self) -> Result<(), ProtoError> {
        while let Some(ev) = self.next_event(Duration::ZERO)? {
            self.note_event(ev)?;
        }
        Ok(())
    }

    /// Resolve one classified event against the cooperative connect
    /// state (the stepwise analogue of the match arms inside the
    /// blocking `connect` wait loop).
    fn note_event(&mut self, ev: Event) -> Result<(), ProtoError> {
        match ev {
            // `classify` already installed pl + cc; the pending attempt
            // (crossing or our own) is satisfied.
            Event::Granted { peer, .. } | Event::InboundConn(peer)
                if self.cc.contains_key(&peer) =>
            {
                self.pending_conn.remove(&peer);
            }
            // Fig 3 lines 9–14, cooperatively: invalidate the cached
            // location and *fire* the scheduler lookup instead of
            // awaiting it. A nack during a peer's migration resolves
            // once the directory names the committed destination.
            Event::Nacked { req_id } => {
                let dest = self.pending_conn.iter().find_map(|(d, pc)| match pc {
                    PendingConn::Req { req_id: r, .. } if *r == req_id => Some(*d),
                    _ => None,
                });
                if let Some(dest) = dest {
                    self.trace(EventKind::ConnNack { to: dest });
                    self.pl.remove(&dest);
                    self.begin_lookup(dest)?;
                }
            }
            Event::Sched(SchedReply::Location {
                about,
                status,
                vmid,
            }) => {
                if matches!(
                    self.pending_conn.get(&about),
                    Some(PendingConn::Lookup { .. })
                ) {
                    match (status, vmid) {
                        (ExeStatus::Terminated, _) | (_, None) => {
                            self.pending_conn.remove(&about);
                            return Err(ProtoError::DestinationTerminated(about));
                        }
                        (_, Some(v)) => {
                            // Fresh location cached; the next
                            // `connect_step` sends the conn_req there.
                            self.pl.insert(about, v);
                            self.pending_conn.remove(&about);
                        }
                    }
                }
            }
            Event::Sched(SchedReply::Error { reason }) => {
                return Err(ProtoError::Scheduler(reason))
            }
            _ => {}
        }
        Ok(())
    }

    /// Fire (not await) a scheduler lookup for `dest` and record it as
    /// the pending connect state.
    fn begin_lookup(&mut self, dest: Rank) -> Result<(), ProtoError> {
        self.trace(EventKind::SchedulerConsult { about: dest });
        self.cell.sched_send(SchedRequest::Lookup {
            about: dest,
            reply: self.cell.reply_sender(),
        })?;
        self.pending_conn.insert(
            dest,
            PendingConn::Lookup {
                next_resend: Instant::now() + CONN_RESEND,
            },
        );
        Ok(())
    }

    /// Address and route one `conn_req` to `target`, recording it as
    /// pending; a gone host invalidates the location and falls back to
    /// a lookup (§3.1 requester-side daemon rejection).
    fn send_conn_req(&mut self, dest: Rank, req_id: u64, target: Vmid) -> Result<(), ProtoError> {
        let req = ConnReqMsg {
            req_id,
            from_rank: self.rank,
            from_vmid: self.cell.vmid(),
            target,
            reply: self.cell.reply_sender(),
            data_to_requester: self.cell.data_sender_to_me(target.host),
        };
        self.trace(EventKind::ConnReq { to: dest });
        if let Err(EnvError::HostGone(_)) = self.cell.route_conn_req(req) {
            self.trace(EventKind::ConnNack { to: dest });
            self.pl.remove(&dest);
            self.begin_lookup(dest)?;
        } else {
            self.pending_conn.insert(
                dest,
                PendingConn::Req {
                    req_id,
                    target,
                    next_resend: Instant::now() + CONN_RESEND,
                },
            );
        }
        Ok(())
    }

    /// One non-blocking step of `connect` (Fig 3): returns `true` once
    /// `dest` is in the `Connected` set. Each call advances the state
    /// machine by at most one outbound message — the conn_req (or the
    /// lookup that must precede it), or a re-send of a stalled one past
    /// its pacing deadline. Grants, nacks and location replies arrive
    /// through [`Self::pump`]. Unlike the blocking `connect` there is
    /// no stale-retry cap: a harness stepping many ranks paces the
    /// retry loop naturally, and nacks during a peer's migration are
    /// expected to persist until the directory commits.
    pub fn connect_step(&mut self, dest: Rank) -> Result<bool, ProtoError> {
        if self.cc.contains_key(&dest) {
            self.pending_conn.remove(&dest);
            return Ok(true);
        }
        let now = Instant::now();
        match self.pending_conn.get(&dest) {
            Some(PendingConn::Lookup { next_resend }) => {
                if now >= *next_resend {
                    self.begin_lookup(dest)?;
                }
            }
            Some(PendingConn::Req {
                req_id,
                target,
                next_resend,
            }) => {
                if now >= *next_resend {
                    let (req_id, target) = (*req_id, *target);
                    self.send_conn_req(dest, req_id, target)?;
                }
            }
            None => match self.pl.get(&dest) {
                Some(v) => {
                    let target = *v;
                    let req_id = self.cell.next_req_id();
                    self.send_conn_req(dest, req_id, target)?;
                }
                None => self.begin_lookup(dest)?,
            },
        }
        Ok(self.cc.contains_key(&dest))
    }

    /// Non-blocking send (Fig 2): `Ok(true)` when the message was
    /// posted to the channel, `Ok(false)` when the connection is still
    /// being established (nothing was sent — call again later). A
    /// channel that died because the peer migrated away or terminated
    /// is dropped and re-resolved on the next call, like the blocking
    /// `send`'s retry loop unrolled one step per call.
    pub fn try_send(&mut self, dest: Rank, tag: Tag, payload: &Bytes) -> Result<bool, ProtoError> {
        self.pump()?;
        if !self.connect_step(dest)? {
            return Ok(false);
        }
        let env = Envelope {
            src: self.rank,
            tag,
            msg: self.cell.tracer().next_msg_id(),
            payload: Payload::Data(payload.clone()),
        };
        let bytes = env.wire_bytes();
        let msg = env.msg;
        let t_send = if self.cell.tracer().is_enabled() {
            Some(self.cell.tracer().now_ns())
        } else {
            None
        };
        let tx = self.cc.get(&dest).expect("connected after connect_step");
        match tx.send_classed(Incoming::Data(env), bytes, FrameClass::Data) {
            Ok(()) => {
                if let Some(t_send) = t_send {
                    self.cell.trace_at(
                        t_send,
                        EventKind::Send {
                            to: dest,
                            tag,
                            bytes: payload.len(),
                            msg,
                        },
                    );
                }
                Ok(true)
            }
            Err(_) => {
                self.cc.remove(&dest);
                self.pl.remove(&dest);
                Ok(false)
            }
        }
    }

    /// Non-blocking receive (Fig 4): drain deliverable traffic, then
    /// take a buffered match from the received-message-list if one
    /// exists.
    pub fn try_recv(
        &mut self,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<Option<(Rank, Tag, Bytes)>, ProtoError> {
        self.pump()?;
        match self.rml.take_match(src, tag) {
            Some(env) => {
                let body = match env.payload {
                    Payload::Data(b) => b,
                    _ => unreachable!("only data envelopes enter the RML"),
                };
                self.trace(EventKind::RecvDone {
                    from: env.src,
                    tag: env.tag,
                    bytes: body.len(),
                    msg: env.msg,
                    from_rml: true,
                });
                Ok(Some((env.src, env.tag, body)))
            }
            None => Ok(None),
        }
    }

    // ------------------------------------------------------------------
    // poll points & signals (Fig 6, §5.2)
    // ------------------------------------------------------------------

    /// A poll point: process queued signals, exactly as the prototype's
    /// migration macros do at compiler-selected locations. Returns
    /// `true` when a `migration_request` has been intercepted and the
    /// application should call [`SnowProcess::migrate`].
    ///
    /// Signals are *only* handled here (and in [`Self::compute`]) —
    /// never inside send/recv — which realises the `sighold`/`sigrelse`
    /// discipline of §5.2.
    pub fn poll_point(&mut self) -> Result<bool, ProtoError> {
        while let Some(sig) = self.cell.poll_signal() {
            self.handle_signal(sig)?;
        }
        Ok(self.migrate_pending)
    }

    /// React to one delivered signal (shared by [`Self::poll_point`] and
    /// [`Self::await_migration_request`]).
    fn handle_signal(&mut self, sig: Signal) -> Result<(), ProtoError> {
        match sig {
            Signal::Migrate => {
                self.cell.trace(EventKind::SignalDelivered {
                    signal: "SIGMIGRATE",
                });
                self.migrate_pending = true;
            }
            Signal::Disconnect { from } => {
                self.cell.trace(EventKind::SignalDelivered {
                    signal: "SIGDISCONNECT",
                });
                self.disconnection_handler(from)?;
            }
        }
        Ok(())
    }

    /// Block until a `migration_request` signal is intercepted or
    /// `timeout` elapses, servicing other signals meanwhile. Returns
    /// whether migration is now pending. This is the event-driven
    /// equivalent of spinning on [`Self::poll_point`] with sleeps: it
    /// parks on the signal queue, so tests and drivers that wait for a
    /// scheduler-initiated migration wake the instant the signal lands.
    pub fn await_migration_request(&mut self, timeout: Duration) -> Result<bool, ProtoError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.migrate_pending {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            match self.cell.wait_signal(deadline - now) {
                Some(sig) => self.handle_signal(sig)?,
                None => return Ok(self.migrate_pending),
            }
        }
    }

    /// Has a migration request been intercepted (without polling again)?
    pub fn migration_pending(&self) -> bool {
        self.migrate_pending
    }

    /// The disconnection handler (Fig 6): if the coordination for some
    /// migrating peer has not already been performed by `recv`
    /// (`Closed_conn == 0`), drain messages into the RML until a
    /// `peer_migrating` marker arrives, then close that channel;
    /// otherwise consume one unit of completed coordination.
    fn disconnection_handler(&mut self, _from: Rank) -> Result<(), ProtoError> {
        if self.closed_conn == 0 {
            loop {
                match self.wait_event("disconnection_handler")? {
                    Event::PeerMigrated(_) => break,
                    _ => continue,
                }
            }
            // `classify` incremented Closed_conn for the marker we just
            // consumed; this handler invocation pairs with it.
            self.closed_conn -= 1;
        } else {
            self.closed_conn -= 1;
        }
        Ok(())
    }

    /// A computation event of `modeled_seconds` of work: sleeps the
    /// scaled real time, then hits a poll point. Returns `true` when
    /// migration was requested.
    pub fn compute(&mut self, modeled_seconds: f64) -> Result<bool, ProtoError> {
        self.trace(EventKind::Compute {
            work: (modeled_seconds * 1e6) as u64,
        });
        let real = self.cell.time_scale().real(modeled_seconds);
        if !real.is_zero() {
            std::thread::sleep(real);
        }
        self.poll_point()
    }

    /// Graceful termination: tells the scheduler this rank is done
    /// (peers that later try to reach it get "destination terminated").
    pub fn finish(self) {
        let _ = self
            .cell
            .sched_send(SchedRequest::Terminated { rank: self.rank });
    }
}
