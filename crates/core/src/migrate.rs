//! Process migration (Fig 5) and initialization (Fig 7).
//!
//! `migrate()` runs on the migrating process after a `migration_request`
//! signal was intercepted at a poll point; `initialize()` runs as the
//! body of the process the scheduler spawned on the destination host.
//! Together they transfer the communication state: connections are
//! drained and closed with Chandy-Lamport-style marker coordination
//! \[28\], in-transit messages are captured in the received-message-list
//! and forwarded, and the exe+mem state follows on the same FIFO
//! channel.
//!
//! # Abortable migration
//!
//! The paper assumes the destination survives the transfer. This
//! reproduction treats phase 1 (everything before `migration_commit`)
//! as an abortable transaction instead: the destination acknowledges
//! the verified state with a [`snow_vm::Payload::StateAck`] before the
//! commit handshake, and on any phase-1 failure — destination host
//! gone, transfer channel dead, checksum/digest rejection, ack
//! watchdog — the source reports [`SchedRequest::MigrationAbort`]. The
//! scheduler reaps the half-initialized destination and either
//! re-targets the migration at an alternate live host (retry policy) or
//! rolls the directory back, at which point the source restores its
//! drained RML (zero message loss), re-opens its gates, re-announces to
//! the peers it had coordinated away, and resumes in place with
//! [`MigrationOutcome::Aborted`].

use crate::error::ProtoError;
use crate::process::{scaled_watchdog, Event, SnowProcess, CONN_RESEND, TAG_CTRL, TICK};
use bytes::Bytes;
use snow_net::FrameClass;
use snow_state::{
    ChunkedRestorer, PipelineConfig, ProcessState, RestoreTeardown, StateCostModel, StateError,
};
use snow_trace::{metrics::MigrationMetrics, metrics::MigrationVerdict, EventKind};
use snow_vm::wire::{ConnReqMsg, SchedReply, SchedRequest};
use snow_vm::{Envelope, Incoming, Payload, PostSender, ProcessCell, Rank, Signal, Vmid};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Timing breakdown of one migration, as measured by the two protocol
/// halves. "Modeled" components come from the calibrated cost models
/// (host speed, link bandwidth); "real" components are wall-clock on the
/// machine running the reproduction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationTimings {
    /// Real seconds coordinating connected peers (signal + markers +
    /// drain + close) — Table 2 row "Coordinate".
    pub coordinate_real_s: f64,
    /// Modeled seconds to collect the exe+mem state — row "Collect".
    pub collect_modeled_s: f64,
    /// Modeled seconds to push the state across the network — row "Tx".
    pub tx_modeled_s: f64,
    /// Modeled seconds to restore on the destination — row "Restore",
    /// estimated by the source from the destination host's speed (the
    /// initialized process naps the same model on its own clock).
    pub restore_modeled_s: f64,
    /// Modeled seconds for the overlapped collect→tx→restore pipeline:
    /// the makespan of the chunk schedule rather than the sum of its
    /// stages. For a monolithic transfer this equals
    /// `collect + tx + restore`.
    pub pipelined_modeled_s: f64,
    /// Chunks the state was streamed as (1 for a monolithic transfer).
    pub chunks: usize,
    /// Encoder workers used (0 = monolithic path).
    pub workers: usize,
    /// Canonical state size in bytes.
    pub state_bytes: usize,
    /// In-transit messages captured and forwarded (Fig 13 behaviour).
    pub rml_forwarded: usize,
}

impl MigrationTimings {
    /// Total migration cost with the serial state transfer the paper
    /// measures — Table 2 row "Migrate" (coordinate + collect + tx +
    /// restore, each stage strictly after the previous).
    pub fn total_s(&self) -> f64 {
        self.serial_total_s()
    }

    /// Serial-sum total: what the migration costs without stage overlap.
    pub fn serial_total_s(&self) -> f64 {
        self.coordinate_real_s + self.collect_modeled_s + self.tx_modeled_s + self.restore_modeled_s
    }

    /// Pipelined total: coordinate plus the overlapped-schedule makespan.
    pub fn pipelined_total_s(&self) -> f64 {
        self.coordinate_real_s + self.pipelined_modeled_s
    }

    /// Clear the per-attempt transfer fields. Coordination cost and the
    /// forwarded-RML count are shared across retry attempts and survive.
    fn reset_attempt(&mut self) {
        self.collect_modeled_s = 0.0;
        self.tx_modeled_s = 0.0;
        self.restore_modeled_s = 0.0;
        self.pipelined_modeled_s = 0.0;
        self.chunks = 0;
        self.workers = 0;
        self.state_bytes = 0;
    }
}

/// What [`SnowProcess::migrate`] resolved to.
#[must_use = "an aborted migration hands the process back; dropping the outcome loses the rank"]
pub enum MigrationOutcome {
    /// The destination acknowledged the state: execution resumes there
    /// and the caller must return from its entry function (Fig 5
    /// line 11).
    Completed(MigrationTimings),
    /// The migration was rolled back: the caller owns the process again
    /// — same vmid, restored RML, gates re-opened — and must keep
    /// running in place. Boxed: the handed-back process dwarfs the
    /// timings of the common completed case.
    Aborted(Box<AbortedMigration>),
}

impl MigrationOutcome {
    /// The timings of a migration that must have completed. Panics with
    /// the abort reason otherwise — the assertion style tests use when
    /// an abort would itself be a failure.
    #[track_caller]
    pub fn expect_completed(self) -> MigrationTimings {
        match self {
            MigrationOutcome::Completed(t) => t,
            MigrationOutcome::Aborted(a) => panic!(
                "migration aborted after {} attempt(s): {}",
                a.attempts, a.reason
            ),
        }
    }

    /// Did the migration roll back?
    pub fn is_aborted(&self) -> bool {
        matches!(self, MigrationOutcome::Aborted(_))
    }
}

/// A rolled-back migration: everything the caller needs to resume.
pub struct AbortedMigration {
    /// The process, live again at its pre-migration vmid.
    pub process: SnowProcess,
    /// The failure that triggered the (final) abort.
    pub reason: String,
    /// Transfer attempts made before giving up (1 = no retry policy or
    /// first attempt already unrecoverable).
    pub attempts: u32,
    /// Messages restored to the received-message-list: the drained RML
    /// plus any deposits the reaped destination returned. The zero-loss
    /// guarantee is that nothing drained for the transfer is dropped.
    pub rml_restored: usize,
}

/// The scheduler's ruling on a [`SchedRequest::MigrationAbort`].
enum AbortDecision {
    /// Retry the transfer against a freshly initialized process.
    Retry {
        new_vmid: Vmid,
        attempt: u32,
        backoff_ms: u64,
    },
    /// Rolled back: the directory points at the source again.
    Aborted,
    /// The destination committed before the abort landed: the migration
    /// stands and the source must terminate as on success.
    Denied,
}

impl SnowProcess {
    /// The migrate() algorithm (Fig 5), as a two-phase transaction.
    /// Consumes the process; the outcome decides who owns the rank:
    ///
    /// * [`MigrationOutcome::Completed`] — the application must return
    ///   from its entry function, terminating the migrating process
    ///   (Fig 5 line 11). Execution resumes inside the initialized
    ///   process on the destination host.
    /// * [`MigrationOutcome::Aborted`] — the transfer failed before
    ///   commit and was rolled back; the process is handed back and the
    ///   application must resume in place.
    pub fn migrate(mut self, state: &ProcessState) -> Result<MigrationOutcome, ProtoError> {
        let wall0 = Instant::now();
        let mut timings = MigrationTimings::default();
        let mut retry_causes: Vec<String> = Vec::new();
        self.trace_mig(EventKind::MigrationStart { rank: self.rank });

        // Lines 2–3: inform the scheduler, learn the initialized
        // process's vmid.
        self.cell.sched_send(SchedRequest::MigrationStart {
            rank: self.rank,
            reply: self.cell.reply_sender(),
        })?;
        let new_vmid = loop {
            match self.wait_event("migration_start handshake")? {
                Event::Sched(SchedReply::NewVmid { new_vmid }) => break new_vmid,
                Event::Sched(SchedReply::Error { reason }) => {
                    return Err(ProtoError::Scheduler(reason))
                }
                _ => continue,
            }
        };

        // Line 4: tell the local daemon to reject all future conn_req,
        // and reject those already queued — `classify` nacks inbound
        // requests while `migrating` is set, which covers requests that
        // raced past the daemon before the flag landed.
        self.migrating = true;
        self.cell.set_reject_all(true);

        // Lines 5–7: coordinate connected peers. A failure here (a live
        // peer that never produced its marker) aborts the migration
        // instead of wedging the process; channels are force-closed
        // either way so the abort rolls back from a consistent state.
        let mut coordinated: Vec<Rank> = Vec::new();
        let mut failure = self.coordinate_peers(&mut timings, &mut coordinated).err();

        // The RML drained for forwarding is *retained* by the source
        // until the destination acknowledges the state: re-forwarded on
        // retry, restored verbatim on abort.
        let mut batch = self.rml.drain_all();
        timings.rml_forwarded = batch.len();

        let mut attempts: u32 = 1;
        let mut target = new_vmid;
        loop {
            if failure.is_none() {
                match self.transfer_to(target, &batch, state, &mut timings) {
                    // Line 11: terminate — the caller returns from the
                    // app function; the spawn wrapper unregisters us and
                    // notifies the daemon.
                    Ok(()) => {
                        self.record_migration_metrics(
                            MigrationVerdict::Committed,
                            attempts,
                            &timings,
                            wall0,
                            0,
                            retry_causes,
                            None,
                        );
                        return Ok(MigrationOutcome::Completed(timings));
                    }
                    Err(cause) => failure = Some(cause),
                }
            }
            let cause = failure.take().expect("loop iterates with a failure");

            // Deposits a failed destination returned before standing
            // down ride behind the original batch: per-peer FIFO holds
            // because everything there arrived after our drain.
            batch.extend(self.rml.drain_all());

            match self.request_abort(&cause)? {
                AbortDecision::Retry {
                    new_vmid,
                    attempt,
                    backoff_ms,
                } => {
                    self.trace_mig(EventKind::MigrationRetried { attempt });
                    retry_causes.push(cause);
                    attempts = attempt;
                    target = new_vmid;
                    if backoff_ms > 0 {
                        std::thread::sleep(Duration::from_millis(backoff_ms));
                    }
                }
                AbortDecision::Denied => {
                    self.record_migration_metrics(
                        MigrationVerdict::Committed,
                        attempts,
                        &timings,
                        wall0,
                        0,
                        retry_causes,
                        None,
                    );
                    return Ok(MigrationOutcome::Completed(timings));
                }
                AbortDecision::Aborted => {
                    let aborted = self.roll_back(batch, &coordinated, cause, attempts);
                    aborted.process.record_migration_metrics(
                        MigrationVerdict::Aborted,
                        attempts,
                        &timings,
                        wall0,
                        aborted.rml_restored,
                        retry_causes,
                        Some(aborted.reason.clone()),
                    );
                    return Ok(MigrationOutcome::Aborted(Box::new(aborted)));
                }
            }
        }
    }

    /// Deposit this migration's measurements into the shared metrics
    /// registry. Skipped entirely when tracing is disabled so the
    /// Table 1 overhead experiment stays unpolluted.
    #[allow(clippy::too_many_arguments)]
    fn record_migration_metrics(
        &self,
        verdict: MigrationVerdict,
        attempts: u32,
        timings: &MigrationTimings,
        wall0: Instant,
        rml_restored: usize,
        retry_causes: Vec<String>,
        abort_cause: Option<String>,
    ) {
        let tracer = self.cell.tracer();
        if !tracer.is_enabled() {
            return;
        }
        tracer.metrics().record_migration(MigrationMetrics {
            rank: self.rank,
            verdict,
            attempts,
            coordinate_s: timings.coordinate_real_s,
            collect_s: timings.collect_modeled_s,
            tx_s: timings.tx_modeled_s,
            restore_s: timings.restore_modeled_s,
            pipelined_s: timings.pipelined_modeled_s,
            wall_s: wall0.elapsed().as_secs_f64(),
            state_bytes: timings.state_bytes,
            chunks: timings.chunks,
            rml_forwarded: timings.rml_forwarded,
            rml_restored,
            retry_causes,
            abort_cause,
        });
    }

    fn trace_mig(&self, kind: EventKind) {
        self.cell.trace(kind);
    }

    /// Fig 5 lines 5–7: send `peer_migrating` markers plus disconnection
    /// signals, drain every coordinated channel into the RML, absorb
    /// stragglers, close everything. Peers whose marker was delivered
    /// are appended to `coordinated` (the abort path re-announces to
    /// exactly those). Errors carry the abort cause; channels are closed
    /// and the coordinate timing stamped even on failure.
    fn coordinate_peers(
        &mut self,
        timings: &mut MigrationTimings,
        coordinated: &mut Vec<Rank>,
    ) -> Result<(), String> {
        let t0 = Instant::now();
        let mut awaiting: HashSet<Rank> = self.cc.keys().copied().collect();
        let peers: Vec<Rank> = awaiting.iter().copied().collect();
        for peer in peers {
            let env = Envelope {
                src: self.rank,
                tag: TAG_CTRL,
                msg: self.cell.tracer().next_msg_id(),
                payload: Payload::PeerMigrating,
            };
            let bytes = env.wire_bytes();
            let delivered = self
                .cc
                .get(&peer)
                .map(|tx| tx.send(Incoming::Data(env), bytes).is_ok())
                .unwrap_or(false);
            self.trace_mig(EventKind::PeerMigratingSent { peer });
            if !delivered {
                // Peer already terminated; nothing to drain from it.
                awaiting.remove(&peer);
                continue;
            }
            coordinated.push(peer);
            // The disconnection signal interrupts the peer if it is
            // computing (Fig 6); if it is in recv, the marker alone
            // suffices (Fig 4 lines 12–14).
            if let Some(v) = self.pl.get(&peer) {
                self.cell
                    .send_signal(*v, Signal::Disconnect { from: self.rank });
            }
        }

        // Line 6: receive into the RML until end_of_messages (peer not
        // migrating) or peer_migrating (peer migrating simultaneously)
        // arrives from every connected peer. The deadline honours the
        // environment's time scale: a slowed modeled host legitimately
        // drains slowly.
        let deadline = Instant::now() + scaled_watchdog(self.cell.time_scale());
        let mut failure: Option<String> = None;
        while !awaiting.is_empty() {
            match self.next_event(TICK) {
                Err(e) => {
                    failure = Some(format!("environment failed during drain: {e}"));
                    break;
                }
                Ok(Some(Event::EndOfMessages(p) | Event::PeerMigrated(p))) => {
                    awaiting.remove(&p);
                }
                Ok(Some(_)) => {}
                Ok(None) => {
                    self.sample_drain_depth();
                    // Liveness check: a peer that died uncoordinated
                    // cannot ever send its marker.
                    awaiting.retain(|p| match self.pl.get(p) {
                        Some(v) => self.cell.shared().registry().addr_of(*v).is_some(),
                        None => false,
                    });
                    if Instant::now() >= deadline {
                        failure = Some(format!(
                            "drain watchdog expired awaiting markers from {} peer(s)",
                            awaiting.len()
                        ));
                        break;
                    }
                }
            }
        }

        // Absorb everything still deliverable in the inbox into the RML.
        // Live peers are fully drained by the marker protocol (FIFO puts
        // their data before end_of_messages); this catches messages from
        // peers that terminated after sending, which can never produce a
        // marker. Such frames may still sit *staged* behind a modeled
        // wire delay (e.g. injected jitter on the last message of a peer
        // that finished right after sending): wait the backlog out, or
        // those in-flight frames would be dropped with the channels.
        loop {
            while let Ok(Some(_)) = self.next_event(Duration::ZERO) {}
            if self.cell.inbox_backlog() == 0 || Instant::now() >= deadline {
                break;
            }
            let _ = self.next_event(TICK);
        }

        // Line 7: close all existing connections. Peers that coordinated
        // were closed by the marker handling; anything left (e.g.
        // simultaneous migration races, or a failed drain) closes here.
        let still_open: Vec<Rank> = self.cc.keys().copied().collect();
        for peer in still_open {
            self.close_channel_to(peer);
        }
        timings.coordinate_real_s = t0.elapsed().as_secs_f64();
        // Close the drain with a peak-depth sample so the registry sees
        // the link's high-water mark even if every tick caught it empty.
        let tracer = self.cell.tracer();
        if tracer.is_enabled() {
            tracer.metrics().sample_queue_depth(
                &format!("{}:staged-peak", self.cell.label()),
                tracer.now_ns(),
                self.cell.inbox_staged_high_water(),
            );
        }
        match failure {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// One queue-depth sample of this process's inbox, taken on each
    /// quiet tick of the drain loop. Feeds the per-link queue-depth
    /// series in the metrics registry.
    fn sample_drain_depth(&self) {
        let tracer = self.cell.tracer();
        if tracer.is_enabled() {
            tracer.metrics().sample_queue_depth(
                self.cell.label(),
                tracer.now_ns(),
                self.cell.inbox_backlog(),
            );
        }
    }

    /// One transfer attempt against `target`: connect, forward the RML
    /// batch, stream the state, wait for the destination's verdict.
    /// Errors are abort causes, not hard failures — the caller asks the
    /// scheduler what to do next.
    fn transfer_to(
        &mut self,
        target: Vmid,
        batch: &[Envelope],
        state: &ProcessState,
        timings: &mut MigrationTimings,
    ) -> Result<(), String> {
        timings.reset_attempt();

        // Line 8: a direct channel to the initialized process (it
        // accepts all connection requests, Fig 7 line 1).
        let state_tx = self
            .connect_to_vmid(target)
            .map_err(|e| format!("state-transfer connect failed: {e}"))?;

        self.trace_mig(EventKind::RmlForwarded {
            count: batch.len(),
            bytes: batch.iter().map(Envelope::wire_bytes).sum(),
        });
        let env = Envelope {
            src: self.rank,
            tag: TAG_CTRL,
            msg: self.cell.tracer().next_msg_id(),
            payload: Payload::RmlBatch(batch.to_vec()),
        };
        let nbytes = env.wire_bytes();
        state_tx
            .send_classed(Incoming::Data(env), nbytes, FrameClass::Data)
            .map_err(|_| "transfer channel closed before the RML batch".to_string())?;

        // Lines 9–10: collect and send the execution and memory state
        // (cost modeled by host speed and link bandwidth).
        let speed = self.cell.host_spec().map(|h| h.speed).unwrap_or(1.0);
        let dest_speed = self
            .cell
            .shared()
            .host_spec(target.host)
            .map(|h| h.speed)
            .unwrap_or(1.0);
        let link = self.cell.shared().path(self.cell.vmid().host, target.host);

        if self.pipeline.is_monolithic() {
            // Serial path: collect everything, then ship one frame —
            // each stage strictly after the previous, as the paper
            // measures it.
            let mut bytes = state.collect();
            if self.corrupt_chunk.take().is_some() {
                // Failure injection: flip one body byte so the
                // destination's checksum verification rejects the image.
                if let Some(b) = bytes.last_mut() {
                    *b ^= 0xff;
                }
            }
            timings.state_bytes = bytes.len();
            timings.collect_modeled_s = self.cost.collect_seconds(bytes.len(), speed);
            let nap = self.cell.time_scale().real(timings.collect_modeled_s);
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
            self.trace_mig(EventKind::StateCollected { bytes: bytes.len() });

            timings.tx_modeled_s = link.transfer_seconds(bytes.len());
            timings.restore_modeled_s = self.cost.restore_seconds(bytes.len(), dest_speed);
            timings.pipelined_modeled_s =
                timings.collect_modeled_s + timings.tx_modeled_s + timings.restore_modeled_s;
            timings.chunks = 1;
            let env = Envelope {
                src: self.rank,
                tag: TAG_CTRL,
                msg: self.cell.tracer().next_msg_id(),
                payload: Payload::ExeMemState(Bytes::from(bytes)),
            };
            let nbytes = env.wire_bytes();
            state_tx
                .send_classed(Incoming::Data(env), nbytes, FrameClass::Data)
                .map_err(|_| "transfer channel closed sending the state frame".to_string())?;
            self.trace_mig(EventKind::StateTransmitted {
                bytes: timings.state_bytes,
            });
        } else {
            // Pipelined path: partition the state into chunks, encode on
            // a worker pool, ship each chunk as its own frame. Encoding
            // of chunk i+1 overlaps transmission of chunk i, and the
            // destination restores chunks as they arrive. The modeled
            // schedule tracks each chunk through `workers` encoders, the
            // FIFO wire, and the destination's restorer; its makespan is
            // the pipelined cost, while the plain sums remain the serial
            // (Table 2) stage costs.
            let cfg = self.pipeline.clone();
            let workers = cfg.workers.max(1);
            let mut corrupt = self.corrupt_chunk.take();
            let cell = &self.cell;
            let cost = self.cost;
            let rank = self.rank;
            let scale = cell.time_scale();
            let t0 = Instant::now();
            let mut worker_free = vec![0.0f64; workers];
            let mut wire_free = 0.0f64;
            let mut restore_free = 0.0f64;
            let mut collect_serial = 0.0f64;
            let mut tx_serial = 0.0f64;
            let mut restore_serial = 0.0f64;
            let summary = snow_state::stream_chunks(state, &cfg, |chunk| {
                let c_s = cost.collect_seconds(chunk.bytes.len(), speed);
                collect_serial += c_s;
                let w = (0..workers)
                    .min_by(|a, b| worker_free[*a].total_cmp(&worker_free[*b]))
                    .expect("at least one worker");
                worker_free[w] += c_s;
                let done_collect = worker_free[w];
                // Nap to this chunk's modeled encode-completion before
                // handing it to the wire, so the link model (which
                // serialises frames per sender) observes the overlapped
                // schedule rather than an instantaneous burst.
                let target = t0 + scale.real(done_collect);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                // Failure injection: misdeclare one chunk's checksum so
                // the destination's per-chunk verification rejects it.
                let mut checksum = chunk.checksum;
                if corrupt == Some(chunk.seq) {
                    corrupt = None;
                    checksum ^= 1;
                }
                let env = Envelope {
                    src: rank,
                    tag: TAG_CTRL,
                    msg: cell.tracer().next_msg_id(),
                    payload: Payload::ExeMemStateChunk {
                        seq: chunk.seq,
                        checksum,
                        bytes: Bytes::from(chunk.bytes.clone()),
                    },
                };
                let nbytes = env.wire_bytes();
                let tx_s = link.transfer_seconds(nbytes);
                tx_serial += tx_s;
                wire_free = done_collect.max(wire_free) + tx_s;
                let r_s = cost.restore_seconds(chunk.bytes.len(), dest_speed);
                restore_serial += r_s;
                restore_free = wire_free.max(restore_free) + r_s;
                state_tx
                    .send_classed(Incoming::Data(env), nbytes, FrameClass::Data)
                    .map_err(|_| "transfer channel closed mid chunk stream".to_string())?;
                cell.trace(EventKind::StateChunkSent {
                    seq: chunk.seq,
                    bytes: chunk.bytes.len(),
                });
                Ok::<(), String>(())
            })?;

            // Close the stream: the digest frame the destination must
            // reproduce before committing to the restored state.
            let env = Envelope {
                src: rank,
                tag: TAG_CTRL,
                msg: cell.tracer().next_msg_id(),
                payload: Payload::ExeMemStateDigest {
                    digest: summary.digest,
                    chunks: summary.chunks,
                    total_bytes: summary.total_bytes as u64,
                },
            };
            let nbytes = env.wire_bytes();
            let digest_tx_s = link.transfer_seconds(nbytes);
            tx_serial += digest_tx_s;
            wire_free += digest_tx_s;
            state_tx
                .send_classed(Incoming::Data(env), nbytes, FrameClass::Data)
                .map_err(|_| "transfer channel closed sending the digest frame".to_string())?;

            timings.state_bytes = summary.total_bytes;
            timings.collect_modeled_s = collect_serial;
            timings.tx_modeled_s = tx_serial;
            timings.restore_modeled_s = restore_serial;
            timings.pipelined_modeled_s = wire_free.max(restore_free);
            timings.chunks = summary.chunks as usize;
            timings.workers = cfg.workers;
            self.trace_mig(EventKind::StateCollected {
                bytes: summary.total_bytes,
            });
            self.trace_mig(EventKind::StateTransmitted {
                bytes: summary.total_bytes,
            });
        }

        // Phase-1 close: the destination verifies before we are allowed
        // to disappear.
        self.wait_state_ack(target)
    }

    /// Wait for the destination's [`Event::StateAck`], with per-tick
    /// liveness probes (a vanished destination can never answer) and a
    /// time-scaled watchdog. Acks from earlier, already-reaped attempts
    /// are discarded by vmid.
    fn wait_state_ack(&mut self, target: Vmid) -> Result<(), String> {
        let deadline = Instant::now() + scaled_watchdog(self.cell.time_scale());
        loop {
            match self.next_event(TICK) {
                Err(e) => return Err(format!("environment failed awaiting state ack: {e}")),
                Ok(Some(Event::StateAck { ok, from, detail })) => {
                    if from != target {
                        continue; // stale ack from an aborted attempt
                    }
                    if ok {
                        return Ok(());
                    }
                    return Err(format!("destination rejected the state: {detail}"));
                }
                Ok(Some(Event::StateBatch(returned))) => {
                    // A dying destination returned peer deposits; hold
                    // them in the RML for the retry/abort path.
                    for env in returned {
                        self.rml.append(env);
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) => {
                    if self.cell.shared().registry().addr_of(target).is_none() {
                        return Err("destination vanished awaiting state ack".to_string());
                    }
                    if Instant::now() >= deadline {
                        return Err("state ack watchdog expired".to_string());
                    }
                }
            }
        }
    }

    /// Report the failed transfer and wait for the scheduler's ruling:
    /// retry against a replacement destination, final abort, or denial
    /// because the destination already committed.
    fn request_abort(&mut self, cause: &str) -> Result<AbortDecision, ProtoError> {
        self.cell.sched_send(SchedRequest::MigrationAbort {
            rank: self.rank,
            reason: cause.to_string(),
            reply: self.cell.reply_sender(),
        })?;
        loop {
            match self.wait_event("migration abort handshake")? {
                Event::Sched(SchedReply::MigrationRetry {
                    new_vmid,
                    attempt,
                    backoff_ms,
                }) => {
                    return Ok(AbortDecision::Retry {
                        new_vmid,
                        attempt,
                        backoff_ms,
                    })
                }
                Event::Sched(SchedReply::MigrationAborted { rank }) if rank == self.rank => {
                    return Ok(AbortDecision::Aborted)
                }
                Event::Sched(SchedReply::MigrationAbortDenied { rank }) if rank == self.rank => {
                    return Ok(AbortDecision::Denied)
                }
                Event::Sched(SchedReply::Error { reason }) => {
                    return Err(ProtoError::Scheduler(reason))
                }
                Event::StateBatch(returned) => {
                    for env in returned {
                        self.rml.append(env);
                    }
                }
                _ => continue,
            }
        }
    }

    /// Roll the process back to a running state after a final abort: the
    /// scheduler has already restored the directory. Restores the
    /// retained RML in front of anything received since (zero loss),
    /// re-opens the connection gates, and re-announces to the peers that
    /// were coordinated away with a [`Payload::MigrationAborted`] marker
    /// (best effort — a peer that migrated or terminated meanwhile is
    /// skipped; it re-locates us on demand through the directory).
    fn roll_back(
        mut self,
        mut batch: Vec<Envelope>,
        coordinated: &[Rank],
        reason: String,
        attempts: u32,
    ) -> AbortedMigration {
        // Sweep any already-delivered deposit return from the reaped
        // destination before restoring the batch.
        while let Ok(Some(ev)) = self.next_event(Duration::ZERO) {
            if let Event::StateBatch(returned) = ev {
                for env in returned {
                    self.rml.append(env);
                }
            }
        }
        batch.extend(self.rml.drain_all());
        let rml_restored = batch.len();
        self.rml.prepend_batch(batch);
        // Reopen the gates only after the RML is back in place: nothing
        // new can be accepted while `migrating` still nacks for us.
        self.migrating = false;
        self.migrate_pending = false;
        self.cell.set_reject_all(false);
        self.trace_mig(EventKind::MigrationAborted {
            rank: self.rank,
            attempt: attempts,
        });
        for &peer in coordinated {
            if self.connect(peer).is_err() {
                continue;
            }
            if let Some(tx) = self.cc.get(&peer) {
                let env = Envelope {
                    src: self.rank,
                    tag: TAG_CTRL,
                    msg: self.cell.tracer().next_msg_id(),
                    payload: Payload::MigrationAborted,
                };
                let nbytes = env.wire_bytes();
                let _ = tx.send(Incoming::Data(env), nbytes);
            }
        }
        AbortedMigration {
            process: self,
            reason,
            attempts,
            rml_restored,
        }
    }

    /// Establish a channel to an explicit vmid (the initialized
    /// process). Same machinery as `connect()` but addressed by vmid,
    /// since the PL table still maps our rank to ourselves. Nacks are
    /// retried with exponential backoff under a time-scaled watchdog
    /// deadline; a departed destination host fails fast.
    fn connect_to_vmid(&mut self, target: Vmid) -> Result<PostSender<Incoming>, ProtoError> {
        let deadline = Instant::now() + scaled_watchdog(self.cell.time_scale());
        let mut backoff = Duration::from_millis(1);
        const BACKOFF_CAP: Duration = Duration::from_millis(64);
        // A grant from an earlier, reaped attempt may have parked a
        // stale transfer channel under our rank; clear it so the next
        // grant records cleanly.
        self.cc.remove(&self.rank);
        loop {
            // A destination host that left the environment can never
            // grant: fail fast instead of burning the whole deadline.
            if self.cell.shared().host_spec(target.host).is_none() {
                return Err(ProtoError::Env(snow_vm::process::EnvError::HostGone(
                    target.host,
                )));
            }
            let req_id = self.cell.next_req_id();
            let req = ConnReqMsg {
                req_id,
                from_rank: self.rank,
                from_vmid: self.cell.vmid(),
                target,
                reply: self.cell.reply_sender(),
                data_to_requester: self.cell.data_sender_to_me(target.host),
            };
            self.cell.route_conn_req(req)?;
            // The request and its reply are datagrams: either may be
            // dropped by an armed fault plan, so re-send under the same
            // req_id until the destination answers.
            let mut next_resend = Instant::now() + CONN_RESEND;
            loop {
                let ev = match self.next_event(TICK)? {
                    Some(ev) => ev,
                    None => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(ProtoError::Watchdog("state-transfer connect"));
                        }
                        if now >= next_resend {
                            next_resend = now + CONN_RESEND;
                            let again = ConnReqMsg {
                                req_id,
                                from_rank: self.rank,
                                from_vmid: self.cell.vmid(),
                                target,
                                reply: self.cell.reply_sender(),
                                data_to_requester: self.cell.data_sender_to_me(target.host),
                            };
                            self.cell.route_conn_req(again)?;
                        }
                        continue;
                    }
                };
                match ev {
                    Event::Granted { req_id: r, .. } if r == req_id => {
                        // Do not record this in cc: it is the transfer
                        // channel, not an application connection. Build
                        // a dedicated sender from the grant.
                        // `classify` stored it in cc under our own rank
                        // (peer_rank == self.rank); pull it back out.
                        return match self.cc.remove(&self.rank) {
                            Some(tx) => Ok(tx),
                            None => Err(ProtoError::Protocol(
                                "transfer-channel grant carried no channel",
                            )),
                        };
                    }
                    Event::Nacked { req_id: r } if r == req_id => {
                        // Initialized process not ready yet (spawn
                        // race): back off and retry until the scaled
                        // watchdog gives up.
                        if Instant::now() >= deadline {
                            return Err(ProtoError::Watchdog("state-transfer connect"));
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        break;
                    }
                    Event::Granted { peer, .. } if peer == self.rank => {
                        // Stale grant from a reaped earlier attempt:
                        // drop the channel it parked so the grant we
                        // are waiting for records cleanly.
                        self.cc.remove(&self.rank);
                    }
                    Event::StateBatch(returned) => {
                        // Deposit return from the previous, reaped
                        // attempt arriving while we connect to the
                        // replacement.
                        for env in returned {
                            self.rml.append(env);
                        }
                    }
                    _ => continue,
                }
            }
        }
    }
}

/// Send the destination's verdict on the transferred state back to the
/// source over the transfer back-channel (recorded in `cc` under the
/// migrating rank when the source's `conn_req` was granted).
fn send_state_ack(p: &mut SnowProcess, rank: Rank, ok: bool, detail: &str) {
    if let Some(tx) = p.cc.get(&rank) {
        let env = Envelope {
            src: rank,
            tag: TAG_CTRL,
            msg: p.cell.tracer().next_msg_id(),
            payload: Payload::StateAck {
                ok,
                from: p.cell.vmid(),
                detail: detail.to_string(),
            },
        };
        let nbytes = env.wire_bytes();
        let _ = tx.send(Incoming::Data(env), nbytes);
    }
}

/// Return every message peers deposited at this half-initialized
/// destination to the source (ahead of the verdict on the same FIFO
/// channel), so an abort loses nothing: the source folds them behind its
/// retained RML batch.
fn return_deposits(p: &mut SnowProcess, rank: Rank) {
    let deposits = p.rml.drain_all();
    if deposits.is_empty() {
        return;
    }
    if let Some(tx) = p.cc.get(&rank) {
        let env = Envelope {
            src: rank,
            tag: TAG_CTRL,
            msg: p.cell.tracer().next_msg_id(),
            payload: Payload::RmlBatch(deposits),
        };
        let nbytes = env.wire_bytes();
        let _ = tx.send(Incoming::Data(env), nbytes);
    }
}

/// Tear down a failing initialization: trace the discarded partial
/// restore, return peer deposits, send the negative verdict, and hand
/// the caller the error to die with.
fn abort_initialize(
    mut p: SnowProcess,
    rank: Rank,
    teardown: Option<RestoreTeardown>,
    detail: String,
    err: ProtoError,
) -> ProtoError {
    let (chunks, bytes) = teardown
        .map(|t| (t.chunks_received, t.bytes_received))
        .unwrap_or((0, 0));
    p.cell
        .trace(EventKind::StateRestoreAborted { chunks, bytes });
    return_deposits(&mut p, rank);
    send_state_ack(&mut p, rank, false, &detail);
    err
}

/// The initialize() algorithm (Fig 7): the body of the process the
/// scheduler spawned on the destination host. Accepts every connection
/// request from the start, buffers early traffic, receives the forwarded
/// RML and the exe+mem state, completes the scheduler handshake, and
/// restores the state.
///
/// The state arrives either as one monolithic `ExeMemState` frame
/// (restored after the commit handshake, as in the paper) or as a
/// pipelined `ExeMemStateChunk` stream, where each chunk is verified and
/// decoded as it arrives — restore overlaps the remaining transmission —
/// and the closing digest frame must match before the state is trusted.
/// Either way the image is verified *before* the commit handshake and
/// acknowledged to the source with a [`Payload::StateAck`]; a rejected
/// image (or a protocol violation: duplicate RML batch, monolithic
/// frame after a chunk stream) sends a negative ack, returns any peer
/// deposits to the source, and errors out. A
/// [`SchedReply::MigrationAborted`] reap order from the scheduler makes
/// the process stand down with [`ProtoError::MigrationAborted`].
///
/// Returns the resumed [`SnowProcess`] (with the merged RML and the
/// authoritative PL table), the restored [`ProcessState`], and the
/// restore timing for Table 2.
pub fn initialize(
    cell: ProcessCell,
    rank: Rank,
    cost: StateCostModel,
    pipeline: PipelineConfig,
) -> Result<(SnowProcess, ProcessState, f64), ProtoError> {
    let mut p = SnowProcess::fresh(cell, rank, cost);
    p.pipeline = pipeline;
    let speed = p.cell.host_spec().map(|h| h.speed).unwrap_or(1.0);
    // Line 1: all conn_req accepted from here on — `classify` grants by
    // default.
    let mut forwarded_rml: Option<Vec<Envelope>> = None;
    let mut mono_bytes: Option<Bytes> = None;
    let mut restorer: Option<ChunkedRestorer> = None;
    let mut restored: Option<(ProcessState, usize)> = None;
    let mut restore_modeled_s = 0.0f64;
    // Lines 2–4: receive the RML, buffering and granting meanwhile, then
    // the exe+mem state (FIFO on the transfer channel guarantees the RML
    // arrives first, and that chunks arrive in sequence).
    while mono_bytes.is_none() && restored.is_none() {
        match p.wait_event("initialize")? {
            Event::StateBatch(batch) => {
                if forwarded_rml.is_some() {
                    let t = restorer.take().map(ChunkedRestorer::abort);
                    return Err(abort_initialize(
                        p,
                        rank,
                        t,
                        "duplicate RML batch".to_string(),
                        ProtoError::Protocol("duplicate RML batch"),
                    ));
                }
                forwarded_rml = Some(batch);
            }
            Event::State(bytes) => {
                if restorer.is_some() {
                    let t = restorer.take().map(ChunkedRestorer::abort);
                    return Err(abort_initialize(
                        p,
                        rank,
                        t,
                        "monolithic state frame after a chunk stream".to_string(),
                        ProtoError::Protocol("monolithic state frame after a chunk stream"),
                    ));
                }
                // Verify before the commit handshake: a corrupted image
                // must abort the migration, not commit it. (The actual
                // decode still runs after commit, as the paper orders
                // it.)
                if let Err(e) = ProcessState::verify(&bytes) {
                    let detail = format!("monolithic state rejected: {e}");
                    return Err(abort_initialize(
                        p,
                        rank,
                        None,
                        detail,
                        ProtoError::State(e),
                    ));
                }
                mono_bytes = Some(bytes);
            }
            Event::StateChunk {
                seq,
                checksum,
                bytes,
            } => {
                match restorer
                    .get_or_insert_with(ChunkedRestorer::new)
                    .push(seq, checksum, &bytes)
                {
                    Ok(()) => {}
                    Err(e) => {
                        let t = restorer.take().map(ChunkedRestorer::abort);
                        let detail = format!("chunk {seq} rejected: {e}");
                        return Err(abort_initialize(p, rank, t, detail, ProtoError::State(e)));
                    }
                }
                // Incremental restore: nap this chunk's modeled decode
                // cost now, overlapping the rest of the transmission.
                let nap_s = cost.restore_seconds(bytes.len(), speed);
                restore_modeled_s += nap_s;
                let nap = p.cell.time_scale().real(nap_s);
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
                p.cell.trace(EventKind::StateChunkRestored {
                    seq,
                    bytes: bytes.len(),
                });
            }
            Event::StateDigest {
                digest,
                chunks,
                total_bytes,
            } => {
                let Some(r) = restorer.take() else {
                    return Err(abort_initialize(
                        p,
                        rank,
                        None,
                        "digest frame with no chunks".to_string(),
                        ProtoError::State(StateError::StreamIncomplete(
                            "digest frame with no chunks",
                        )),
                    ));
                };
                let t = RestoreTeardown {
                    chunks_received: r.chunks_received(),
                    bytes_received: r.bytes_received(),
                    nodes_decoded: r.nodes_decoded(),
                };
                match r.finish(digest, chunks, total_bytes) {
                    Ok(state) => restored = Some((state, total_bytes as usize)),
                    Err(e) => {
                        let detail = format!("state digest rejected: {e}");
                        return Err(abort_initialize(
                            p,
                            rank,
                            Some(t),
                            detail,
                            ProtoError::State(e),
                        ));
                    }
                }
            }
            Event::Sched(SchedReply::MigrationAborted { rank: r }) if r == rank => {
                // Reap order: the source aborted (or the scheduler's
                // deadline expired). Return whatever peers deposited
                // here and stand down.
                let t = restorer.take().map(ChunkedRestorer::abort);
                if let Some(t) = t {
                    p.cell.trace(EventKind::StateRestoreAborted {
                        chunks: t.chunks_received,
                        bytes: t.bytes_received,
                    });
                }
                return_deposits(&mut p, rank);
                return Err(ProtoError::MigrationAborted);
            }
            _ => continue,
        }
    }
    // Line 3: insert the forwarded list *in front of* locally received
    // messages.
    p.rml.prepend_batch(forwarded_rml.unwrap_or_default());
    // The image survived verification: the positive ack releases the
    // source (Fig 5 line 11) while we complete the commit handshake.
    send_state_ack(&mut p, rank, true, "");
    // The transfer channel was recorded under our own rank; it is not an
    // application connection.
    p.cc.remove(&rank);

    // Line 5: inform the scheduler restore_complete.
    p.cell.sched_send(SchedRequest::RestoreComplete {
        rank,
        new_vmid: p.cell.vmid(),
        reply: p.cell.reply_sender(),
    })?;
    // Line 6: wait for the PL table and old vmid.
    loop {
        match p.wait_event("PL table handshake")? {
            Event::Sched(SchedReply::PlTable {
                entries,
                old_vmid: _,
            }) => {
                for (r, v) in entries {
                    // Our own row still names the initialized process's
                    // predecessor until commit; we are authoritative for
                    // ourselves.
                    if r != rank {
                        p.pl.insert(r, v);
                    }
                }
                p.pl.insert(rank, p.cell.vmid());
                break;
            }
            Event::Sched(SchedReply::MigrationAborted { rank: r }) if r == rank => {
                return Err(ProtoError::MigrationAborted);
            }
            Event::Sched(SchedReply::Error { reason }) => {
                return Err(ProtoError::Scheduler(reason))
            }
            _ => continue,
        }
    }
    // Line 7: migration_commit.
    p.cell.sched_send(SchedRequest::MigrationCommit { rank })?;

    // Line 8: restore the process state (cost modeled by host speed).
    // The chunked path already decoded and napped incrementally while
    // the stream was in flight; the monolithic path restores here.
    let (state, state_len) = match (mono_bytes, restored) {
        (Some(bytes), _) => {
            let state = ProcessState::restore(&bytes)?;
            restore_modeled_s = cost.restore_seconds(bytes.len(), speed);
            let nap = p.cell.time_scale().real(restore_modeled_s);
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
            (state, bytes.len())
        }
        (None, Some((state, len))) => (state, len),
        (None, None) => unreachable!("loop exits only with state"),
    };
    p.cell.trace(EventKind::StateRestored { bytes: state_len });
    Ok((p, state, restore_modeled_s))
}
