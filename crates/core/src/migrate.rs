//! Process migration (Fig 5) and initialization (Fig 7).
//!
//! `migrate()` runs on the migrating process after a `migration_request`
//! signal was intercepted at a poll point; `initialize()` runs as the
//! body of the process the scheduler spawned on the destination host.
//! Together they transfer the communication state: connections are
//! drained and closed with Chandy-Lamport-style marker coordination
//! \[28\], in-transit messages are captured in the received-message-list
//! and forwarded, and the exe+mem state follows on the same FIFO
//! channel.

use crate::error::ProtoError;
use crate::process::{Event, SnowProcess, TAG_CTRL, TICK, WATCHDOG};
use bytes::Bytes;
use snow_state::{ChunkedRestorer, PipelineConfig, ProcessState, StateCostModel, StateError};
use snow_trace::EventKind;
use snow_vm::process::EnvError;
use snow_vm::wire::{ConnReqMsg, SchedReply, SchedRequest};
use snow_vm::{Envelope, Incoming, Payload, ProcessCell, Rank, Signal, Vmid};
use std::collections::HashSet;
use std::time::Instant;

/// Timing breakdown of one migration, as measured by the two protocol
/// halves. "Modeled" components come from the calibrated cost models
/// (host speed, link bandwidth); "real" components are wall-clock on the
/// machine running the reproduction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationTimings {
    /// Real seconds coordinating connected peers (signal + markers +
    /// drain + close) — Table 2 row "Coordinate".
    pub coordinate_real_s: f64,
    /// Modeled seconds to collect the exe+mem state — row "Collect".
    pub collect_modeled_s: f64,
    /// Modeled seconds to push the state across the network — row "Tx".
    pub tx_modeled_s: f64,
    /// Modeled seconds to restore on the destination — row "Restore",
    /// estimated by the source from the destination host's speed (the
    /// initialized process naps the same model on its own clock).
    pub restore_modeled_s: f64,
    /// Modeled seconds for the overlapped collect→tx→restore pipeline:
    /// the makespan of the chunk schedule rather than the sum of its
    /// stages. For a monolithic transfer this equals
    /// `collect + tx + restore`.
    pub pipelined_modeled_s: f64,
    /// Chunks the state was streamed as (1 for a monolithic transfer).
    pub chunks: usize,
    /// Encoder workers used (0 = monolithic path).
    pub workers: usize,
    /// Canonical state size in bytes.
    pub state_bytes: usize,
    /// In-transit messages captured and forwarded (Fig 13 behaviour).
    pub rml_forwarded: usize,
}

impl MigrationTimings {
    /// Total migration cost with the serial state transfer the paper
    /// measures — Table 2 row "Migrate" (coordinate + collect + tx +
    /// restore, each stage strictly after the previous).
    pub fn total_s(&self) -> f64 {
        self.serial_total_s()
    }

    /// Serial-sum total: what the migration costs without stage overlap.
    pub fn serial_total_s(&self) -> f64 {
        self.coordinate_real_s + self.collect_modeled_s + self.tx_modeled_s + self.restore_modeled_s
    }

    /// Pipelined total: coordinate plus the overlapped-schedule makespan.
    pub fn pipelined_total_s(&self) -> f64 {
        self.coordinate_real_s + self.pipelined_modeled_s
    }
}

impl SnowProcess {
    /// The migrate() algorithm (Fig 5). Consumes the process — after
    /// this returns the application must return from its entry function,
    /// terminating the migrating process (Fig 5 line 11). Execution
    /// resumes inside the initialized process on the destination host.
    pub fn migrate(mut self, state: &ProcessState) -> Result<MigrationTimings, ProtoError> {
        let mut timings = MigrationTimings::default();
        self.trace_mig(EventKind::MigrationStart);

        // Lines 2–3: inform the scheduler, learn the initialized
        // process's vmid.
        self.cell.sched_send(SchedRequest::MigrationStart {
            rank: self.rank,
            reply: self.cell.reply_sender(),
        })?;
        let new_vmid = loop {
            match self.wait_event("migration_start handshake")? {
                Event::Sched(SchedReply::NewVmid { new_vmid }) => break new_vmid,
                Event::Sched(SchedReply::Error { reason }) => {
                    return Err(ProtoError::Scheduler(reason))
                }
                _ => continue,
            }
        };

        // Line 4: tell the local daemon to reject all future conn_req,
        // and reject those already queued — `classify` nacks inbound
        // requests while `migrating` is set, which covers requests that
        // raced past the daemon before the flag landed.
        self.migrating = true;
        self.cell.set_reject_all(true);

        // Lines 5–7: coordinate connected peers.
        let t0 = Instant::now();
        let mut awaiting: HashSet<Rank> = self.cc.keys().copied().collect();
        let peers: Vec<Rank> = awaiting.iter().copied().collect();
        for peer in peers {
            let env = Envelope {
                src: self.rank,
                tag: TAG_CTRL,
                msg: self.cell.tracer().next_msg_id(),
                payload: Payload::PeerMigrating,
            };
            let bytes = env.wire_bytes();
            let delivered = self
                .cc
                .get(&peer)
                .map(|tx| tx.send(Incoming::Data(env), bytes).is_ok())
                .unwrap_or(false);
            self.trace_mig(EventKind::PeerMigratingSent { peer });
            if !delivered {
                // Peer already terminated; nothing to drain from it.
                awaiting.remove(&peer);
                continue;
            }
            // The disconnection signal interrupts the peer if it is
            // computing (Fig 6); if it is in recv, the marker alone
            // suffices (Fig 4 lines 12–14).
            if let Some(v) = self.pl.get(&peer) {
                self.cell
                    .send_signal(*v, Signal::Disconnect { from: self.rank });
            }
        }

        // Line 6: receive into the RML until end_of_messages (peer not
        // migrating) or peer_migrating (peer migrating simultaneously)
        // arrives from every connected peer.
        let deadline = Instant::now() + WATCHDOG;
        while !awaiting.is_empty() {
            match self.next_event(TICK)? {
                Some(Event::EndOfMessages(p)) | Some(Event::PeerMigrated(p)) => {
                    awaiting.remove(&p);
                }
                Some(_) => {}
                None => {
                    // Liveness check: a peer that died uncoordinated
                    // cannot ever send its marker.
                    awaiting.retain(|p| match self.pl.get(p) {
                        Some(v) => self.cell.shared().registry().addr_of(*v).is_some(),
                        None => false,
                    });
                    if Instant::now() >= deadline {
                        return Err(ProtoError::Watchdog("migration drain"));
                    }
                }
            }
        }

        // Absorb everything still deliverable in the inbox into the RML.
        // Live peers are fully drained by the marker protocol (FIFO puts
        // their data before end_of_messages); this catches messages from
        // peers that terminated after sending, which can never produce a
        // marker.
        while self.next_event(std::time::Duration::ZERO)?.is_some() {}

        // Line 7: close all existing connections.
        let still_open: Vec<Rank> = self.cc.keys().copied().collect();
        for peer in still_open {
            // Peers that coordinated were closed by the marker handling;
            // anything left (e.g. simultaneous migration races) closes
            // here.
            self.close_channel_to(peer);
        }
        timings.coordinate_real_s = t0.elapsed().as_secs_f64();

        // Line 8: send the received-message-list to the new process over
        // a direct channel (the initialized process accepts all
        // connection requests, Fig 7 line 1).
        let state_tx = self.connect_to_vmid(new_vmid)?;
        let batch = self.rml.drain_all();
        timings.rml_forwarded = batch.len();
        self.trace_mig(EventKind::RmlForwarded {
            count: batch.len(),
            bytes: batch.iter().map(Envelope::wire_bytes).sum(),
        });
        let env = Envelope {
            src: self.rank,
            tag: TAG_CTRL,
            msg: self.cell.tracer().next_msg_id(),
            payload: Payload::RmlBatch(batch),
        };
        let nbytes = env.wire_bytes();
        state_tx
            .send(Incoming::Data(env), nbytes)
            .map_err(|_| ProtoError::Env(EnvError::InboxClosed))?;

        // Lines 9–10: collect and send the execution and memory state
        // (cost modeled by host speed and link bandwidth).
        let speed = self.cell.host_spec().map(|h| h.speed).unwrap_or(1.0);
        let dest_speed = self
            .cell
            .shared()
            .host_spec(new_vmid.host)
            .map(|h| h.speed)
            .unwrap_or(1.0);
        let link = self
            .cell
            .shared()
            .path(self.cell.vmid().host, new_vmid.host);

        if self.pipeline.is_monolithic() {
            // Serial path: collect everything, then ship one frame —
            // each stage strictly after the previous, as the paper
            // measures it.
            let bytes = state.collect();
            timings.state_bytes = bytes.len();
            timings.collect_modeled_s = self.cost.collect_seconds(bytes.len(), speed);
            let nap = self.cell.time_scale().real(timings.collect_modeled_s);
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
            self.trace_mig(EventKind::StateCollected { bytes: bytes.len() });

            timings.tx_modeled_s = link.transfer_seconds(bytes.len());
            timings.restore_modeled_s = self.cost.restore_seconds(bytes.len(), dest_speed);
            timings.pipelined_modeled_s =
                timings.collect_modeled_s + timings.tx_modeled_s + timings.restore_modeled_s;
            timings.chunks = 1;
            let env = Envelope {
                src: self.rank,
                tag: TAG_CTRL,
                msg: self.cell.tracer().next_msg_id(),
                payload: Payload::ExeMemState(Bytes::from(bytes)),
            };
            let nbytes = env.wire_bytes();
            state_tx
                .send(Incoming::Data(env), nbytes)
                .map_err(|_| ProtoError::Env(EnvError::InboxClosed))?;
            self.trace_mig(EventKind::StateTransmitted {
                bytes: timings.state_bytes,
            });
        } else {
            // Pipelined path: partition the state into chunks, encode on
            // a worker pool, ship each chunk as its own frame. Encoding
            // of chunk i+1 overlaps transmission of chunk i, and the
            // destination restores chunks as they arrive. The modeled
            // schedule tracks each chunk through `workers` encoders, the
            // FIFO wire, and the destination's restorer; its makespan is
            // the pipelined cost, while the plain sums remain the serial
            // (Table 2) stage costs.
            let cfg = self.pipeline.clone();
            let workers = cfg.workers.max(1);
            let cell = &self.cell;
            let cost = self.cost;
            let rank = self.rank;
            let scale = cell.time_scale();
            let t0 = Instant::now();
            let mut worker_free = vec![0.0f64; workers];
            let mut wire_free = 0.0f64;
            let mut restore_free = 0.0f64;
            let mut collect_serial = 0.0f64;
            let mut tx_serial = 0.0f64;
            let mut restore_serial = 0.0f64;
            let summary = snow_state::stream_chunks(state, &cfg, |chunk| {
                let c_s = cost.collect_seconds(chunk.bytes.len(), speed);
                collect_serial += c_s;
                let w = (0..workers)
                    .min_by(|a, b| worker_free[*a].total_cmp(&worker_free[*b]))
                    .expect("at least one worker");
                worker_free[w] += c_s;
                let done_collect = worker_free[w];
                // Nap to this chunk's modeled encode-completion before
                // handing it to the wire, so the link model (which
                // serialises frames per sender) observes the overlapped
                // schedule rather than an instantaneous burst.
                let target = t0 + scale.real(done_collect);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let env = Envelope {
                    src: rank,
                    tag: TAG_CTRL,
                    msg: cell.tracer().next_msg_id(),
                    payload: Payload::ExeMemStateChunk {
                        seq: chunk.seq,
                        checksum: chunk.checksum,
                        bytes: Bytes::from(chunk.bytes.clone()),
                    },
                };
                let nbytes = env.wire_bytes();
                let tx_s = link.transfer_seconds(nbytes);
                tx_serial += tx_s;
                wire_free = done_collect.max(wire_free) + tx_s;
                let r_s = cost.restore_seconds(chunk.bytes.len(), dest_speed);
                restore_serial += r_s;
                restore_free = wire_free.max(restore_free) + r_s;
                state_tx
                    .send(Incoming::Data(env), nbytes)
                    .map_err(|_| ProtoError::Env(EnvError::InboxClosed))?;
                cell.trace(EventKind::StateChunkSent {
                    seq: chunk.seq,
                    bytes: chunk.bytes.len(),
                });
                Ok::<(), ProtoError>(())
            })?;

            // Close the stream: the digest frame the destination must
            // reproduce before committing to the restored state.
            let env = Envelope {
                src: rank,
                tag: TAG_CTRL,
                msg: cell.tracer().next_msg_id(),
                payload: Payload::ExeMemStateDigest {
                    digest: summary.digest,
                    chunks: summary.chunks,
                    total_bytes: summary.total_bytes as u64,
                },
            };
            let nbytes = env.wire_bytes();
            let digest_tx_s = link.transfer_seconds(nbytes);
            tx_serial += digest_tx_s;
            wire_free += digest_tx_s;
            state_tx
                .send(Incoming::Data(env), nbytes)
                .map_err(|_| ProtoError::Env(EnvError::InboxClosed))?;

            timings.state_bytes = summary.total_bytes;
            timings.collect_modeled_s = collect_serial;
            timings.tx_modeled_s = tx_serial;
            timings.restore_modeled_s = restore_serial;
            timings.pipelined_modeled_s = wire_free.max(restore_free);
            timings.chunks = summary.chunks as usize;
            timings.workers = cfg.workers;
            self.trace_mig(EventKind::StateCollected {
                bytes: summary.total_bytes,
            });
            self.trace_mig(EventKind::StateTransmitted {
                bytes: summary.total_bytes,
            });
        }

        // Line 11: terminate — the caller returns from the app function;
        // the spawn wrapper unregisters us and notifies the daemon.
        Ok(timings)
    }

    fn trace_mig(&self, kind: EventKind) {
        self.cell.trace(kind);
    }

    /// Establish a channel to an explicit vmid (the initialized
    /// process). Same machinery as `connect()` but addressed by vmid,
    /// since the PL table still maps our rank to ourselves.
    fn connect_to_vmid(
        &mut self,
        target: Vmid,
    ) -> Result<snow_vm::PostSender<Incoming>, ProtoError> {
        let mut retries = 0u32;
        loop {
            let req_id = self.cell.next_req_id();
            let req = ConnReqMsg {
                req_id,
                from_rank: self.rank,
                from_vmid: self.cell.vmid(),
                target,
                reply: self.cell.reply_sender(),
                data_to_requester: self.cell.data_sender_to_me(target.host),
            };
            self.cell.route_conn_req(req)?;
            loop {
                match self.wait_event("state-transfer connect")? {
                    Event::Granted { req_id: r, .. } if r == req_id => {
                        // Do not record this in cc: it is the transfer
                        // channel, not an application connection. Build
                        // a dedicated sender from the grant.
                        // `classify` stored it in cc under our own rank
                        // (peer_rank == self.rank); pull it back out.
                        if let Some(tx) = self.cc.remove(&self.rank) {
                            return Ok(tx);
                        }
                        unreachable!("grant recorded under own rank");
                    }
                    Event::Nacked { req_id: r } if r == req_id => {
                        // Initialized process not ready yet (spawn race):
                        // retry, but give up if it never appears — e.g.
                        // the destination host left mid-migration.
                        retries += 1;
                        if retries > 2000 {
                            return Err(ProtoError::Watchdog("state-transfer connect retries"));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        break;
                    }
                    _ => continue,
                }
            }
        }
    }
}

/// The initialize() algorithm (Fig 7): the body of the process the
/// scheduler spawned on the destination host. Accepts every connection
/// request from the start, buffers early traffic, receives the forwarded
/// RML and the exe+mem state, completes the scheduler handshake, and
/// restores the state.
///
/// The state arrives either as one monolithic `ExeMemState` frame
/// (restored after the commit handshake, as in the paper) or as a
/// pipelined `ExeMemStateChunk` stream, where each chunk is verified and
/// decoded as it arrives — restore overlaps the remaining transmission —
/// and the closing digest frame must match before the state is trusted.
///
/// Returns the resumed [`SnowProcess`] (with the merged RML and the
/// authoritative PL table), the restored [`ProcessState`], and the
/// restore timing for Table 2.
pub fn initialize(
    cell: ProcessCell,
    rank: Rank,
    cost: StateCostModel,
    pipeline: PipelineConfig,
) -> Result<(SnowProcess, ProcessState, f64), ProtoError> {
    let mut p = SnowProcess::fresh(cell, rank, cost);
    p.pipeline = pipeline;
    let speed = p.cell.host_spec().map(|h| h.speed).unwrap_or(1.0);
    // Line 1: all conn_req accepted from here on — `classify` grants by
    // default.
    let mut forwarded_rml: Option<Vec<Envelope>> = None;
    let mut mono_bytes: Option<Bytes> = None;
    let mut restorer: Option<ChunkedRestorer> = None;
    let mut restored: Option<(ProcessState, usize)> = None;
    let mut restore_modeled_s = 0.0f64;
    // Lines 2–4: receive the RML, buffering and granting meanwhile, then
    // the exe+mem state (FIFO on the transfer channel guarantees the RML
    // arrives first, and that chunks arrive in sequence).
    while mono_bytes.is_none() && restored.is_none() {
        match p.wait_event("initialize")? {
            Event::StateBatch(batch) => forwarded_rml = Some(batch),
            Event::State(bytes) => mono_bytes = Some(bytes),
            Event::StateChunk {
                seq,
                checksum,
                bytes,
            } => {
                let r = restorer.get_or_insert_with(ChunkedRestorer::new);
                r.push(seq, checksum, &bytes)?;
                // Incremental restore: nap this chunk's modeled decode
                // cost now, overlapping the rest of the transmission.
                let nap_s = cost.restore_seconds(bytes.len(), speed);
                restore_modeled_s += nap_s;
                let nap = p.cell.time_scale().real(nap_s);
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
                p.cell.trace(EventKind::StateChunkRestored {
                    seq,
                    bytes: bytes.len(),
                });
            }
            Event::StateDigest {
                digest,
                chunks,
                total_bytes,
            } => {
                let r = restorer
                    .take()
                    .ok_or(ProtoError::State(StateError::StreamIncomplete(
                        "digest frame with no chunks",
                    )))?;
                let total = total_bytes as usize;
                restored = Some((r.finish(digest, chunks, total_bytes)?, total));
            }
            _ => continue,
        }
    }
    // Line 3: insert the forwarded list *in front of* locally received
    // messages.
    p.rml.prepend_batch(forwarded_rml.unwrap_or_default());
    // The transfer channel was recorded under our own rank; it is not an
    // application connection.
    p.cc.remove(&rank);

    // Line 5: inform the scheduler restore_complete.
    p.cell.sched_send(SchedRequest::RestoreComplete {
        rank,
        new_vmid: p.cell.vmid(),
        reply: p.cell.reply_sender(),
    })?;
    // Line 6: wait for the PL table and old vmid.
    loop {
        match p.wait_event("PL table handshake")? {
            Event::Sched(SchedReply::PlTable {
                entries,
                old_vmid: _,
            }) => {
                for (r, v) in entries {
                    // Our own row still names the initialized process's
                    // predecessor until commit; we are authoritative for
                    // ourselves.
                    if r != rank {
                        p.pl.insert(r, v);
                    }
                }
                p.pl.insert(rank, p.cell.vmid());
                break;
            }
            Event::Sched(SchedReply::Error { reason }) => {
                return Err(ProtoError::Scheduler(reason))
            }
            _ => continue,
        }
    }
    // Line 7: migration_commit.
    p.cell.sched_send(SchedRequest::MigrationCommit { rank })?;

    // Line 8: restore the process state (cost modeled by host speed).
    // The chunked path already decoded and napped incrementally while
    // the stream was in flight; the monolithic path restores here.
    let (state, state_len) = match (mono_bytes, restored) {
        (Some(bytes), _) => {
            let state = ProcessState::restore(&bytes)?;
            restore_modeled_s = cost.restore_seconds(bytes.len(), speed);
            let nap = p.cell.time_scale().real(restore_modeled_s);
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
            (state, bytes.len())
        }
        (None, Some((state, len))) => (state, len),
        (None, None) => unreachable!("loop exits only with state"),
    };
    p.cell.trace(EventKind::StateRestored { bytes: state_len });
    Ok((p, state, restore_modeled_s))
}
