//! Prototype-compatible function names (§5.2).
//!
//! The SNOW prototype exposed C entry points
//!
//! ```c
//! int snow_send(int dst_id, int tag);
//! int snow_recv(int src_id, int tag);
//! ```
//!
//! with wildcard support on `snow_recv`'s parameters, replacing
//! `pvm_send`/`pvm_recv` in application source. This module mirrors
//! those names over [`SnowProcess`] for readers following the paper;
//! idiomatic Rust code should call the methods directly.

use crate::error::ProtoError;
use crate::process::SnowProcess;
use bytes::Bytes;
use snow_vm::{Rank, Tag};

/// Wildcard value for `snow_recv`'s source parameter (PVM's `-1`).
pub const ANY_SOURCE: i64 = -1;

/// Wildcard value for `snow_recv`'s tag parameter (PVM's `-1` wildcard;
/// distinct from real tags only by convention, as in the prototype).
pub const ANY_TAG: i64 = i64::MIN;

/// `snow_send`: send `data` to `dst_id` under `tag` (Fig 2 + §5.2).
pub fn snow_send(
    p: &mut SnowProcess,
    dst_id: Rank,
    tag: Tag,
    data: &[u8],
) -> Result<(), ProtoError> {
    p.send(dst_id, tag, Bytes::copy_from_slice(data))
}

/// `snow_recv`: receive a message matching `src_id`/`tag`, either of
/// which may be a wildcard ([`ANY_SOURCE`], [`ANY_TAG`]). Returns
/// `(source, tag, payload)`.
pub fn snow_recv(
    p: &mut SnowProcess,
    src_id: i64,
    tag: i64,
) -> Result<(Rank, Tag, Bytes), ProtoError> {
    let src = if src_id == ANY_SOURCE {
        None
    } else {
        Some(src_id as Rank)
    };
    let tag = if tag == ANY_TAG {
        None
    } else {
        Some(tag as Tag)
    };
    p.recv(src, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::{Computation, Start};
    use snow_vm::HostSpec;

    #[test]
    fn compat_names_roundtrip() {
        let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
        let handles = comp.launch(2, move |mut p, _start: Start| match p.rank() {
            0 => {
                snow_send(&mut p, 1, 3, b"via compat").unwrap();
                let (src, tag, body) = snow_recv(&mut p, ANY_SOURCE, ANY_TAG).unwrap();
                assert_eq!((src, tag, &body[..]), (1, 4, &b"reply"[..]));
                p.finish();
            }
            1 => {
                let (src, tag, body) = snow_recv(&mut p, 0, 3).unwrap();
                assert_eq!((src, tag, &body[..]), (0, 3, &b"via compat"[..]));
                snow_send(&mut p, 0, 4, b"reply").unwrap();
                p.finish();
            }
            _ => unreachable!(),
        });
        for h in handles {
            h.join().unwrap();
        }
    }
}
