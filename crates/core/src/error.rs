//! Protocol-level errors.

use snow_state::StateError;
use snow_vm::process::EnvError;
use snow_vm::Rank;

/// Errors surfaced by the SNOW communication and migration protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The destination rank has terminated — `connect()`'s
    /// "error: destination terminated" (Fig 3 line 13).
    DestinationTerminated(Rank),
    /// The environment failed underneath the protocol (inbox closed,
    /// scheduler gone, ...).
    Env(EnvError),
    /// The scheduler answered a coordination request with an error.
    Scheduler(String),
    /// Execution/memory state failed to restore on the destination.
    State(StateError),
    /// A protocol step did not complete within the watchdog window —
    /// indicates a peer died without coordination (outside the paper's
    /// failure model, reported rather than hanging).
    Watchdog(&'static str),
    /// A peer violated the transfer protocol: malformed connection
    /// grant, duplicate RML batch, or a monolithic state frame after a
    /// chunk stream.
    Protocol(&'static str),
    /// The migration this process was the destination of was aborted by
    /// the source or the scheduler before commit; the initialized
    /// process must stand down quietly.
    MigrationAborted,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::DestinationTerminated(r) => {
                write!(f, "destination rank {r} terminated")
            }
            ProtoError::Env(e) => write!(f, "environment error: {e}"),
            ProtoError::Scheduler(s) => write!(f, "scheduler error: {s}"),
            ProtoError::State(e) => write!(f, "state transfer error: {e}"),
            ProtoError::Watchdog(what) => write!(f, "protocol watchdog expired in {what}"),
            ProtoError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ProtoError::MigrationAborted => {
                write!(f, "migration aborted before commit")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<EnvError> for ProtoError {
    fn from(e: EnvError) -> Self {
        ProtoError::Env(e)
    }
}

impl From<StateError> for ProtoError {
    fn from(e: StateError) -> Self {
        ProtoError::State(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(ProtoError::DestinationTerminated(3)
            .to_string()
            .contains("rank 3"));
        assert!(ProtoError::Scheduler("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ProtoError::Watchdog("drain").to_string().contains("drain"));
        assert!(ProtoError::Protocol("duplicate RML batch")
            .to_string()
            .contains("duplicate RML batch"));
        assert!(ProtoError::MigrationAborted.to_string().contains("aborted"));
    }

    #[test]
    fn env_error_converts() {
        let e: ProtoError = EnvError::NoScheduler.into();
        assert_eq!(e, ProtoError::Env(EnvError::NoScheduler));
    }
}
