//! # snow-core — the SNOW communication-state-transfer protocols
//!
//! This crate is the primary contribution of the reproduced paper
//! (Chanchio & Sun, *Communication State Transfer for the Mobility of
//! Concurrent Heterogeneous Computing*, ICPP 2001): data-communication
//! and process-migration protocols that together transfer the
//! *communication state* — open connections plus messages in transit —
//! of a migrating process, while guaranteeing:
//!
//! 1. **no deadlock** introduced by migration (Theorem 1),
//! 2. **termination** of migration and no blocking of the computation
//!    (Lemma 1),
//! 3. **no message loss** (Theorem 2),
//! 4. **preserved point-to-point FIFO ordering** (Theorem 3), including
//!    under **simultaneous migrations** (Theorem 4).
//!
//! The algorithms map to the paper's figures:
//!
//! | paper | here |
//! |---|---|
//! | Fig 2 `send` | [`SnowProcess::send`] |
//! | Fig 3 `connect` | `connect` (internal to [`SnowProcess::send`]) |
//! | Fig 4 `recv` | [`SnowProcess::recv`] + the received-message-list [`Rml`] |
//! | Fig 5 `migrate` | [`SnowProcess::migrate`] |
//! | Fig 6 `disconnection_handler` | [`SnowProcess::poll_point`] signal handling |
//! | Fig 7 `initialize` | [`initialize`] |
//!
//! ## Quick start
//!
//! ```no_run
//! use snow_core::{Computation, Start};
//! use snow_vm::HostSpec;
//! use bytes::Bytes;
//!
//! let comp = Computation::builder()
//!     .hosts(HostSpec::ideal(), 3)
//!     .build();
//! let handles = comp.launch(2, |mut p, start| {
//!     if matches!(start, Start::Fresh) {
//!         if p.rank() == 0 {
//!             p.send(1, 7, Bytes::from_static(b"hello")).unwrap();
//!         } else {
//!             let (src, _tag, body) = p.recv(None, Some(7)).unwrap();
//!             assert_eq!((src, &body[..]), (0, &b"hello"[..]));
//!         }
//!     }
//!     p.finish();
//! });
//! for h in handles { h.join().unwrap(); }
//! ```

#![warn(missing_docs)]

pub mod compat;
pub mod computation;
pub mod error;
pub mod migrate;
pub mod process;
pub mod rml;

pub use compat::{snow_recv, snow_send, ANY_SOURCE, ANY_TAG};
pub use computation::{Computation, ComputationBuilder, Start};
pub use error::ProtoError;
pub use migrate::{initialize, AbortedMigration, MigrationOutcome, MigrationTimings};
pub use process::SnowProcess;
pub use rml::Rml;
pub use snow_sched::{DrainReport, RetryPolicy, SchedulerConfig};
pub use snow_state::PipelineConfig;
pub use snow_vm::wire::{DrainOutcome, DrainPoolConfig, DrainRankResult, FailCause};
