//! The received-message-list (§3.1).
//!
//! "As a result of the coordination, messages in transit are drained from
//! the channels and stored in a temporary storage in process memory
//! space, namely the *received-message-list*." The list changes the
//! receive operation: `recv` must search the list before taking new
//! messages from a channel, and unwanted messages are appended until the
//! wanted one is found.
//!
//! On migration the migrating process's list is *prepended* to the
//! initialized process's list (Fig 7 line 3) — messages captured during
//! coordination precede anything the initialized process received on
//! newly established connections. This ordering is what makes Theorem 3
//! (FIFO across migration) hold; `prepend_batch` keeps it.

use snow_vm::{Envelope, Rank, Tag};
use std::collections::VecDeque;

/// The received-message-list: an ordered buffer of data envelopes.
#[derive(Debug, Default)]
pub struct Rml {
    list: VecDeque<Envelope>,
}

impl Rml {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a newly arrived but currently unwanted message
    /// (Fig 4 line 7).
    pub fn append(&mut self, env: Envelope) {
        self.list.push_back(env);
    }

    /// Insert a forwarded batch *in front of* the existing contents,
    /// preserving the batch's internal order (Fig 7 line 3).
    pub fn prepend_batch(&mut self, batch: Vec<Envelope>) {
        for env in batch.into_iter().rev() {
            self.list.push_front(env);
        }
    }

    /// Search for the first message matching `src`/`tag` (either may be
    /// a wildcard) and remove it (Fig 4 lines 2–3). Matching is
    /// first-match-in-order, which preserves per-source FIFO.
    pub fn take_match(&mut self, src: Option<Rank>, tag: Option<Tag>) -> Option<Envelope> {
        let pos = self
            .list
            .iter()
            .position(|e| src.is_none_or(|s| e.src == s) && tag.is_none_or(|t| e.tag == t))?;
        self.list.remove(pos)
    }

    /// Drain everything, in order — the migration path (Fig 5 line 8).
    pub fn drain_all(&mut self) -> Vec<Envelope> {
        self.list.drain(..).collect()
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Total payload bytes buffered (for trace/cost reporting).
    pub fn total_bytes(&self) -> usize {
        self.list.iter().map(Envelope::wire_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use snow_trace::MsgId;
    use snow_vm::Payload;

    fn env(src: Rank, tag: Tag, id: u64) -> Envelope {
        Envelope {
            src,
            tag,
            msg: MsgId(id),
            payload: Payload::Data(Bytes::from_static(b"x")),
        }
    }

    #[test]
    fn append_then_take_in_order() {
        let mut rml = Rml::new();
        rml.append(env(0, 1, 1));
        rml.append(env(0, 1, 2));
        assert_eq!(rml.take_match(Some(0), Some(1)).unwrap().msg, MsgId(1));
        assert_eq!(rml.take_match(Some(0), Some(1)).unwrap().msg, MsgId(2));
        assert!(rml.take_match(Some(0), Some(1)).is_none());
    }

    #[test]
    fn wildcards_match_anything() {
        let mut rml = Rml::new();
        rml.append(env(3, 9, 1));
        assert!(rml.take_match(None, None).is_some());
        rml.append(env(3, 9, 2));
        assert!(rml.take_match(Some(3), None).is_some());
        rml.append(env(3, 9, 3));
        assert!(rml.take_match(None, Some(9)).is_some());
        assert!(rml.is_empty());
    }

    #[test]
    fn mismatches_left_in_place() {
        let mut rml = Rml::new();
        rml.append(env(1, 5, 1));
        rml.append(env(2, 6, 2));
        // Take by src=2: skips the first entry without disturbing it.
        assert_eq!(rml.take_match(Some(2), None).unwrap().msg, MsgId(2));
        assert_eq!(rml.len(), 1);
        assert_eq!(rml.take_match(None, None).unwrap().msg, MsgId(1));
    }

    #[test]
    fn selective_take_preserves_per_source_fifo() {
        let mut rml = Rml::new();
        rml.append(env(1, 5, 1));
        rml.append(env(2, 5, 2));
        rml.append(env(1, 5, 3));
        assert_eq!(rml.take_match(Some(1), None).unwrap().msg, MsgId(1));
        assert_eq!(rml.take_match(Some(1), None).unwrap().msg, MsgId(3));
    }

    #[test]
    fn prepend_batch_goes_in_front_in_order() {
        let mut rml = Rml::new();
        rml.append(env(9, 0, 100)); // locally received
        rml.prepend_batch(vec![env(1, 0, 1), env(1, 0, 2)]);
        assert_eq!(rml.take_match(None, None).unwrap().msg, MsgId(1));
        assert_eq!(rml.take_match(None, None).unwrap().msg, MsgId(2));
        assert_eq!(rml.take_match(None, None).unwrap().msg, MsgId(100));
    }

    #[test]
    fn prepend_empty_batch_is_noop() {
        let mut rml = Rml::new();
        rml.append(env(0, 0, 1));
        rml.prepend_batch(vec![]);
        assert_eq!(rml.len(), 1);
    }

    #[test]
    fn drain_all_preserves_order_and_empties() {
        let mut rml = Rml::new();
        for i in 0..5 {
            rml.append(env(0, 0, i));
        }
        let drained = rml.drain_all();
        assert_eq!(
            drained.iter().map(|e| e.msg.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(rml.is_empty());
    }

    #[test]
    fn total_bytes_counts_wire_size() {
        let mut rml = Rml::new();
        rml.append(env(0, 0, 1));
        rml.append(env(0, 0, 2));
        assert_eq!(
            rml.total_bytes(),
            2 * (1 + snow_vm::wire::ENVELOPE_OVERHEAD_BYTES)
        );
    }
}
