//! Launching distributed computations (the harness around the library).
//!
//! `Computation` assembles the full SNOW environment: a virtual machine
//! with hosts, the scheduler carrying the *migration-enabled executable
//! image* (§2.2), rank registration, and round-robin (or explicit)
//! process placement. Applications are a single function of
//! `(SnowProcess, Start)` — the `Start::Resumed` arm is the poll-point
//! re-entry after a migration, mirroring how the SNOW compiler's
//! annotated code jumps back to the interrupted location.

use crate::migrate::initialize;
use crate::process::SnowProcess;
use snow_net::TimeScale;
use snow_sched::{
    spawn_scheduler_with_config, IndexedDirectory, MigrationRecord, RetryPolicy, SchedClient,
    SchedulerConfig, SchedulerHandle,
};
use snow_state::{PipelineConfig, ProcessState, StateCostModel};
use snow_trace::Tracer;
use snow_vm::{HostId, HostSpec, Rank, VirtualMachine, Vmid};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;

/// How an application invocation begins.
pub enum Start {
    /// A fresh process at program entry.
    Fresh,
    /// Resumed on a destination host after migration, with the restored
    /// execution + memory state.
    Resumed(ProcessState),
}

/// Builder for a [`Computation`] environment.
pub struct ComputationBuilder {
    tracer: Arc<Tracer>,
    scale: TimeScale,
    cost: StateCostModel,
    pipeline: PipelineConfig,
    host_specs: Vec<HostSpec>,
    sched_config: SchedulerConfig,
    fault_plan: Option<snow_net::FaultPlan>,
    transport: Option<Arc<dyn snow_vm::Transport>>,
}

impl Default for ComputationBuilder {
    fn default() -> Self {
        ComputationBuilder {
            tracer: Tracer::disabled(),
            scale: TimeScale::ZERO,
            cost: StateCostModel::PAPER,
            pipeline: PipelineConfig::default(),
            host_specs: Vec::new(),
            sched_config: SchedulerConfig::default(),
            fault_plan: None,
            transport: None,
        }
    }
}

impl ComputationBuilder {
    /// Install a trace collector.
    pub fn tracer(mut self, t: Arc<Tracer>) -> Self {
        self.tracer = t;
        self
    }

    /// Set the modeled-time scale (0 disables modeled delays).
    pub fn time_scale(mut self, s: TimeScale) -> Self {
        self.scale = s;
        self
    }

    /// Override the state cost model.
    pub fn cost_model(mut self, c: StateCostModel) -> Self {
        self.cost = c;
        self
    }

    /// Override the chunked state-transfer configuration every process
    /// uses when migrating ([`PipelineConfig::monolithic`] restores the
    /// single-frame transfer the paper measures).
    pub fn pipeline(mut self, cfg: PipelineConfig) -> Self {
        self.pipeline = cfg;
        self
    }

    /// Add `n` identical hosts.
    pub fn hosts(mut self, spec: HostSpec, n: usize) -> Self {
        self.host_specs.extend(std::iter::repeat_n(spec, n));
        self
    }

    /// Add one host.
    pub fn host(mut self, spec: HostSpec) -> Self {
        self.host_specs.push(spec);
        self
    }

    /// Install a migration retry policy: a failed transfer is re-targeted
    /// at alternate live hosts up to `policy.max_attempts` total
    /// attempts before the migration finally aborts.
    pub fn migration_retry(mut self, policy: RetryPolicy) -> Self {
        self.sched_config.retry = Some(policy);
        self
    }

    /// Override the scheduler's in-flight migration deadline (`None`
    /// disables the sweep). Migrations that neither commit nor report
    /// failure within the window are aborted server-side.
    pub fn migration_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.sched_config.deadline = deadline;
        self
    }

    /// Arm deterministic fault injection: every logical connection and
    /// daemon-routed control datagram of the built environment is
    /// subject to `plan` (seeded, reproducible — see
    /// [`snow_net::fault`]).
    pub fn fault_plan(mut self, plan: snow_net::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Install a transport backend for the §2.3 services (point-to-point
    /// channels, daemon datagrams, signals). Defaults to the in-process
    /// substrate; [`snow_vm::TcpTransport`] routes the same traffic over
    /// framed localhost sockets.
    pub fn transport(mut self, t: Arc<dyn snow_vm::Transport>) -> Self {
        self.transport = Some(t);
        self
    }

    /// Build the environment. At least one host is required (it carries
    /// the scheduler).
    pub fn build(self) -> Computation {
        assert!(
            !self.host_specs.is_empty(),
            "a computation needs at least one host"
        );
        let vm = match self.transport {
            Some(t) => VirtualMachine::with_transport(Arc::clone(&self.tracer), self.scale, t),
            None => VirtualMachine::new(Arc::clone(&self.tracer), self.scale),
        };
        // Arm faults before the first daemon spawns so the plan covers
        // every host's datagram service from the start.
        if let Some(plan) = self.fault_plan {
            vm.set_fault_plan(plan);
        }
        let hosts: Vec<HostId> = self
            .host_specs
            .iter()
            .map(|spec| vm.add_host(*spec))
            .collect();
        Computation {
            vm,
            hosts,
            tracer: self.tracer,
            cost: self.cost,
            pipeline: self.pipeline,
            sched_config: self.sched_config,
            sched: Mutex::new(None),
            client: Mutex::new(None),
        }
    }
}

/// A running SNOW environment plus its launch/migration controls.
pub struct Computation {
    vm: VirtualMachine,
    hosts: Vec<HostId>,
    tracer: Arc<Tracer>,
    cost: StateCostModel,
    pipeline: PipelineConfig,
    sched_config: SchedulerConfig,
    sched: Mutex<Option<SchedulerHandle>>,
    client: Mutex<Option<SchedClient>>,
}

impl Computation {
    /// Start building an environment.
    pub fn builder() -> ComputationBuilder {
        ComputationBuilder::default()
    }

    /// The member hosts, in the order they were added.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// The underlying virtual machine.
    pub fn vm(&self) -> &VirtualMachine {
        &self.vm
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Launch `n` ranks placed round-robin over the member hosts.
    ///
    /// The same `app` function is also installed as the migration-
    /// enabled executable image: after a migration it is re-entered with
    /// [`Start::Resumed`]. May be called once per `Computation`.
    pub fn launch<F>(&self, n: usize, app: F) -> Vec<JoinHandle<()>>
    where
        F: Fn(SnowProcess, Start) + Send + Sync + 'static,
    {
        let placement: Vec<HostId> = (0..n).map(|r| self.hosts[r % self.hosts.len()]).collect();
        self.launch_placed(&placement, app)
    }

    /// Launch one rank per entry of `placement` (rank i on
    /// `placement[i]`).
    pub fn launch_placed<F>(&self, placement: &[HostId], app: F) -> Vec<JoinHandle<()>>
    where
        F: Fn(SnowProcess, Start) + Send + Sync + 'static,
    {
        let app: Arc<dyn Fn(SnowProcess, Start) + Send + Sync> = Arc::new(app);
        let cost = self.cost;
        let pipeline = self.pipeline.clone();

        // The migration-enabled executable image (§2.2): initialize,
        // then resume the application at its poll point.
        let image_app = Arc::clone(&app);
        let image_pipeline = pipeline.clone();
        let image: snow_sched::ProcessImage = Arc::new(move |cell, rank| {
            // Every initialization failure is part of the abort
            // protocol: the reap order, a rejected transfer
            // (checksum/digest/protocol violation — the negative ack
            // already went to the source), or the environment vanishing
            // underneath (destination host removed). The source and the
            // scheduler carry the outcome; a half-initialized process
            // just stands down.
            if let Ok((proc_, state, _restore_s)) =
                initialize(cell, rank, cost, image_pipeline.clone())
            {
                image_app(proc_, Start::Resumed(state));
            }
        });
        {
            let mut slot = self.sched.lock().unwrap();
            assert!(slot.is_none(), "launch may only be called once");
            *slot = Some(spawn_scheduler_with_config(
                &self.vm,
                self.hosts[0],
                image,
                Box::new(IndexedDirectory::with_capacity(placement.len())),
                self.sched_config.clone(),
            ));
        }
        let client = SchedClient::new(&self.vm);

        // Gate processes until every rank is registered and the initial
        // PL table (§2.1: stored in every process's memory) has been
        // distributed, so first connections route directly; scheduler
        // consultation is reserved for post-nack on-demand updates.
        let gate = Arc::new(Barrier::new(placement.len() + 1));
        let pl_table: Arc<Mutex<Vec<(Rank, Vmid)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::with_capacity(placement.len());
        for (rank, host) in placement.iter().enumerate() {
            let app = Arc::clone(&app);
            let gate = Arc::clone(&gate);
            let pl_for_proc = Arc::clone(&pl_table);
            let proc_pipeline = pipeline.clone();
            let (vmid, handle) = self
                .vm
                .spawn(*host, &format!("p{rank}"), move |cell| {
                    gate.wait();
                    let mut proc_ = SnowProcess::fresh(cell, rank, cost);
                    proc_.set_pipeline(proc_pipeline);
                    proc_.install_pl(&pl_for_proc.lock().unwrap());
                    app(proc_, Start::Fresh);
                })
                .expect("placement host is a member");
            client.register(rank, vmid).expect("scheduler is running");
            pl_table.lock().unwrap().push((rank, vmid));
            handles.push(handle);
        }
        gate.wait();
        *self.client.lock().unwrap() = Some(client);
        handles
    }

    /// Launch one rank per entry of `placement` *without* an OS thread
    /// per rank: returns the driveable [`SnowProcess`] values so a
    /// harness can multiplex them onto a bounded worker pool through
    /// the cooperative API ([`SnowProcess::try_send`],
    /// [`SnowProcess::try_recv`], [`SnowProcess::poll_point`]).
    ///
    /// `app` is installed as the migration-enabled executable image
    /// (§2.2) only: it runs when a migrated rank resumes, on a
    /// scheduler-owned thread (join via
    /// [`Computation::join_init_processes`]). Cooperatively driven
    /// ranks own their termination epilogue — end each with
    /// [`SnowProcess::finish`] followed by
    /// [`snow_vm::VirtualMachine::retire`] of its vmid, the pair the
    /// per-rank threads of [`Computation::launch_placed`] run
    /// automatically.
    pub fn launch_cooperative<F>(&self, placement: &[HostId], app: F) -> Vec<SnowProcess>
    where
        F: Fn(SnowProcess, Start) + Send + Sync + 'static,
    {
        let cost = self.cost;
        let pipeline = self.pipeline.clone();
        let image_pipeline = pipeline.clone();
        let image: snow_sched::ProcessImage = Arc::new(move |cell, rank| {
            // Same stand-down contract as `launch_placed`: any
            // initialization failure is already carried by the abort
            // protocol.
            if let Ok((proc_, state, _restore_s)) =
                initialize(cell, rank, cost, image_pipeline.clone())
            {
                app(proc_, Start::Resumed(state));
            }
        });
        {
            let mut slot = self.sched.lock().unwrap();
            assert!(slot.is_none(), "launch may only be called once");
            *slot = Some(spawn_scheduler_with_config(
                &self.vm,
                self.hosts[0],
                image,
                Box::new(IndexedDirectory::with_capacity(placement.len())),
                self.sched_config.clone(),
            ));
        }
        let client = SchedClient::new(&self.vm);

        // No barrier gate: nothing runs until the caller starts
        // stepping, so registration and PL distribution complete
        // before the first connect can fire.
        let mut procs = Vec::with_capacity(placement.len());
        let mut pl_table: Vec<(Rank, Vmid)> = Vec::with_capacity(placement.len());
        for (rank, host) in placement.iter().enumerate() {
            let (vmid, cell) = self
                .vm
                .spawn_cell(*host, &format!("p{rank}"))
                .expect("placement host is a member");
            let mut proc_ = SnowProcess::fresh(cell, rank, cost);
            proc_.set_pipeline(pipeline.clone());
            client.register(rank, vmid).expect("scheduler is running");
            pl_table.push((rank, vmid));
            procs.push(proc_);
        }
        for p in &mut procs {
            p.install_pl(&pl_table);
        }
        *self.client.lock().unwrap() = Some(client);
        procs
    }

    fn with_client<T>(&self, f: impl FnOnce(&SchedClient) -> T) -> T {
        let guard = self.client.lock().unwrap();
        let client = guard
            .as_ref()
            .expect("launch() must be called before migration controls");
        f(client)
    }

    /// Ask the scheduler to migrate `rank` to `host`, blocking until the
    /// migration commits; returns the new vmid.
    pub fn migrate(&self, rank: Rank, host: HostId) -> Result<Vmid, String> {
        self.with_client(|c| c.migrate(rank, host))
    }

    /// Fire a migration request without waiting.
    pub fn migrate_async(&self, rank: Rank, host: HostId) -> Result<(), String> {
        self.with_client(|c| c.migrate_async(rank, host))
    }

    /// Wait for a previously requested migration to commit.
    pub fn wait_migration_done(&self, rank: Rank) -> Result<Vmid, String> {
        self.with_client(|c| c.wait_migration_done(rank))
    }

    /// Look up a rank's status and location.
    pub fn lookup(&self, rank: Rank) -> Result<(snow_vm::wire::ExeStatus, Option<Vmid>), String> {
        self.with_client(|c| c.lookup(rank))
    }

    /// Evacuate every running rank off `host` through the scheduler's
    /// bounded worker pool, blocking until each migrant reaches a
    /// terminal disposition.
    pub fn drain_host(
        &self,
        host: HostId,
        pool: snow_vm::wire::DrainPoolConfig,
    ) -> Result<snow_sched::DrainReport, snow_vm::wire::FailCause> {
        self.with_client(|c| c.drain_host(host, pool))
    }

    /// Fire a host-drain request without waiting for its verdict.
    pub fn drain_host_async(
        &self,
        host: HostId,
        pool: snow_vm::wire::DrainPoolConfig,
    ) -> Result<(), String> {
        self.with_client(|c| c.drain_host_async(host, pool))
    }

    /// Wait for a previously requested drain of `host` to terminate.
    pub fn wait_drain_done(
        &self,
        host: HostId,
    ) -> Result<snow_sched::DrainReport, snow_vm::wire::FailCause> {
        self.with_client(|c| c.wait_drain_done(host))
    }

    /// Wait for every *initialized* (post-migration) process spawned so
    /// far to finish. Migrated ranks continue on threads owned by the
    /// scheduler; harnesses must join them — after joining the original
    /// rank threads — before reading results or traces.
    pub fn join_init_processes(&self) {
        loop {
            let joins = {
                let guard = self.sched.lock().unwrap();
                match guard.as_ref() {
                    Some(s) => s.take_init_joins(),
                    None => return,
                }
            };
            if joins.is_empty() {
                return;
            }
            for j in joins {
                let _ = j.join();
            }
            // A resumed process may itself have migrated meanwhile;
            // loop until no new initialized processes appear.
        }
    }

    /// The scheduler's migration bookkeeping records.
    pub fn migration_records(&self) -> Vec<MigrationRecord> {
        self.sched
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.records())
            .unwrap_or_default()
    }

    /// Gracefully stop the scheduler (after all application processes
    /// have been joined). Further migration requests fail; the
    /// environment can still route data between surviving processes.
    pub fn shutdown(&self) {
        let sched = self.sched.lock().unwrap().take();
        if let Some(sched) = sched {
            if let Some(client) = self.client.lock().unwrap().as_ref() {
                let _ = client.shutdown();
            }
            sched.join();
        }
        // Release any backend resources (listener/reader threads for the
        // socket transport; a no-op for the in-process substrate).
        self.vm.shared().transport().shutdown();
    }
}

impl Drop for Computation {
    fn drop(&mut self) {
        // Unblock the scheduler thread so test binaries do not leak it.
        if let (Some(_), Some(client)) = (
            self.sched.lock().unwrap().as_ref(),
            self.client.lock().unwrap().as_ref(),
        ) {
            let _ = client.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn two_rank_ping_pong() {
        let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
        let handles = comp.launch(2, |mut p, _start| {
            match p.rank() {
                0 => {
                    p.send(1, 1, Bytes::from_static(b"ping")).unwrap();
                    let (src, tag, body) = p.recv(Some(1), Some(2)).unwrap();
                    assert_eq!((src, tag, &body[..]), (1, 2, &b"pong"[..]));
                }
                1 => {
                    let (src, tag, body) = p.recv(Some(0), Some(1)).unwrap();
                    assert_eq!((src, tag, &body[..]), (0, 1, &b"ping"[..]));
                    p.send(0, 2, Bytes::from_static(b"pong")).unwrap();
                }
                _ => unreachable!(),
            }
            p.finish();
        });
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wildcard_receive_across_ranks() {
        let comp = Computation::builder().hosts(HostSpec::ideal(), 3).build();
        let handles = comp.launch(3, |mut p, _start| {
            match p.rank() {
                0 => {
                    let mut seen = Vec::new();
                    for _ in 0..2 {
                        let (src, _tag, _b) = p.recv(None, None).unwrap();
                        seen.push(src);
                    }
                    seen.sort_unstable();
                    assert_eq!(seen, vec![1, 2]);
                }
                r => {
                    p.send(0, 9, Bytes::from(vec![r as u8; 8])).unwrap();
                }
            }
            p.finish();
        });
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_builder_rejected() {
        let _ = Computation::builder().build();
    }

    /// Two cooperatively driven ranks complete a ping-pong from a
    /// single driving thread: connection establishment, send and
    /// receive all advance through the non-blocking API.
    #[test]
    fn cooperative_ping_pong_single_thread() {
        let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
        let placement = [comp.hosts()[0], comp.hosts()[1]];
        let mut procs = comp.launch_cooperative(&placement, |_p, _s| {});
        let mut p1 = procs.pop().unwrap();
        let mut p0 = procs.pop().unwrap();
        assert_eq!((p0.rank(), p1.rank()), (0, 1));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let step = |pending: &mut dyn FnMut() -> bool| {
            while !pending() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "cooperative ping-pong stalled"
                );
                std::thread::yield_now();
            }
        };

        // 0 → 1: try_send fires the conn_req; pumping rank 1 grants it.
        let ping = Bytes::from_static(b"ping");
        {
            let (p0, p1) = (&mut p0, &mut p1);
            step(&mut || {
                let sent = p0.try_send(1, 1, &ping).unwrap();
                p1.pump().unwrap();
                sent
            });
            step(&mut || match p1.try_recv(Some(0), Some(1)).unwrap() {
                Some((src, tag, body)) => {
                    assert_eq!((src, tag, &body[..]), (0, 1, &b"ping"[..]));
                    true
                }
                None => false,
            });
            // 1 → 0 rides the crossing channel already established.
            let pong = Bytes::from_static(b"pong");
            step(&mut || {
                let sent = p1.try_send(0, 2, &pong).unwrap();
                p0.pump().unwrap();
                sent
            });
            step(&mut || match p0.try_recv(Some(1), Some(2)).unwrap() {
                Some((src, tag, body)) => {
                    assert_eq!((src, tag, &body[..]), (1, 2, &b"pong"[..]));
                    true
                }
                None => false,
            });
        }

        // The caller-owned epilogue of cooperative ranks.
        let (v0, v1) = (p0.vmid(), p1.vmid());
        p0.finish();
        p1.finish();
        comp.vm().retire(v0);
        comp.vm().retire(v1);
        comp.shutdown();
    }
}
