//! API-surface tests: probe, connected-set bookkeeping, compute,
//! unusual tags, self-sends and other edges of the public interface.

use bytes::Bytes;
use snow_core::Computation;
use snow_vm::HostSpec;
use std::time::Duration;

#[test]
fn probe_does_not_consume() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
    let handles = comp.launch(2, move |mut p, _start| match p.rank() {
        0 => {
            // The sender must first get its connection granted (which
            // our probe's drain performs), then its data can arrive —
            // poll until the message shows up.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !p.probe(Some(1), Some(7)).unwrap() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "message never arrived"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(p.probe(Some(1), Some(7)).unwrap(), "probe must not consume");
            assert!(!p.probe(Some(1), Some(99)).unwrap());
            let (_s, _t, b) = p.recv(Some(1), Some(7)).unwrap();
            assert_eq!(&b[..], b"x");
            assert!(!p.probe(Some(1), Some(7)).unwrap(), "recv consumed it");
            p.finish();
        }
        1 => {
            p.send(0, 7, Bytes::from_static(b"x")).unwrap();
            p.finish();
        }
        _ => unreachable!(),
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn connected_set_tracks_channels() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 3).build();
    let handles = comp.launch(3, move |mut p, _start| match p.rank() {
        0 => {
            assert!(p.connected().is_empty());
            p.send(1, 1, Bytes::from_static(b"a")).unwrap();
            assert_eq!(p.connected(), vec![1]);
            p.send(2, 1, Bytes::from_static(b"b")).unwrap();
            assert_eq!(p.connected(), vec![1, 2]);
            p.finish();
        }
        r => {
            let _ = p.recv(Some(0), Some(1)).unwrap();
            let _ = r;
            p.finish();
        }
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn compute_advances_and_polls() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 1).build();
    let handles = comp.launch(1, move |mut p, _start| {
        // No signals pending: compute returns false.
        assert!(!p.compute(0.0).unwrap());
        assert!(!p.compute(0.001).unwrap());
        p.finish();
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn negative_and_extreme_tags_are_application_visible() {
    // Tag -1 is also the internal marker tag; markers are distinguished
    // by payload kind, so applications may use any i32 tag.
    let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
    let handles = comp.launch(2, move |mut p, _start| match p.rank() {
        0 => {
            for &tag in &[-1i32, i32::MIN, i32::MAX, 0] {
                let (_s, t, b) = p.recv(Some(1), Some(tag)).unwrap();
                assert_eq!(t, tag);
                assert_eq!(b.len(), 4);
            }
            p.finish();
        }
        1 => {
            for &tag in &[-1i32, i32::MIN, i32::MAX, 0] {
                p.send(0, tag, Bytes::from(vec![1, 2, 3, 4])).unwrap();
            }
            p.finish();
        }
        _ => unreachable!(),
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn self_send_roundtrip() {
    // A process may send to its own rank; the message loops through its
    // own inbox and is received like any other.
    let comp = Computation::builder().hosts(HostSpec::ideal(), 1).build();
    let handles = comp.launch(1, move |mut p, _start| {
        p.send(0, 5, Bytes::from_static(b"to myself")).unwrap();
        let (src, tag, body) = p.recv(Some(0), Some(5)).unwrap();
        assert_eq!((src, tag, &body[..]), (0, 5, &b"to myself"[..]));
        p.finish();
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn rml_len_reflects_buffering() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
    let handles = comp.launch(2, move |mut p, _start| match p.rank() {
        0 => {
            // Receive tag 9 first: five tag-5 messages get buffered.
            let _ = p.recv(Some(1), Some(9)).unwrap();
            assert_eq!(p.rml_len(), 5);
            for i in 0u8..5 {
                let (_s, _t, b) = p.recv(Some(1), Some(5)).unwrap();
                assert_eq!(b[0], i);
            }
            assert_eq!(p.rml_len(), 0);
            p.finish();
        }
        1 => {
            for i in 0u8..5 {
                p.send(0, 5, Bytes::from(vec![i])).unwrap();
            }
            p.send(0, 9, Bytes::from_static(b"go")).unwrap();
            p.finish();
        }
        _ => unreachable!(),
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn interleaved_tag_streams_stay_fifo_per_tag() {
    const N: u64 = 30;
    let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
    let handles = comp.launch(2, move |mut p, _start| match p.rank() {
        0 => {
            // Drain tag 2 first, then tag 1 — both must be internally
            // ordered despite interleaved sends.
            for i in 0..N {
                let (_s, _t, b) = p.recv(Some(1), Some(2)).unwrap();
                assert_eq!(u64::from_be_bytes(b[..8].try_into().unwrap()), i);
            }
            for i in 0..N {
                let (_s, _t, b) = p.recv(Some(1), Some(1)).unwrap();
                assert_eq!(u64::from_be_bytes(b[..8].try_into().unwrap()), i);
            }
            p.finish();
        }
        1 => {
            for i in 0..N {
                p.send(0, 1, Bytes::copy_from_slice(&i.to_be_bytes()))
                    .unwrap();
                p.send(0, 2, Bytes::copy_from_slice(&i.to_be_bytes()))
                    .unwrap();
            }
            p.finish();
        }
        _ => unreachable!(),
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn launch_placed_controls_hosts() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 3).build();
    let h1 = comp.hosts()[1];
    let h2 = comp.hosts()[2];
    let placement = vec![h2, h1];
    let handles = comp.launch_placed(&placement, move |p, _start| {
        match p.rank() {
            0 => assert_eq!(p.vmid().host, h2),
            1 => assert_eq!(p.vmid().host, h1),
            _ => unreachable!(),
        }
        p.finish();
    });
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn shutdown_stops_migration_service() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
    let handles = comp.launch(1, |p, _start| {
        p.finish();
    });
    for h in handles {
        h.join().unwrap();
    }
    comp.shutdown();
    assert!(comp.migrate(0, comp.hosts()[1]).is_err());
}
