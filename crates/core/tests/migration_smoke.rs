//! End-to-end migration smoke tests: a rank migrates mid-computation
//! while peers keep sending to it; delivery, ordering and resumption are
//! checked.

use bytes::Bytes;
use snow_codec::Value;
use snow_core::{Computation, SnowProcess, Start};
use snow_state::{ExecState, MemoryGraph, ProcessState};
use snow_vm::HostSpec;
use std::time::Duration;

/// Spin at poll points until the migration request arrives (the
/// deterministic analogue of "the signal interrupts a computation
/// event").
fn await_migration(p: &mut SnowProcess) {
    while !p.poll_point().unwrap() {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Rank 0 receives the first half of a numbered stream from rank 1,
/// migrates (with messages still in flight), and receives the rest on
/// the new host in order. Rank 1 has no prior knowledge of the
/// migration; connection nacks redirect it on demand.
#[test]
fn receiver_migrates_mid_stream() {
    const ROUNDS: u64 = 40;
    const MIGRATE_AT: u64 = 13;
    let comp = Computation::builder().hosts(HostSpec::ideal(), 3).build();
    let spare = comp.hosts()[2];

    fn receive_range(p: &mut SnowProcess, from: u64, to: u64) {
        for i in from..to {
            let (_src, _tag, body) = p.recv(Some(1), Some(5)).unwrap();
            let got = u64::from_be_bytes(body[..8].try_into().unwrap());
            assert_eq!(got, i, "message order broken across migration");
        }
    }

    let handles = comp.launch(2, move |mut p, start| {
        match (p.rank(), start) {
            (0, Start::Fresh) => {
                receive_range(&mut p, 0, MIGRATE_AT);
                await_migration(&mut p);
                let state = ProcessState::new(
                    ExecState::at_entry()
                        .enter("receive_range")
                        .with_local("next", Value::U64(MIGRATE_AT)),
                    MemoryGraph::new(),
                );
                let t = p.migrate(&state).unwrap().expect_completed();
                assert!(t.total_s() >= 0.0);
                // Fig 5 line 11: the migrating process terminates.
            }
            (0, Start::Resumed(state)) => {
                let next = state
                    .exec
                    .local("next")
                    .and_then(Value::as_u64)
                    .expect("restored poll-point state");
                receive_range(&mut p, next, ROUNDS);
                p.finish();
            }
            (1, Start::Fresh) => {
                for i in 0..ROUNDS {
                    p.send(0, 5, Bytes::copy_from_slice(&i.to_be_bytes()))
                        .unwrap();
                    p.poll_point().unwrap();
                }
                p.finish();
            }
            _ => unreachable!(),
        }
    });

    let new_vmid = comp.migrate(0, spare).expect("migration commits");
    assert_eq!(new_vmid.host, spare);

    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();

    let recs = comp.migration_records();
    assert_eq!(recs.len(), 1);
    assert!(recs[0].total_seconds().unwrap() >= 0.0);
}

/// The sender migrates instead: messages sent before and after the
/// migration arrive in order at a stationary receiver (Lemma 2).
#[test]
fn sender_migrates_mid_stream() {
    const ROUNDS: u64 = 30;
    const MIGRATE_AT: u64 = 11;
    let comp = Computation::builder().hosts(HostSpec::ideal(), 3).build();
    let spare = comp.hosts()[2];

    let handles = comp.launch(2, move |mut p, start| match (p.rank(), start) {
        (0, Start::Fresh) => {
            for i in 0..ROUNDS {
                let (_s, _t, body) = p.recv(Some(1), None).unwrap();
                let got = u64::from_be_bytes(body[..8].try_into().unwrap());
                assert_eq!(got, i, "sender migration broke ordering");
            }
            p.finish();
        }
        (1, Start::Fresh) => {
            for i in 0..MIGRATE_AT {
                p.send(0, 1, Bytes::copy_from_slice(&i.to_be_bytes()))
                    .unwrap();
            }
            await_migration(&mut p);
            let state = ProcessState::new(
                ExecState::at_entry().with_local("i", Value::U64(MIGRATE_AT)),
                MemoryGraph::new(),
            );
            p.migrate(&state).unwrap().expect_completed();
        }
        (1, Start::Resumed(state)) => {
            let from = state.exec.local("i").and_then(Value::as_u64).unwrap();
            assert_eq!(from, MIGRATE_AT);
            for i in from..ROUNDS {
                p.send(0, 1, Bytes::copy_from_slice(&i.to_be_bytes()))
                    .unwrap();
            }
            p.finish();
        }
        _ => unreachable!(),
    });

    comp.migrate(1, spare).expect("migration commits");
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();
}

/// Migrating a process that holds buffered-but-unread messages forwards
/// them: nothing is lost and order is preserved (Theorem 2 + 3).
#[test]
fn rml_contents_forwarded_on_migration() {
    let comp = Computation::builder().hosts(HostSpec::ideal(), 2).build();
    let spare = comp.hosts()[1];

    let handles = comp.launch(2, move |mut p, start| match (p.rank(), start) {
        (0, Start::Fresh) => {
            // Receive ONLY the tag-9 message first, forcing the tag-7
            // messages into the RML, then migrate with them buffered.
            let (_s, t, _b) = p.recv(Some(1), Some(9)).unwrap();
            assert_eq!(t, 9);
            assert!(p.rml_len() >= 3, "tag-7 messages should be buffered");
            await_migration(&mut p);
            let timings = p
                .migrate(&ProcessState::empty())
                .unwrap()
                .expect_completed();
            assert!(timings.rml_forwarded >= 3, "RML must be forwarded");
        }
        (0, Start::Resumed(_)) => {
            for expect in 0u8..3 {
                let (_s, _t, body) = p.recv(Some(1), Some(7)).unwrap();
                assert_eq!(body[0], expect, "forwarded RML order broken");
            }
            p.finish();
        }
        (1, Start::Fresh) => {
            for i in 0u8..3 {
                p.send(0, 7, Bytes::from(vec![i])).unwrap();
            }
            p.send(0, 9, Bytes::from_static(b"go")).unwrap();
            p.finish();
        }
        _ => unreachable!(),
    });

    comp.migrate(0, spare).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();
}
