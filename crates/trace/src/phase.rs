//! Phase-sliced latency attribution: carve a run's timeline into
//! pre-migration / during-migration / post-migration windows from the
//! event log, so service-latency samples can be attributed to the
//! phase production actually cares about (the pause and the forwarding
//! tail, not just a makespan).
//!
//! A migration window opens at [`EventKind::MigrationStart`] and
//! closes at the matching [`EventKind::MigrationCommit`] (or
//! [`EventKind::MigrationAborted`]) for the same rank. Overlapping
//! windows (simultaneous migrations) merge into one `During` span.
//! Everything before the first window is [`MigrationPhase::Pre`];
//! everything after a window that is not inside a later one is
//! [`MigrationPhase::Post`] — in a multi-migration run the quiet time
//! between two migrations is deliberately `Post`, matching what a live
//! phase classifier (set before the migrate call, cleared after)
//! observes.

use crate::event::{Event, EventKind};

/// Which side of the migration window(s) a timestamp falls on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationPhase {
    /// Before the first migration started.
    Pre,
    /// Inside a `MigrationStart → MigrationCommit/Aborted` window.
    During,
    /// After a migration window (and not inside another).
    Post,
}

impl MigrationPhase {
    /// Stable lower-case name (`"pre"` / `"during"` / `"post"`), as
    /// stamped into benchmark records.
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationPhase::Pre => "pre",
            MigrationPhase::During => "during",
            MigrationPhase::Post => "post",
        }
    }
}

/// The merged migration windows of one traced run.
#[derive(Debug, Clone, Default)]
pub struct PhaseWindows {
    /// Non-overlapping, sorted `[start_ns, end_ns]` spans.
    windows: Vec<(u64, u64)>,
}

impl PhaseWindows {
    /// Extract the migration windows from an event log. A
    /// `MigrationStart` without a matching terminal event closes at
    /// the last event's timestamp (the run ended mid-migration).
    pub fn from_events(events: &[Event]) -> PhaseWindows {
        let mut open: Vec<(usize, u64)> = Vec::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut last_t = 0u64;
        for e in events {
            last_t = last_t.max(e.t_ns);
            match e.kind {
                EventKind::MigrationStart { rank } => open.push((rank, e.t_ns)),
                EventKind::MigrationCommit { rank } | EventKind::MigrationAborted { rank, .. } => {
                    if let Some(i) = open.iter().position(|(r, _)| *r == rank) {
                        let (_, start) = open.swap_remove(i);
                        spans.push((start, e.t_ns.max(start)));
                    }
                }
                _ => {}
            }
        }
        for (_, start) in open {
            spans.push((start, last_t.max(start)));
        }
        Self::from_spans(spans)
    }

    /// Build windows from raw spans, merging overlaps.
    pub fn from_spans(mut spans: Vec<(u64, u64)>) -> PhaseWindows {
        spans.sort_unstable();
        let mut windows: Vec<(u64, u64)> = Vec::new();
        for (s, e) in spans {
            match windows.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => windows.push((s, e)),
            }
        }
        PhaseWindows { windows }
    }

    /// The merged `[start_ns, end_ns]` spans, sorted.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.windows
    }

    /// No migration was observed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total nanoseconds spent inside migration windows.
    pub fn during_ns(&self) -> u64 {
        self.windows.iter().map(|(s, e)| e - s).sum()
    }

    /// Attribute a timestamp to its phase. With no windows at all,
    /// everything is `Pre` (no migration ever started).
    pub fn classify(&self, t_ns: u64) -> MigrationPhase {
        let Some(&(first_start, _)) = self.windows.first() else {
            return MigrationPhase::Pre;
        };
        if t_ns < first_start {
            return MigrationPhase::Pre;
        }
        for &(s, e) in &self.windows {
            if t_ns >= s && t_ns <= e {
                return MigrationPhase::During;
            }
        }
        MigrationPhase::Post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgId;

    fn ev(t_ns: u64, kind: EventKind) -> Event {
        Event {
            t_ns,
            seq: 0,
            who: "sched".into(),
            kind,
        }
    }

    #[test]
    fn windows_pair_start_with_commit_per_rank() {
        let events = vec![
            ev(10, EventKind::MigrationStart { rank: 3 }),
            ev(
                15,
                EventKind::Send {
                    to: 1,
                    tag: 0,
                    bytes: 4,
                    msg: MsgId(1),
                },
            ),
            ev(40, EventKind::MigrationCommit { rank: 3 }),
        ];
        let w = PhaseWindows::from_events(&events);
        assert_eq!(w.spans(), &[(10, 40)]);
        assert_eq!(w.classify(9), MigrationPhase::Pre);
        assert_eq!(w.classify(10), MigrationPhase::During);
        assert_eq!(w.classify(40), MigrationPhase::During);
        assert_eq!(w.classify(41), MigrationPhase::Post);
        assert_eq!(w.during_ns(), 30);
    }

    #[test]
    fn aborted_and_unterminated_migrations_close_windows() {
        let events = vec![
            ev(5, EventKind::MigrationStart { rank: 0 }),
            ev(
                9,
                EventKind::MigrationAborted {
                    rank: 0,
                    attempt: 1,
                },
            ),
            ev(20, EventKind::MigrationStart { rank: 1 }),
            ev(33, EventKind::MigrationCommit { rank: 9 }), // unrelated rank
        ];
        let w = PhaseWindows::from_events(&events);
        // Rank 1 never terminated: its window runs to the log's end.
        assert_eq!(w.spans(), &[(5, 9), (20, 33)]);
        assert_eq!(w.classify(12), MigrationPhase::Post, "between windows");
        assert_eq!(w.classify(25), MigrationPhase::During);
    }

    #[test]
    fn overlapping_simultaneous_windows_merge() {
        let w = PhaseWindows::from_spans(vec![(10, 30), (20, 50), (60, 70)]);
        assert_eq!(w.spans(), &[(10, 50), (60, 70)]);
        assert_eq!(w.during_ns(), 50);
        assert_eq!(w.classify(55), MigrationPhase::Post);
    }

    #[test]
    fn no_windows_means_everything_is_pre() {
        let w = PhaseWindows::from_events(&[]);
        assert!(w.is_empty());
        assert_eq!(w.classify(0), MigrationPhase::Pre);
        assert_eq!(w.classify(u64::MAX), MigrationPhase::Pre);
        assert_eq!(w.during_ns(), 0);
    }
}
