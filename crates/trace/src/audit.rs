//! Online protocol-invariant auditor.
//!
//! The paper proves four guarantees about migration (§4): no deadlock
//! (Theorem 1), migration termination (Lemma 1), no message loss
//! (Theorem 2), and preserved point-to-point FIFO (Theorem 3). This
//! module turns each into a machine-checkable property of the ordered
//! event log:
//!
//! * **Zero loss** — send/deliver multiset equality: every traced
//!   [`EventKind::Send`] is matched by exactly one
//!   [`EventKind::RecvDone`] with the same [`MsgId`]; a delivery with no
//!   send is a ghost, a second delivery a duplicate.
//! * **Per-sender FIFO across migration epochs** — within one logical
//!   stream (sender rank → receiver rank, the sender's `p{r}` and
//!   `init:{r}` lanes unified), deliveries occur in send order.
//! * **No cyclic wait among drained processes** — lanes left blocked in
//!   `recv` at the end of the log must not form a waiting cycle.
//! * **Bounded migration completion** — every
//!   [`EventKind::MigrationStart`] is closed by a
//!   [`EventKind::MigrationCommit`] or [`EventKind::MigrationAborted`]
//!   for the same rank, optionally within a configured time bound.
//!
//! The checker is streaming: feed events in snapshot order with
//! [`Auditor::observe`], then [`Auditor::finish`]. [`audit`] wraps both
//! for a complete log, and `snow-bench audit` replays JSONL logs through
//! it offline.

use crate::event::{Event, EventKind, MsgId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A sender identity that survives migration: the rank when the lane
/// label parses as `p{r}` / `init:{r}`, the raw label otherwise.
fn sender_key(lane: &str) -> String {
    match lane_rank(lane) {
        Some(r) => format!("r{r}"),
        None => lane.to_string(),
    }
}

/// Rank of an application lane label (`"p3"` / `"init:3"` → 3).
fn lane_rank(lane: &str) -> Option<usize> {
    lane.strip_prefix("init:")
        .or_else(|| lane.strip_prefix('p'))
        .and_then(|s| s.parse().ok())
}

/// One property violation found by the auditor.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A sent message was never delivered (Theorem 2 broken).
    MessageLost {
        /// The lost message.
        msg: MsgId,
        /// Sender lane label.
        from: String,
        /// Destination rank.
        to: usize,
    },
    /// A delivery with no matching send in the log.
    GhostDelivery {
        /// The unmatched message id.
        msg: MsgId,
        /// Receiving lane label.
        who: String,
    },
    /// A message delivered more than once.
    DuplicateDelivery {
        /// The re-delivered message id.
        msg: MsgId,
        /// Number of deliveries observed.
        times: usize,
    },
    /// Two messages of one stream delivered out of send order
    /// (Theorem 3 broken).
    FifoViolation {
        /// Sender identity (rank-normalised).
        sender: String,
        /// Receiver rank.
        to: usize,
        /// The earlier-sent message (delivered later).
        earlier: MsgId,
        /// The later-sent message (delivered first).
        later: MsgId,
    },
    /// Blocked receivers form a waiting cycle (Theorem 1 broken).
    DeadlockedDrain {
        /// The ranks on the cycle, in wait order.
        cycle: Vec<usize>,
    },
    /// A migration started but never committed or aborted (Lemma 1
    /// broken).
    UnterminatedMigration {
        /// The rank left migrating.
        rank: usize,
    },
    /// A migration terminated, but outside the configured time bound.
    MigrationOverBound {
        /// The migrating rank.
        rank: usize,
        /// Observed start→terminal nanoseconds.
        took_ns: u64,
        /// The configured bound.
        bound_ns: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MessageLost { msg, from, to } => {
                write!(f, "message {} from {from} to rank {to} was lost", msg.0)
            }
            Violation::GhostDelivery { msg, who } => {
                write!(f, "{who} delivered message {} that was never sent", msg.0)
            }
            Violation::DuplicateDelivery { msg, times } => {
                write!(f, "message {} delivered {times} times", msg.0)
            }
            Violation::FifoViolation {
                sender,
                to,
                earlier,
                later,
            } => write!(
                f,
                "stream {sender}→{to}: message {} overtook earlier message {}",
                later.0, earlier.0
            ),
            Violation::DeadlockedDrain { cycle } => {
                write!(f, "cyclic wait among blocked ranks {cycle:?}")
            }
            Violation::UnterminatedMigration { rank } => {
                write!(f, "rank {rank}'s migration never committed or aborted")
            }
            Violation::MigrationOverBound {
                rank,
                took_ns,
                bound_ns,
            } => write!(
                f,
                "rank {rank}'s migration took {took_ns} ns (bound {bound_ns} ns)"
            ),
        }
    }
}

/// Counters describing what the auditor saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Events observed.
    pub events: usize,
    /// Data messages sent.
    pub sends: usize,
    /// Data messages delivered.
    pub deliveries: usize,
    /// Migrations started.
    pub migrations_started: usize,
    /// Migrations committed.
    pub migrations_committed: usize,
    /// Migrations aborted.
    pub migrations_aborted: usize,
}

/// Outcome of one audit pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Everything found, in detection order.
    pub violations: Vec<Violation>,
    /// What the log contained.
    pub stats: AuditStats,
}

impl AuditReport {
    /// Did every property hold?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering of the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit: {} event(s), {} send(s), {} delivery(ies), \
             {} migration(s) ({} committed, {} aborted)",
            self.stats.events,
            self.stats.sends,
            self.stats.deliveries,
            self.stats.migrations_started,
            self.stats.migrations_committed,
            self.stats.migrations_aborted,
        );
        if self.violations.is_empty() {
            let _ = writeln!(out, "all four protocol guarantees hold");
        } else {
            let _ = writeln!(out, "{} violation(s):", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
struct SendInfo {
    stream: (String, usize),
    index: u64,
    from: String,
    to: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingMigration {
    start_ns: u64,
}

/// Streaming checker over an ordered event log. Feed events in snapshot
/// order; terminal-state properties (loss, deadlock, termination) are
/// judged at [`Auditor::finish`], ordering properties as events stream.
#[derive(Debug, Default)]
pub struct Auditor {
    bound_ns: Option<u64>,
    stats: AuditStats,
    violations: Vec<Violation>,
    sends: HashMap<MsgId, SendInfo>,
    delivered: HashMap<MsgId, usize>,
    stream_next: HashMap<(String, usize), u64>,
    stream_last_delivered: HashMap<(String, usize), (u64, MsgId)>,
    /// lane → the source filter of its outstanding `recv`, if blocked.
    waiting: HashMap<String, Option<usize>>,
    pending_migrations: HashMap<usize, PendingMigration>,
}

impl Auditor {
    /// An auditor with no migration time bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Additionally require every migration to terminate within
    /// `bound_ns` nanoseconds of its start.
    pub fn with_completion_bound_ns(mut self, bound_ns: u64) -> Self {
        self.bound_ns = Some(bound_ns);
        self
    }

    /// Observe the next event of the ordered log.
    pub fn observe(&mut self, e: &Event) {
        self.stats.events += 1;
        match &e.kind {
            EventKind::Send { to, msg, .. } => {
                self.stats.sends += 1;
                let stream = (sender_key(&e.who), *to);
                let index = {
                    let n = self.stream_next.entry(stream.clone()).or_insert(0);
                    let i = *n;
                    *n += 1;
                    i
                };
                self.sends.insert(
                    *msg,
                    SendInfo {
                        stream,
                        index,
                        from: e.who.clone(),
                        to: *to,
                    },
                );
            }
            EventKind::RecvStart { from, .. } => {
                self.waiting.insert(e.who.clone(), *from);
            }
            EventKind::RecvDone { msg, .. } => {
                self.stats.deliveries += 1;
                self.waiting.remove(&e.who);
                let times = self.delivered.entry(*msg).or_insert(0);
                *times += 1;
                if *times > 1 {
                    // Count every delivery but report the duplicate once,
                    // updated in place with the final count at finish.
                    return;
                }
                let Some(info) = self.sends.get(msg) else {
                    self.violations.push(Violation::GhostDelivery {
                        msg: *msg,
                        who: e.who.clone(),
                    });
                    return;
                };
                match self.stream_last_delivered.get(&info.stream) {
                    Some((last_index, last_msg)) if *last_index > info.index => {
                        self.violations.push(Violation::FifoViolation {
                            sender: info.stream.0.clone(),
                            to: info.stream.1,
                            earlier: *msg,
                            later: *last_msg,
                        });
                    }
                    _ => {
                        self.stream_last_delivered
                            .insert(info.stream.clone(), (info.index, *msg));
                    }
                }
            }
            EventKind::MigrationStart { rank } => {
                self.stats.migrations_started += 1;
                self.pending_migrations
                    .insert(*rank, PendingMigration { start_ns: e.t_ns });
            }
            EventKind::MigrationCommit { rank } => {
                // The scheduler and the destination may both record the
                // terminal event; only the first closes the migration.
                if let Some(p) = self.pending_migrations.remove(rank) {
                    self.stats.migrations_committed += 1;
                    self.check_bound(*rank, p, e.t_ns);
                }
            }
            EventKind::MigrationAborted { rank, .. } => {
                if let Some(p) = self.pending_migrations.remove(rank) {
                    self.stats.migrations_aborted += 1;
                    self.check_bound(*rank, p, e.t_ns);
                }
            }
            _ => {}
        }
    }

    fn check_bound(&mut self, rank: usize, p: PendingMigration, end_ns: u64) {
        if let Some(bound) = self.bound_ns {
            let took = end_ns.saturating_sub(p.start_ns);
            if took > bound {
                self.violations.push(Violation::MigrationOverBound {
                    rank,
                    took_ns: took,
                    bound_ns: bound,
                });
            }
        }
    }

    /// Judge the terminal-state properties and produce the report.
    pub fn finish(mut self) -> AuditReport {
        // Theorem 2: multiset equality. Undelivered sends are losses;
        // multiply-delivered messages are duplicates.
        let mut lost: Vec<(MsgId, &SendInfo)> = self
            .sends
            .iter()
            .filter(|(msg, _)| !self.delivered.contains_key(*msg))
            .map(|(m, i)| (*m, i))
            .collect();
        lost.sort_unstable_by_key(|(m, _)| m.0);
        for (msg, info) in lost {
            self.violations.push(Violation::MessageLost {
                msg,
                from: info.from.clone(),
                to: info.to,
            });
        }
        let mut dups: Vec<(MsgId, usize)> = self
            .delivered
            .iter()
            .filter(|(_, n)| **n > 1)
            .map(|(m, n)| (*m, *n))
            .collect();
        dups.sort_unstable_by_key(|(m, _)| m.0);
        for (msg, times) in dups {
            self.violations
                .push(Violation::DuplicateDelivery { msg, times });
        }

        // Theorem 1: lanes still blocked in `recv` at the end of the log
        // must not form a waiting cycle. Edges go from the blocked
        // lane's rank to the specific rank it waits on; wildcard waits
        // cannot deadlock under the protocol's forwarding rules and add
        // no edge.
        let mut wait_edge: HashMap<usize, usize> = HashMap::new();
        for (lane, from) in &self.waiting {
            if let (Some(rank), Some(from)) = (lane_rank(lane), from) {
                wait_edge.insert(rank, *from);
            }
        }
        let mut on_cycle: Vec<Vec<usize>> = Vec::new();
        let mut cleared: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut ranks: Vec<usize> = wait_edge.keys().copied().collect();
        ranks.sort_unstable();
        for start in ranks {
            if cleared.contains(&start) {
                continue;
            }
            let mut path = vec![start];
            let mut cur = start;
            while let Some(&next) = wait_edge.get(&cur) {
                if let Some(pos) = path.iter().position(|&r| r == next) {
                    let cycle: Vec<usize> = path[pos..].to_vec();
                    if !on_cycle
                        .iter()
                        .any(|c| c.len() == cycle.len() && cycle.iter().all(|r| c.contains(r)))
                    {
                        on_cycle.push(cycle);
                    }
                    break;
                }
                path.push(next);
                cur = next;
            }
            cleared.extend(path);
        }
        for cycle in on_cycle {
            self.violations.push(Violation::DeadlockedDrain { cycle });
        }

        // Lemma 1: no migration may be left open.
        let mut open: Vec<usize> = self.pending_migrations.keys().copied().collect();
        open.sort_unstable();
        for rank in open {
            self.violations
                .push(Violation::UnterminatedMigration { rank });
        }

        AuditReport {
            violations: self.violations,
            stats: self.stats,
        }
    }
}

/// Audit a complete ordered log (a [`crate::Tracer::snapshot`]).
pub fn audit(events: &[Event]) -> AuditReport {
    let mut a = Auditor::new();
    for e in events {
        a.observe(e);
    }
    a.finish()
}

/// Audit a log and panic with the rendered report on any violation — the
/// post-run assertion integration suites use.
#[track_caller]
pub fn assert_clean(events: &[Event]) {
    let report = audit(events);
    assert!(report.is_clean(), "\n{}", report.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, who: &str, kind: EventKind) -> Event {
        Event {
            t_ns: t,
            seq: t,
            who: who.into(),
            kind,
        }
    }

    fn send(t: u64, who: &str, to: usize, id: u64) -> Event {
        ev(
            t,
            who,
            EventKind::Send {
                to,
                tag: 5,
                bytes: 8,
                msg: MsgId(id),
            },
        )
    }

    fn recv(t: u64, who: &str, from: usize, id: u64) -> Event {
        ev(
            t,
            who,
            EventKind::RecvDone {
                from,
                tag: 5,
                bytes: 8,
                msg: MsgId(id),
                from_rml: false,
            },
        )
    }

    fn recv_start(t: u64, who: &str, from: Option<usize>) -> Event {
        ev(t, who, EventKind::RecvStart { from, tag: None })
    }

    #[test]
    fn clean_log_passes() {
        let report = audit(&[
            send(10, "p0", 1, 1),
            send(20, "p0", 1, 2),
            recv_start(25, "p1", Some(0)),
            recv(30, "p1", 0, 1),
            recv_start(35, "p1", Some(0)),
            recv(40, "p1", 0, 2),
        ]);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.stats.sends, 2);
        assert_eq!(report.stats.deliveries, 2);
    }

    #[test]
    fn detects_dropped_message() {
        let report = audit(&[
            send(10, "p0", 1, 1),
            send(20, "p0", 1, 2),
            recv(30, "p1", 0, 1),
        ]);
        assert_eq!(
            report.violations,
            vec![Violation::MessageLost {
                msg: MsgId(2),
                from: "p0".into(),
                to: 1,
            }]
        );
        assert!(report.render().contains("was lost"));
    }

    #[test]
    fn detects_fifo_swap() {
        let report = audit(&[
            send(10, "p0", 1, 1),
            send(20, "p0", 1, 2),
            recv(30, "p1", 0, 2),
            recv(40, "p1", 0, 1),
        ]);
        assert_eq!(
            report.violations,
            vec![Violation::FifoViolation {
                sender: "r0".into(),
                to: 1,
                earlier: MsgId(1),
                later: MsgId(2),
            }]
        );
    }

    #[test]
    fn detects_deadlocked_drain() {
        // p0 blocks on p1, p1 blocks on p2, p2 blocks on p0 — a cycle of
        // three drained processes, none of which can ever progress.
        let report = audit(&[
            recv_start(10, "p0", Some(1)),
            recv_start(20, "p1", Some(2)),
            recv_start(30, "p2", Some(0)),
        ]);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        match &report.violations[0] {
            Violation::DeadlockedDrain { cycle } => {
                assert_eq!(cycle.len(), 3);
                for r in [0, 1, 2] {
                    assert!(cycle.contains(&r), "{cycle:?}");
                }
            }
            other => panic!("expected DeadlockedDrain, got {other:?}"),
        }
    }

    #[test]
    fn blocked_chain_without_cycle_is_fine() {
        // p0 waits on p1, p1 waits on p2, p2 is not blocked: a chain,
        // not a cycle — progress is still possible.
        let report = audit(&[recv_start(10, "p0", Some(1)), recv_start(20, "p1", Some(2))]);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn wildcard_wait_is_not_a_deadlock_edge() {
        let report = audit(&[recv_start(10, "p0", None), recv_start(20, "p1", Some(0))]);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn satisfied_recv_clears_the_wait() {
        let report = audit(&[
            recv_start(10, "p0", Some(1)),
            send(15, "p1", 0, 1),
            recv(20, "p0", 1, 1),
            recv_start(25, "p1", Some(0)),
            send(30, "p0", 1, 2),
            recv(35, "p1", 0, 2),
        ]);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn detects_ghost_and_duplicate_delivery() {
        let report = audit(&[
            send(10, "p0", 1, 1),
            recv(20, "p1", 0, 1),
            recv(30, "p1", 0, 1),
            recv(40, "p1", 0, 9),
        ]);
        assert!(report.violations.contains(&Violation::GhostDelivery {
            msg: MsgId(9),
            who: "p1".into()
        }));
        assert!(report.violations.contains(&Violation::DuplicateDelivery {
            msg: MsgId(1),
            times: 2
        }));
    }

    #[test]
    fn fifo_spans_the_migration_epoch() {
        // m1 sent by p1, delivered to the pre-migration lane p0; m2
        // delivered to the post-migration lane init:0. Same stream, in
        // order — clean. Deliveries swapped — violation.
        let ordered = audit(&[
            send(10, "p1", 0, 1),
            send(20, "p1", 0, 2),
            recv(30, "p0", 1, 1),
            recv(40, "init:0", 1, 2),
        ]);
        assert!(ordered.is_clean(), "{}", ordered.render());

        let swapped = audit(&[
            send(10, "p1", 0, 1),
            send(20, "p1", 0, 2),
            recv(30, "p0", 1, 2),
            recv(40, "init:0", 1, 1),
        ]);
        assert_eq!(swapped.violations.len(), 1);
    }

    #[test]
    fn sender_migration_unifies_the_stream() {
        // Lemma 2: sender migrates between m1 and m2; its p1 and init:1
        // lanes are one sender identity.
        let swapped = audit(&[
            send(10, "p1", 0, 1),
            send(50, "init:1", 0, 2),
            recv(60, "p0", 1, 2),
            recv(70, "p0", 1, 1),
        ]);
        assert_eq!(
            swapped.violations,
            vec![Violation::FifoViolation {
                sender: "r1".into(),
                to: 0,
                earlier: MsgId(1),
                later: MsgId(2),
            }]
        );
    }

    #[test]
    fn detects_unterminated_migration() {
        let report = audit(&[ev(10, "p0", EventKind::MigrationStart { rank: 0 })]);
        assert_eq!(
            report.violations,
            vec![Violation::UnterminatedMigration { rank: 0 }]
        );
    }

    #[test]
    fn commit_and_abort_close_migrations() {
        let report = audit(&[
            ev(10, "p0", EventKind::MigrationStart { rank: 0 }),
            ev(20, "p1", EventKind::MigrationStart { rank: 1 }),
            ev(30, "scheduler", EventKind::MigrationCommit { rank: 0 }),
            ev(
                40,
                "p1",
                EventKind::MigrationAborted {
                    rank: 1,
                    attempt: 1,
                },
            ),
            // The scheduler lane double-records the abort; tolerated.
            ev(
                41,
                "scheduler",
                EventKind::MigrationAborted {
                    rank: 1,
                    attempt: 1,
                },
            ),
        ]);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.stats.migrations_started, 2);
        assert_eq!(report.stats.migrations_committed, 1);
        assert_eq!(report.stats.migrations_aborted, 1);
    }

    #[test]
    fn completion_bound_fires_when_exceeded() {
        let mut a = Auditor::new().with_completion_bound_ns(100);
        a.observe(&ev(10, "p0", EventKind::MigrationStart { rank: 0 }));
        a.observe(&ev(
            500,
            "scheduler",
            EventKind::MigrationCommit { rank: 0 },
        ));
        let report = a.finish();
        assert_eq!(
            report.violations,
            vec![Violation::MigrationOverBound {
                rank: 0,
                took_ns: 490,
                bound_ns: 100,
            }]
        );
    }

    #[test]
    #[should_panic(expected = "was lost")]
    fn assert_clean_panics_with_report() {
        assert_clean(&[send(10, "p0", 1, 1)]);
    }
}
