//! Thread-safe event collector.

use crate::event::{Event, EventKind, MsgId};
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of independently locked event buffers. Each recording thread
/// is pinned to one shard (round-robin at first record), so threads
/// only contend when they share a shard — 1/N of the time instead of
/// always, which matters once hundreds of ranks trace concurrently.
const EVENT_SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// The shard this thread appends to. Thread affinity keeps one
/// thread's events in vector order within its shard; the global `seq`
/// gives the cross-shard total order back at snapshot time.
fn shard_index() -> usize {
    thread_local! {
        static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % EVENT_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A process-wide trace collector.
///
/// One `Tracer` is shared (via `Arc`) by every process thread, daemon and
/// the scheduler of a virtual machine. Recording appends to one of
/// [`EVENT_SHARDS`] mutex-protected vectors (chosen per thread), with a
/// global atomic sequence number preserving a dense total recording
/// order; a disabled tracer short-circuits on a relaxed atomic load
/// before touching the clock, the sequence or any lock.
#[derive(Debug)]
pub struct Tracer {
    start: Instant,
    enabled: AtomicBool,
    next_msg: AtomicU64,
    next_seq: AtomicU64,
    events: [Mutex<Vec<Event>>; EVENT_SHARDS],
    metrics: MetricsRegistry,
}

impl Tracer {
    /// Create an enabled tracer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            start: Instant::now(),
            enabled: AtomicBool::new(true),
            next_msg: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            events: std::array::from_fn(|_| Mutex::new(Vec::new())),
            metrics: MetricsRegistry::new(),
        })
    }

    /// Create a tracer that records nothing (for overhead-sensitive
    /// benchmark runs — Table 1's "original"/"modified" columns).
    pub fn disabled() -> Arc<Self> {
        let t = Self::new();
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on/off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Allocate a fresh wire message id. Ids are allocated even when
    /// tracing is disabled so envelopes are identical in both modes.
    pub fn next_msg_id(&self) -> MsgId {
        MsgId(self.next_msg.fetch_add(1, Ordering::Relaxed))
    }

    /// The per-migration metrics registry shared by every component that
    /// holds this tracer (migrating processes, the scheduler, the post
    /// office).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn push(&self, t_ns: u64, who: &str, kind: EventKind) {
        // The sequence is a global atomic, so `seq` order is a dense
        // total order across shards; the string allocation happens
        // outside any lock.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let ev = Event {
            t_ns,
            seq,
            who: who.to_string(),
            kind,
        };
        self.events[shard_index()].lock().push(ev);
    }

    /// Record an event performed by the process labelled `who`.
    pub fn record(&self, who: &str, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(self.now_ns(), who, kind);
    }

    /// Record an event with a caller-captured timestamp (from
    /// [`Self::now_ns`]). Use when the traced action races another
    /// thread's reaction to it — e.g. a message post that the receiver
    /// may observe (and trace) before the sender gets to its own
    /// `record` call. Capturing the timestamp *before* the action keeps
    /// cause before effect in the sorted log.
    pub fn record_at(&self, t_ns: u64, who: &str, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(t_ns, who, kind);
    }

    /// Copy out every event recorded so far, ordered by record time.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = Vec::with_capacity(self.len());
        for shard in &self.events {
            evs.extend(shard.lock().iter().cloned());
        }
        // Shards interleave arbitrarily and recording order can deviate
        // slightly from timestamp order; sort so analyses see a
        // consistent timeline. `seq` breaks equal-nanosecond ties in
        // recording order — without it, same-timestamp events could
        // swap and break per-process causal order.
        evs.sort_by_key(|e| (e.t_ns, e.seq));
        evs
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.iter().all(|s| s.lock().is_empty())
    }

    /// Drop all recorded events (between benchmark repetitions). The
    /// sequence counter restarts; message ids keep advancing.
    pub fn clear(&self) {
        for shard in &self.events {
            shard.lock().clear();
        }
        self.next_seq.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_and_snapshots() {
        let t = Tracer::new();
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        t.record("p1", EventKind::MigrationCommit { rank: 0 });
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].who, "p0");
        assert!(evs[0].t_ns <= evs[1].t_ns);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn msg_ids_unique_across_threads() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                (0..100).map(|_| t.next_msg_id().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    t.record(&format!("p{i}"), EventKind::Compute { work: 1 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 200);
        let evs = t.snapshot();
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn clear_resets_events_not_ids() {
        let t = Tracer::new();
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        let id1 = t.next_msg_id();
        t.clear();
        assert!(t.is_empty());
        let id2 = t.next_msg_id();
        assert!(id2 > id1, "ids keep advancing across clears");
        // Sequence numbers restart so post-clear logs stay dense.
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        assert_eq!(t.snapshot()[0].seq, 0);
    }

    #[test]
    fn equal_timestamps_keep_recording_order() {
        // Force every event to the same nanosecond: recording order is
        // the only thing that can keep the timeline causal, and the
        // (t_ns, seq) sort must preserve it exactly.
        let t = Tracer::new();
        for i in 0..64usize {
            t.record(
                &format!("p{}", i % 4),
                EventKind::Compute { work: i as u64 },
            );
        }
        // Flatten timestamps and scramble each shard's vector order to
        // model snapshot observing buffers whose sort must fall back to
        // `seq`, not insertion order.
        for shard in t.events.iter() {
            let mut evs = shard.lock();
            for e in evs.iter_mut() {
                e.t_ns = 1_000;
            }
            evs.reverse();
        }
        let evs = t.snapshot();
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(
                e.kind,
                EventKind::Compute { work: i as u64 },
                "event {i} swapped despite equal timestamps"
            );
        }
    }

    #[test]
    fn seq_is_unique_and_dense_across_threads() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    t.record(&format!("p{i}"), EventKind::Compute { work: 0 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seqs: Vec<u64> = t.snapshot().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn sharded_store_interleaves_into_one_timeline() {
        // More recording threads than shards: every shard sees traffic,
        // and the merged snapshot must still be one totally ordered,
        // dense timeline.
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..(EVENT_SHARDS * 2) {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for w in 0..25u64 {
                    t.record(&format!("p{i}"), EventKind::Compute { work: w });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = t.snapshot();
        assert_eq!(evs.len(), EVENT_SHARDS * 2 * 25);
        assert!(evs
            .windows(2)
            .all(|w| (w[0].t_ns, w[0].seq) <= (w[1].t_ns, w[1].seq)));
        // Per-thread order must survive the shard merge.
        for i in 0..(EVENT_SHARDS * 2) {
            let who = format!("p{i}");
            let works: Vec<u64> = evs
                .iter()
                .filter(|e| e.who == who)
                .map(|e| match e.kind {
                    EventKind::Compute { work } => work,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(works, (0..25).collect::<Vec<u64>>(), "thread {i}");
        }
    }
}
