//! Thread-safe event collector.

use crate::event::{Event, EventKind, MsgId};
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A process-wide trace collector.
///
/// One `Tracer` is shared (via `Arc`) by every process thread, daemon and
/// the scheduler of a virtual machine. Recording appends to a mutex-
/// protected vector; the lock is uncontended in practice because events
/// are rare relative to computation, and a disabled tracer short-circuits
/// on a relaxed atomic load.
#[derive(Debug)]
pub struct Tracer {
    start: Instant,
    enabled: AtomicBool,
    next_msg: AtomicU64,
    events: Mutex<Vec<Event>>,
    metrics: MetricsRegistry,
}

impl Tracer {
    /// Create an enabled tracer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            start: Instant::now(),
            enabled: AtomicBool::new(true),
            next_msg: AtomicU64::new(1),
            events: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        })
    }

    /// Create a tracer that records nothing (for overhead-sensitive
    /// benchmark runs — Table 1's "original"/"modified" columns).
    pub fn disabled() -> Arc<Self> {
        let t = Self::new();
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on/off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Allocate a fresh wire message id. Ids are allocated even when
    /// tracing is disabled so envelopes are identical in both modes.
    pub fn next_msg_id(&self) -> MsgId {
        MsgId(self.next_msg.fetch_add(1, Ordering::Relaxed))
    }

    /// The per-migration metrics registry shared by every component that
    /// holds this tracer (migrating processes, the scheduler, the post
    /// office).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Record an event performed by the process labelled `who`.
    pub fn record(&self, who: &str, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let t_ns = self.now_ns();
        let who = who.to_string();
        // The sequence number is allocated under the event lock so that
        // `seq` order and vector order agree exactly.
        let mut evs = self.events.lock();
        let seq = evs.len() as u64;
        evs.push(Event {
            t_ns,
            seq,
            who,
            kind,
        });
    }

    /// Record an event with a caller-captured timestamp (from
    /// [`Self::now_ns`]). Use when the traced action races another
    /// thread's reaction to it — e.g. a message post that the receiver
    /// may observe (and trace) before the sender gets to its own
    /// `record` call. Capturing the timestamp *before* the action keeps
    /// cause before effect in the sorted log.
    pub fn record_at(&self, t_ns: u64, who: &str, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let who = who.to_string();
        let mut evs = self.events.lock();
        let seq = evs.len() as u64;
        evs.push(Event {
            t_ns,
            seq,
            who,
            kind,
        });
    }

    /// Copy out every event recorded so far, ordered by record time.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut evs = self.events.lock().clone();
        // Recording order can deviate slightly from timestamp order under
        // lock contention; sort so analyses see a consistent timeline.
        // `seq` breaks equal-nanosecond ties in recording order — without
        // it, same-timestamp events could swap and break per-process
        // causal order.
        evs.sort_by_key(|e| (e.t_ns, e.seq));
        evs
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events (between benchmark repetitions).
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_and_snapshots() {
        let t = Tracer::new();
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        t.record("p1", EventKind::MigrationCommit { rank: 0 });
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].who, "p0");
        assert!(evs[0].t_ns <= evs[1].t_ns);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn msg_ids_unique_across_threads() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                (0..100).map(|_| t.next_msg_id().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    t.record(&format!("p{i}"), EventKind::Compute { work: 1 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 200);
        let evs = t.snapshot();
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn clear_resets_events_not_ids() {
        let t = Tracer::new();
        t.record("p0", EventKind::MigrationStart { rank: 0 });
        let id1 = t.next_msg_id();
        t.clear();
        assert!(t.is_empty());
        let id2 = t.next_msg_id();
        assert!(id2 > id1, "ids keep advancing across clears");
    }

    #[test]
    fn equal_timestamps_keep_recording_order() {
        // Force every event to the same nanosecond: recording order is
        // the only thing that can keep the timeline causal, and the
        // (t_ns, seq) sort must preserve it exactly.
        let t = Tracer::new();
        for i in 0..64usize {
            t.record(
                &format!("p{}", i % 4),
                EventKind::Compute { work: i as u64 },
            );
        }
        {
            let mut evs = t.events.lock();
            for e in evs.iter_mut() {
                e.t_ns = 1_000;
            }
            // Scramble vector order to model snapshot observing a clone
            // whose sort must fall back to `seq`, not insertion order.
            evs.reverse();
        }
        let evs = t.snapshot();
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(
                e.kind,
                EventKind::Compute { work: i as u64 },
                "event {i} swapped despite equal timestamps"
            );
        }
    }

    #[test]
    fn seq_is_unique_and_dense_across_threads() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    t.record(&format!("p{i}"), EventKind::Compute { work: 0 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seqs: Vec<u64> = t.snapshot().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
    }
}
