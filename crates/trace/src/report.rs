//! Timing-breakdown accumulators and a dependency-free JSON emitter.
//!
//! Tables 1 and 2 of the paper report averages of ten runs of a handful
//! of named phases. [`Breakdown`] collects per-phase samples across
//! repetitions and reports mean / min / max; [`JsonValue`] lets harnesses
//! dump results machine-readably without pulling in a JSON crate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Per-phase timing samples across benchmark repetitions.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    phases: BTreeMap<String, Vec<f64>>,
}

impl Breakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (in seconds) for `phase`.
    pub fn add(&mut self, phase: &str, seconds: f64) {
        self.phases
            .entry(phase.to_string())
            .or_default()
            .push(seconds);
    }

    /// Record a [`Duration`] sample.
    pub fn add_duration(&mut self, phase: &str, d: Duration) {
        self.add(phase, d.as_secs_f64());
    }

    /// Merge all samples from another breakdown.
    pub fn merge(&mut self, other: &Breakdown) {
        for (k, v) in &other.phases {
            self.phases.entry(k.clone()).or_default().extend(v);
        }
    }

    /// Mean of a phase's samples, if any were recorded.
    pub fn mean(&self, phase: &str) -> Option<f64> {
        let v = self.phases.get(phase)?;
        if v.is_empty() {
            return None;
        }
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }

    /// (min, max) of a phase's samples.
    pub fn min_max(&self, phase: &str) -> Option<(f64, f64)> {
        let v = self.phases.get(phase)?;
        let mut it = v.iter().copied();
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x))))
    }

    /// Number of samples recorded for a phase.
    pub fn count(&self, phase: &str) -> usize {
        self.phases.get(phase).map_or(0, Vec::len)
    }

    /// Phase names in sorted order.
    pub fn phases(&self) -> impl Iterator<Item = &str> {
        self.phases.keys().map(String::as_str)
    }

    /// Render an aligned text table (seconds, mean over samples).
    pub fn to_table(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let w = self
            .phases
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "{:>w$}  {:>10}  {:>10}  {:>10}  {:>4}",
            "phase", "mean(s)", "min(s)", "max(s)", "n"
        );
        for k in self.phases.keys() {
            let mean = self.mean(k).unwrap_or(f64::NAN);
            let (lo, hi) = self.min_max(k).unwrap_or((f64::NAN, f64::NAN));
            let _ = writeln!(
                out,
                "{k:>w$}  {mean:>10.4}  {lo:>10.4}  {hi:>10.4}  {:>4}",
                self.count(k)
            );
        }
        out
    }

    /// Convert to a JSON object `{phase: {mean, min, max, n}, ...}`.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = Vec::new();
        for k in self.phases.keys() {
            let (lo, hi) = self.min_max(k).unwrap_or((f64::NAN, f64::NAN));
            obj.push((
                k.clone(),
                JsonValue::Object(vec![
                    (
                        "mean".into(),
                        JsonValue::Num(self.mean(k).unwrap_or(f64::NAN)),
                    ),
                    ("min".into(), JsonValue::Num(lo)),
                    ("max".into(), JsonValue::Num(hi)),
                    ("n".into(), JsonValue::Num(self.count(k) as f64)),
                ]),
            ));
        }
        JsonValue::Object(obj)
    }
}

/// A minimal JSON document model with an emitter. Covers exactly what the
/// harness reports need; not a general-purpose JSON library.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// true/false
    Bool(bool),
    /// Any number (NaN/∞ emit as null per JSON rules).
    Num(f64),
    /// A string (escaped on emit).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl JsonValue {
    /// Parse one JSON document from `s`. Strict enough for round-tripping
    /// this crate's own emitter output (event logs, metrics JSONL); not a
    /// validating general-purpose parser.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts. Our own emitter never
/// nests past a handful of levels; the cap turns adversarial inputs like
/// `[[[[…` into a parse error instead of a stack overflow.
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat_lit("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_statistics() {
        let mut b = Breakdown::new();
        b.add("collect", 1.0);
        b.add("collect", 3.0);
        b.add("tx", 0.5);
        assert_eq!(b.mean("collect"), Some(2.0));
        assert_eq!(b.min_max("collect"), Some((1.0, 3.0)));
        assert_eq!(b.count("collect"), 2);
        assert_eq!(b.mean("missing"), None);
        assert_eq!(b.phases().collect::<Vec<_>>(), vec!["collect", "tx"]);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = Breakdown::new();
        a.add("x", 1.0);
        let mut b = Breakdown::new();
        b.add("x", 3.0);
        b.add("y", 5.0);
        a.merge(&b);
        assert_eq!(a.mean("x"), Some(2.0));
        assert_eq!(a.count("y"), 1);
    }

    #[test]
    fn breakdown_duration_sample() {
        let mut b = Breakdown::new();
        b.add_duration("p", Duration::from_millis(250));
        assert!((b.mean("p").unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn table_contains_phases() {
        let mut b = Breakdown::new();
        b.add("coordinate", 0.125);
        b.add("migrate", 14.621);
        let t = b.to_table("Table 2");
        assert!(t.contains("coordinate"));
        assert!(t.contains("14.621"));
    }

    #[test]
    fn json_escaping() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_structure() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::Num(1.5)),
            (
                "b".into(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1.5,"b":[true,null]}"#);
    }

    #[test]
    fn json_nonfinite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn breakdown_to_json_roundtrips_names() {
        let mut b = Breakdown::new();
        b.add("tx", 8.591);
        let s = b.to_json().to_string();
        assert!(s.contains("\"tx\""), "{s}");
        assert!(s.contains("8.591"), "{s}");
    }

    #[test]
    fn parse_roundtrips_emitter_output() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::Num(1.5)),
            ("s".into(), JsonValue::Str("x\"y\\z\n\u{1}é".into())),
            (
                "arr".into(),
                JsonValue::Array(vec![
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Num(-3.0),
                ]),
            ),
            ("empty".into(), JsonValue::Object(vec![])),
        ]);
        let parsed = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    // -- fuzz-style hardening: the parser normally only sees logs our
    // own serializer wrote; these feed it the inputs it never sees. ----

    #[test]
    fn parse_survives_every_truncation_of_a_real_log_line() {
        let line = r#"{"t_ns":120,"seq":4,"who":"p0","kind":{"type":"Send","to":1,"tag":-3,"bytes":64,"msg":9,"arr":[1,true,null,"é\nA"]}}"#;
        // Every char-boundary prefix must parse or error — never panic.
        for (i, _) in line.char_indices() {
            let _ = JsonValue::parse(&line[..i]);
        }
        assert!(JsonValue::parse(line).is_ok());
        // And every strict prefix is an error (no silent truncation).
        assert!(JsonValue::parse(&line[..line.len() - 1]).is_err());
    }

    #[test]
    fn parse_rejects_pathological_nesting_without_overflowing() {
        let deep_arrays = "[".repeat(100_000);
        let err = JsonValue::parse(&deep_arrays).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let deep_objects = "{\"k\":".repeat(100_000);
        let err = JsonValue::parse(&deep_objects).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Just under the cap still works.
        let n = 200;
        let ok = format!("{}{}", "[".repeat(n), "]".repeat(n));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn parse_rejects_invalid_escapes() {
        assert!(JsonValue::parse(r#""\x41""#).is_err());
        assert!(JsonValue::parse(r#""\u12""#).is_err(), "truncated \\u");
        assert!(JsonValue::parse(r#""\uZZZZ""#).is_err(), "non-hex \\u");
        assert!(JsonValue::parse("\"\\").is_err(), "escape at EOF");
        assert!(JsonValue::parse("\"abc").is_err(), "unterminated string");
        // A lone surrogate is not a scalar value: replaced, not panicked.
        let v = JsonValue::parse(r#""\ud800""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn parse_rejects_malformed_numbers() {
        for bad in ["-", "1e", "1.2.3", "--4", "1e+", "0x10"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad}");
        }
        assert_eq!(JsonValue::parse("-0.5e2").unwrap().as_f64(), Some(-50.0));
    }

    #[test]
    fn duplicate_keys_keep_first_for_lookup() {
        // The object model preserves insertion order; `get` finds the
        // first occurrence, so a duplicated key cannot shadow what our
        // serializer wrote earlier in the line.
        let v = JsonValue::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        match &v {
            JsonValue::Object(fields) => assert_eq!(fields.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_never_panics_on_seeded_random_bytes() {
        // Deterministic xorshift fuzz over JSON-ish bytes: the parser
        // must return Ok or Err on every input, never panic or hang.
        let charset: &[u8] = b"{}[]\",:0123456789.eE+-\\utrfalsenu \t\n\x7f";
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let len = (next() % 64) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| charset[(next() % charset.len() as u64) as usize])
                .collect();
            let s = String::from_utf8(bytes).unwrap();
            let _ = JsonValue::parse(&s);
        }
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"n":4,"s":"hi","b":false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_array(), None);
    }
}
