//! Space-time diagram construction and rendering.
//!
//! XPVM drew each process as a horizontal timeline and each message as a
//! line from its `pvm_send` to the matching `pvm_recv` return. This
//! module reconstructs the same picture from a trace: matched
//! [`MessageLine`]s plus an ASCII lane rendering suitable for a terminal.

use crate::event::{Event, EventKind, MsgId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A matched send→receive pair: one "line" of the XPVM diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageLine {
    /// Wire id.
    pub msg: MsgId,
    /// Sender label.
    pub from: String,
    /// Receiver label (the process whose `recv` returned it).
    pub to: String,
    /// Application tag.
    pub tag: i32,
    /// Payload bytes.
    pub bytes: usize,
    /// Send timestamp (ns since trace start).
    pub sent_ns: u64,
    /// Receive-completion timestamp; `None` if never received (a bug —
    /// Theorem 2 says this cannot happen under the protocol).
    pub recv_ns: Option<u64>,
    /// True when the receive was satisfied out of the received-message
    /// list rather than a live channel.
    pub via_rml: bool,
}

impl MessageLine {
    /// Latency from send to receive completion, if received.
    pub fn latency_ns(&self) -> Option<u64> {
        self.recv_ns.map(|r| r.saturating_sub(self.sent_ns))
    }
}

/// An analysed trace: events plus matched message lines.
#[derive(Debug, Clone)]
pub struct SpaceTime {
    events: Vec<Event>,
    lines: Vec<MessageLine>,
    lanes: Vec<String>,
}

impl SpaceTime {
    /// Analyse a snapshot of trace events.
    pub fn build(events: Vec<Event>) -> Self {
        let mut lanes: Vec<String> = Vec::new();
        for e in &events {
            if !lanes.iter().any(|l| l == &e.who) {
                lanes.push(e.who.clone());
            }
        }

        let mut sends: HashMap<MsgId, MessageLine> = HashMap::new();
        for e in &events {
            if let EventKind::Send {
                to: _,
                tag,
                bytes,
                msg,
            } = &e.kind
            {
                sends.insert(
                    *msg,
                    MessageLine {
                        msg: *msg,
                        from: e.who.clone(),
                        to: String::new(),
                        tag: *tag,
                        bytes: *bytes,
                        sent_ns: e.t_ns,
                        recv_ns: None,
                        via_rml: false,
                    },
                );
            }
        }
        for e in &events {
            if let EventKind::RecvDone { msg, from_rml, .. } = &e.kind {
                if let Some(line) = sends.get_mut(msg) {
                    // First receive wins; duplicates would be a protocol
                    // bug surfaced by `duplicate_receives`.
                    if line.recv_ns.is_none() {
                        line.to = e.who.clone();
                        line.recv_ns = Some(e.t_ns);
                        line.via_rml = *from_rml;
                    }
                }
            }
        }
        let mut lines: Vec<MessageLine> = sends.into_values().collect();
        lines.sort_by_key(|l| (l.sent_ns, l.msg));
        Self {
            events,
            lines,
            lanes,
        }
    }

    /// All matched (and unmatched) message lines, in send order.
    pub fn lines(&self) -> &[MessageLine] {
        &self.lines
    }

    /// The underlying events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Process labels in first-appearance order.
    pub fn lanes(&self) -> &[String] {
        &self.lanes
    }

    /// Messages that were sent but never returned by any `recv` — must be
    /// empty for a complete run (Theorem 2: no message loss).
    pub fn undelivered(&self) -> Vec<&MessageLine> {
        self.lines.iter().filter(|l| l.recv_ns.is_none()).collect()
    }

    /// Wire ids received more than once — must be empty (exactly-once
    /// delivery).
    pub fn duplicate_receives(&self) -> Vec<MsgId> {
        let mut seen: HashMap<MsgId, usize> = HashMap::new();
        for e in &self.events {
            if let EventKind::RecvDone { msg, .. } = &e.kind {
                *seen.entry(*msg).or_default() += 1;
            }
        }
        let mut dups: Vec<MsgId> = seen
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(m, _)| m)
            .collect();
        dups.sort_unstable();
        dups
    }

    /// Check per-(sender,receiver-rank,tag-stream) FIFO: receive order of
    /// messages between one ordered pair must match send order (Theorem 3).
    /// Returns violating message-id pairs (earlier-sent received later).
    pub fn fifo_violations(&self) -> Vec<(MsgId, MsgId)> {
        // Group by (from-label, to-label); within a pair, sort by send
        // time and verify receive times are monotone.
        let mut groups: HashMap<(String, String), Vec<&MessageLine>> = HashMap::new();
        for l in &self.lines {
            if l.recv_ns.is_some() {
                groups
                    .entry((l.from.clone(), l.to.clone()))
                    .or_default()
                    .push(l);
            }
        }
        let mut bad = Vec::new();
        for (_, mut ls) in groups {
            ls.sort_by_key(|l| (l.sent_ns, l.msg));
            for w in ls.windows(2) {
                if w[0].recv_ns > w[1].recv_ns {
                    bad.push((w[0].msg, w[1].msg));
                }
            }
        }
        bad.sort_unstable();
        bad
    }

    /// Timestamp of the first event satisfying `pred`, if any.
    pub fn first_when(&self, mut pred: impl FnMut(&Event) -> bool) -> Option<u64> {
        self.events.iter().find(|e| pred(e)).map(|e| e.t_ns)
    }

    /// Events attributed to one lane.
    pub fn lane_events<'a>(&'a self, who: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.who == who)
    }

    /// Render an ASCII space-time diagram with `width` time buckets.
    ///
    /// Each lane is a row; each bucket shows the glyph of the last event
    /// falling in it. A legend and the matched message count follow.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(10);
        let t_max = self.events.last().map(|e| e.t_ns).unwrap_or(0).max(1);
        let label_w = self.lanes.iter().map(|l| l.len()).max().unwrap_or(4).max(4);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "space-time diagram: {} lanes, {} events, {} messages, span {:.3} ms",
            self.lanes.len(),
            self.events.len(),
            self.lines.len(),
            t_max as f64 / 1e6
        );
        for lane in &self.lanes {
            let mut row = vec![' '; width];
            for e in self.lane_events(lane) {
                let idx = ((e.t_ns as u128 * (width as u128 - 1)) / t_max as u128) as usize;
                row[idx] = e.kind.glyph();
            }
            let _ = writeln!(out, "{lane:>label_w$} |{}|", row.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "legend: S send R recv q rml c/a/n conn-req/ack/nack ? sched M mig-start \
             m peer-mig-sent p peer-mig-seen e eom K collect T tx V restore X commit"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, who: &str, kind: EventKind) -> Event {
        Event {
            t_ns: t,
            seq: t,
            who: who.into(),
            kind,
        }
    }

    fn send(t: u64, who: &str, to: usize, id: u64) -> Event {
        ev(
            t,
            who,
            EventKind::Send {
                to,
                tag: 7,
                bytes: 100,
                msg: MsgId(id),
            },
        )
    }

    fn recv(t: u64, who: &str, from: usize, id: u64, rml: bool) -> Event {
        ev(
            t,
            who,
            EventKind::RecvDone {
                from,
                tag: 7,
                bytes: 100,
                msg: MsgId(id),
                from_rml: rml,
            },
        )
    }

    #[test]
    fn matches_send_to_recv() {
        let st = SpaceTime::build(vec![send(10, "p0", 1, 1), recv(50, "p1", 0, 1, false)]);
        assert_eq!(st.lines().len(), 1);
        let l = &st.lines()[0];
        assert_eq!(l.from, "p0");
        assert_eq!(l.to, "p1");
        assert_eq!(l.latency_ns(), Some(40));
        assert!(st.undelivered().is_empty());
    }

    #[test]
    fn detects_undelivered() {
        let st = SpaceTime::build(vec![send(10, "p0", 1, 1), send(20, "p0", 1, 2)]);
        assert_eq!(st.undelivered().len(), 2);
    }

    #[test]
    fn detects_duplicates() {
        let st = SpaceTime::build(vec![
            send(10, "p0", 1, 1),
            recv(20, "p1", 0, 1, false),
            recv(30, "p1", 0, 1, true),
        ]);
        assert_eq!(st.duplicate_receives(), vec![MsgId(1)]);
    }

    #[test]
    fn fifo_violation_detected() {
        let st = SpaceTime::build(vec![
            send(10, "p0", 1, 1),
            send(20, "p0", 1, 2),
            recv(30, "p1", 0, 2, false),
            recv(40, "p1", 0, 1, false),
        ]);
        assert_eq!(st.fifo_violations(), vec![(MsgId(1), MsgId(2))]);
    }

    #[test]
    fn fifo_ok_when_ordered() {
        let st = SpaceTime::build(vec![
            send(10, "p0", 1, 1),
            send(20, "p0", 1, 2),
            recv(30, "p1", 0, 1, false),
            recv(40, "p1", 0, 2, true),
        ]);
        assert!(st.fifo_violations().is_empty());
    }

    #[test]
    fn lanes_in_first_appearance_order() {
        let st = SpaceTime::build(vec![
            ev(5, "scheduler", EventKind::Phase { label: "go".into() }),
            send(10, "p0", 1, 1),
            recv(20, "p1", 0, 1, false),
        ]);
        assert_eq!(st.lanes(), &["scheduler", "p0", "p1"]);
    }

    #[test]
    fn render_contains_all_lanes() {
        let st = SpaceTime::build(vec![
            send(10, "p0", 1, 1),
            recv(20, "p1", 0, 1, false),
            ev(30, "p1", EventKind::MigrationStart { rank: 1 }),
        ]);
        let s = st.render(40);
        assert!(s.contains("p0"), "{s}");
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains('M'), "{s}");
        assert!(s.contains("legend"), "{s}");
    }

    #[test]
    fn render_empty_trace() {
        let st = SpaceTime::build(Vec::new());
        let s = st.render(40);
        assert!(s.contains("0 lanes"));
    }

    #[test]
    fn first_when_finds_event() {
        let st = SpaceTime::build(vec![
            send(10, "p0", 1, 1),
            ev(42, "p0", EventKind::MigrationStart { rank: 0 }),
        ]);
        assert_eq!(
            st.first_when(|e| matches!(e.kind, EventKind::MigrationStart { .. })),
            Some(42)
        );
        assert_eq!(
            st.first_when(|e| matches!(e.kind, EventKind::MigrationCommit { .. })),
            None
        );
    }
}
