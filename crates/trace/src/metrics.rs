//! Per-migration metrics registry.
//!
//! Every component that holds the shared [`crate::Tracer`] can
//! contribute measurements: the migrating process records one
//! [`MigrationMetrics`] per `migrate()` call (phase latencies, bytes
//! moved, chunk counts, retry/abort causes), the scheduler records its
//! verdicts from the in-flight table, and the post office contributes
//! per-link queue-depth samples. The registry exports everything as
//! JSONL (one record per line, `record` field naming the type) plus a
//! human summary table.

use crate::report::JsonValue;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How one migration resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationVerdict {
    /// The destination acknowledged the state and the directory points
    /// at it: the source terminated.
    Committed,
    /// The migration rolled back; the source resumed in place.
    Aborted,
}

impl MigrationVerdict {
    fn as_str(self) -> &'static str {
        match self {
            MigrationVerdict::Committed => "committed",
            MigrationVerdict::Aborted => "aborted",
        }
    }
}

/// Everything measured about one `migrate()` call, source-side.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationMetrics {
    /// The migrating rank.
    pub rank: usize,
    /// How the migration resolved.
    pub verdict: MigrationVerdict,
    /// Transfer attempts made (1 = no retries).
    pub attempts: u32,
    /// Real seconds coordinating peers (drain phase).
    pub coordinate_s: f64,
    /// Modeled seconds collecting the state.
    pub collect_s: f64,
    /// Modeled seconds transmitting the state.
    pub tx_s: f64,
    /// Modeled seconds restoring at the destination.
    pub restore_s: f64,
    /// Modeled makespan of the overlapped collect→tx→restore pipeline.
    pub pipelined_s: f64,
    /// Real wall-clock seconds for the whole `migrate()` call.
    pub wall_s: f64,
    /// Canonical state size in bytes.
    pub state_bytes: usize,
    /// Chunks the state was streamed as (1 = monolithic).
    pub chunks: usize,
    /// In-transit messages captured and forwarded with the transfer.
    pub rml_forwarded: usize,
    /// Messages restored to the RML on abort (0 for commits).
    pub rml_restored: usize,
    /// One cause string per failed attempt that was retried.
    pub retry_causes: Vec<String>,
    /// The failure that triggered the final abort, if the migration
    /// aborted.
    pub abort_cause: Option<String>,
}

impl MigrationMetrics {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("record".into(), JsonValue::Str("migration".into())),
            ("rank".into(), JsonValue::Num(self.rank as f64)),
            (
                "verdict".into(),
                JsonValue::Str(self.verdict.as_str().into()),
            ),
            ("attempts".into(), JsonValue::Num(self.attempts as f64)),
            ("coordinate_s".into(), JsonValue::Num(self.coordinate_s)),
            ("collect_s".into(), JsonValue::Num(self.collect_s)),
            ("tx_s".into(), JsonValue::Num(self.tx_s)),
            ("restore_s".into(), JsonValue::Num(self.restore_s)),
            ("pipelined_s".into(), JsonValue::Num(self.pipelined_s)),
            ("wall_s".into(), JsonValue::Num(self.wall_s)),
            (
                "state_bytes".into(),
                JsonValue::Num(self.state_bytes as f64),
            ),
            ("chunks".into(), JsonValue::Num(self.chunks as f64)),
            (
                "rml_forwarded".into(),
                JsonValue::Num(self.rml_forwarded as f64),
            ),
            (
                "rml_restored".into(),
                JsonValue::Num(self.rml_restored as f64),
            ),
            (
                "retry_causes".into(),
                JsonValue::Array(
                    self.retry_causes
                        .iter()
                        .map(|c| JsonValue::Str(c.clone()))
                        .collect(),
                ),
            ),
            (
                "abort_cause".into(),
                self.abort_cause
                    .as_ref()
                    .map_or(JsonValue::Null, |c| JsonValue::Str(c.clone())),
            ),
        ])
    }
}

/// One scheduler ruling on an in-flight migration, recorded when the
/// scheduler closes (commits, retries, or abandons) a table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRuling {
    /// The migrating rank the ruling concerns.
    pub rank: usize,
    /// "commit", "retry", or "abort".
    pub action: String,
    /// Attempt count at ruling time.
    pub attempts: u32,
    /// Failure reason, for retry/abort rulings.
    pub cause: Option<String>,
}

impl SchedulerRuling {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("record".into(), JsonValue::Str("sched_ruling".into())),
            ("rank".into(), JsonValue::Num(self.rank as f64)),
            ("action".into(), JsonValue::Str(self.action.clone())),
            ("attempts".into(), JsonValue::Num(self.attempts as f64)),
            (
                "cause".into(),
                self.cause
                    .as_ref()
                    .map_or(JsonValue::Null, |c| JsonValue::Str(c.clone())),
            ),
        ])
    }
}

/// Aggregate metrics of one host drain (gang migration through the
/// scheduler's bounded worker pool). The scheduler deposits exactly one
/// record per drain, at the drain's terminal verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainMetrics {
    /// The evacuated host's id.
    pub host: usize,
    /// Gang size at admission.
    pub ranks: usize,
    /// Migrants that committed off the host.
    pub completed: usize,
    /// Migrants whose migration finally aborted (resumed in place).
    pub aborted: usize,
    /// Retry rulings issued across the gang (re-targets after
    /// destination deaths).
    pub retried: usize,
    /// Real seconds from admission to the terminal verdict.
    pub makespan_s: f64,
    /// Configured pool width.
    pub max_workers: usize,
    /// Highest concurrent job count observed.
    pub peak_active: usize,
    /// "evacuated" or "partial".
    pub outcome: String,
}

impl DrainMetrics {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("record".into(), JsonValue::Str("drain".into())),
            ("host".into(), JsonValue::Num(self.host as f64)),
            ("ranks".into(), JsonValue::Num(self.ranks as f64)),
            ("completed".into(), JsonValue::Num(self.completed as f64)),
            ("aborted".into(), JsonValue::Num(self.aborted as f64)),
            ("retried".into(), JsonValue::Num(self.retried as f64)),
            ("makespan_s".into(), JsonValue::Num(self.makespan_s)),
            (
                "max_workers".into(),
                JsonValue::Num(self.max_workers as f64),
            ),
            (
                "peak_active".into(),
                JsonValue::Num(self.peak_active as f64),
            ),
            ("outcome".into(), JsonValue::Str(self.outcome.clone())),
        ])
    }
}

/// A point sample of one inbox/link queue depth.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDepthSample {
    /// Label of the queue's owner ("p0", "daemon:h2", …).
    pub label: String,
    /// Nanoseconds since trace start, as reported by the sampler.
    pub t_ns: u64,
    /// Frames queued (including staged modeled-delivery frames).
    pub depth: usize,
}

impl QueueDepthSample {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("record".into(), JsonValue::Str("queue_depth".into())),
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("t_ns".into(), JsonValue::Num(self.t_ns as f64)),
            ("depth".into(), JsonValue::Num(self.depth as f64)),
        ])
    }
}

/// Thread-safe collector for everything above. One per [`crate::Tracer`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    migrations: Mutex<Vec<MigrationMetrics>>,
    rulings: Mutex<Vec<SchedulerRuling>>,
    drains: Mutex<Vec<DrainMetrics>>,
    queues: Mutex<Vec<QueueDepthSample>>,
    /// Injected-fault counters, keyed by fault class ("delay", "reset",
    /// "drop:conn_req", …). Ordered so exports are deterministic.
    faults: Mutex<BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished migration (source-side view).
    pub fn record_migration(&self, m: MigrationMetrics) {
        self.migrations.lock().push(m);
    }

    /// Record one scheduler ruling on an in-flight migration.
    pub fn record_ruling(&self, r: SchedulerRuling) {
        self.rulings.lock().push(r);
    }

    /// Record one terminal host-drain verdict. The scheduler calls this
    /// exactly once per drain.
    pub fn record_drain(&self, d: DrainMetrics) {
        self.drains.lock().push(d);
    }

    /// Record one queue-depth sample.
    pub fn sample_queue_depth(&self, label: &str, t_ns: u64, depth: usize) {
        self.queues.lock().push(QueueDepthSample {
            label: label.to_string(),
            t_ns,
            depth,
        });
    }

    /// Count one injected fault of `class` ("delay", "reset",
    /// "drop:conn_req", "dup:conn_reply", …), so audits can correlate
    /// injected faults with observed retries and aborts.
    pub fn record_fault(&self, class: &str) {
        *self.faults.lock().entry(class.to_string()).or_insert(0) += 1;
    }

    /// Copy out the injected-fault counters, sorted by class.
    pub fn fault_counts(&self) -> Vec<(String, u64)> {
        self.faults
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total injected faults across every class.
    pub fn total_faults(&self) -> u64 {
        self.faults.lock().values().sum()
    }

    /// Copy out the migration records.
    pub fn migrations(&self) -> Vec<MigrationMetrics> {
        self.migrations.lock().clone()
    }

    /// Copy out the scheduler rulings.
    pub fn rulings(&self) -> Vec<SchedulerRuling> {
        self.rulings.lock().clone()
    }

    /// Copy out the host-drain records.
    pub fn drains(&self) -> Vec<DrainMetrics> {
        self.drains.lock().clone()
    }

    /// Copy out the queue-depth samples.
    pub fn queue_samples(&self) -> Vec<QueueDepthSample> {
        self.queues.lock().clone()
    }

    /// Nothing recorded at all?
    pub fn is_empty(&self) -> bool {
        self.migrations.lock().is_empty()
            && self.rulings.lock().is_empty()
            && self.drains.lock().is_empty()
            && self.queues.lock().is_empty()
            && self.faults.lock().is_empty()
    }

    /// Export every record as JSONL: one JSON object per line, each with
    /// a `record` field ("migration", "sched_ruling", "queue_depth").
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in self.migrations.lock().iter() {
            let _ = writeln!(out, "{}", m.to_json());
        }
        for r in self.rulings.lock().iter() {
            let _ = writeln!(out, "{}", r.to_json());
        }
        for d in self.drains.lock().iter() {
            let _ = writeln!(out, "{}", d.to_json());
        }
        for q in self.queues.lock().iter() {
            let _ = writeln!(out, "{}", q.to_json());
        }
        for (class, count) in self.faults.lock().iter() {
            let record = JsonValue::Object(vec![
                ("record".into(), JsonValue::Str("fault".into())),
                ("class".into(), JsonValue::Str(class.clone())),
                ("count".into(), JsonValue::Num(*count as f64)),
            ]);
            let _ = writeln!(out, "{record}");
        }
        out
    }

    /// Render a human-readable summary of the registry.
    pub fn summary(&self) -> String {
        let migs = self.migrations.lock();
        let rulings = self.rulings.lock();
        let queues = self.queues.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "migration metrics: {} migration(s), {} scheduler ruling(s), {} queue sample(s)",
            migs.len(),
            rulings.len(),
            queues.len()
        );
        if !migs.is_empty() {
            let _ = writeln!(
                out,
                "{:>4} {:>9} {:>3} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>6} {:>4} {:>4}",
                "rank",
                "verdict",
                "try",
                "coord(s)",
                "collect(s)",
                "tx(s)",
                "restore(s)",
                "wall(s)",
                "bytes",
                "chunks",
                "rmlF",
                "rmlR"
            );
            for m in migs.iter() {
                let _ = writeln!(
                    out,
                    "{:>4} {:>9} {:>3} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>9} {:>6} {:>4} {:>4}",
                    m.rank,
                    m.verdict.as_str(),
                    m.attempts,
                    m.coordinate_s,
                    m.collect_s,
                    m.tx_s,
                    m.restore_s,
                    m.wall_s,
                    m.state_bytes,
                    m.chunks,
                    m.rml_forwarded,
                    m.rml_restored
                );
            }
            for m in migs.iter() {
                for (i, c) in m.retry_causes.iter().enumerate() {
                    let _ = writeln!(out, "  rank {} retry {}: {c}", m.rank, i + 1);
                }
                if let Some(c) = &m.abort_cause {
                    let _ = writeln!(out, "  rank {} abort: {c}", m.rank);
                }
            }
        }
        for r in rulings.iter() {
            let _ = writeln!(
                out,
                "  scheduler: rank {} {} (attempt {}){}",
                r.rank,
                r.action,
                r.attempts,
                r.cause
                    .as_ref()
                    .map(|c| format!(" — {c}"))
                    .unwrap_or_default()
            );
        }
        for d in self.drains.lock().iter() {
            let _ = writeln!(
                out,
                "  drain host {}: {} ({} rank(s), {} completed, {} aborted, {} retried, \
                 peak {} of {} worker(s), {:.4}s)",
                d.host,
                d.outcome,
                d.ranks,
                d.completed,
                d.aborted,
                d.retried,
                d.peak_active,
                d.max_workers,
                d.makespan_s
            );
        }
        if !queues.is_empty() {
            let peak = queues.iter().map(|q| q.depth).max().unwrap_or(0);
            let _ = writeln!(out, "  queue depth peak: {peak} frame(s)");
        }
        let faults = self.faults.lock();
        if !faults.is_empty() {
            let classes: Vec<String> = faults.iter().map(|(c, n)| format!("{c}={n}")).collect();
            let _ = writeln!(out, "  injected faults: {}", classes.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_migration() -> MigrationMetrics {
        MigrationMetrics {
            rank: 3,
            verdict: MigrationVerdict::Aborted,
            attempts: 2,
            coordinate_s: 0.01,
            collect_s: 0.5,
            tx_s: 1.5,
            restore_s: 0.25,
            pipelined_s: 1.75,
            wall_s: 0.02,
            state_bytes: 100_000,
            chunks: 25,
            rml_forwarded: 3,
            rml_restored: 4,
            retry_causes: vec!["chunk 0 rejected".into()],
            abort_cause: Some("destination vanished".into()),
        }
    }

    #[test]
    fn jsonl_has_one_record_per_line() {
        let reg = MetricsRegistry::new();
        reg.record_migration(sample_migration());
        reg.record_ruling(SchedulerRuling {
            rank: 3,
            action: "abort".into(),
            attempts: 2,
            cause: Some("destination vanished".into()),
        });
        reg.sample_queue_depth("p0", 123, 7);
        let jsonl = reg.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = JsonValue::parse(line).unwrap();
            assert!(v.get("record").is_some(), "{line}");
        }
        assert!(lines[0].contains("\"record\":\"migration\""));
        assert!(lines[1].contains("\"record\":\"sched_ruling\""));
        assert!(lines[2].contains("\"record\":\"queue_depth\""));
    }

    #[test]
    fn jsonl_migration_fields_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.record_migration(sample_migration());
        let line = reg.to_jsonl();
        let v = JsonValue::parse(line.trim()).unwrap();
        assert_eq!(v.get("rank").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("aborted"));
        assert_eq!(v.get("state_bytes").unwrap().as_u64(), Some(100_000));
        assert_eq!(v.get("retry_causes").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(
            v.get("abort_cause").unwrap().as_str(),
            Some("destination vanished")
        );
    }

    #[test]
    fn summary_mentions_causes_and_peak() {
        let reg = MetricsRegistry::new();
        reg.record_migration(sample_migration());
        reg.sample_queue_depth("p1", 5, 9);
        let s = reg.summary();
        assert!(s.contains("aborted"), "{s}");
        assert!(s.contains("destination vanished"), "{s}");
        assert!(s.contains("chunk 0 rejected"), "{s}");
        assert!(s.contains("peak: 9"), "{s}");
    }

    #[test]
    fn fault_counters_aggregate_and_export() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.total_faults(), 0);
        reg.record_fault("delay");
        reg.record_fault("delay");
        reg.record_fault("drop:conn_req");
        assert!(!reg.is_empty());
        assert_eq!(reg.total_faults(), 3);
        assert_eq!(
            reg.fault_counts(),
            vec![("delay".to_string(), 2), ("drop:conn_req".to_string(), 1)]
        );
        let jsonl = reg.to_jsonl();
        let fault_lines: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"fault\""))
            .collect();
        assert_eq!(fault_lines.len(), 2);
        let v = JsonValue::parse(fault_lines[0]).unwrap();
        assert_eq!(v.get("class").unwrap().as_str(), Some("delay"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
        assert!(
            reg.summary().contains("injected faults: delay=2"),
            "{}",
            reg.summary()
        );
    }

    #[test]
    fn drain_record_exports_and_summarizes() {
        let reg = MetricsRegistry::new();
        reg.record_drain(DrainMetrics {
            host: 1,
            ranks: 8,
            completed: 7,
            aborted: 1,
            retried: 3,
            makespan_s: 0.25,
            max_workers: 4,
            peak_active: 4,
            outcome: "partial".into(),
        });
        assert!(!reg.is_empty());
        assert_eq!(reg.drains().len(), 1);
        let jsonl = reg.to_jsonl();
        let drain_lines: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"drain\""))
            .collect();
        assert_eq!(drain_lines.len(), 1);
        let v = JsonValue::parse(drain_lines[0]).unwrap();
        assert_eq!(v.get("host").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("ranks").unwrap().as_u64(), Some(8));
        assert_eq!(v.get("completed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("aborted").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("retried").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("peak_active").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("partial"));
        let s = reg.summary();
        assert!(s.contains("drain host 1: partial"), "{s}");
        assert!(s.contains("peak 4 of 4 worker(s)"), "{s}");
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.to_jsonl(), "");
        assert!(reg.summary().contains("0 migration(s)"));
    }

    #[test]
    fn registry_is_shared_safely() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let reg = std::sync::Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for j in 0..25 {
                    reg.sample_queue_depth(&format!("p{i}"), j, j as usize);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.queue_samples().len(), 100);
    }
}
