//! Trace event model.
//!
//! Event kinds map one-to-one onto the protocol actions of §3 of the
//! paper, so a trace can be checked against the algorithms (Figs 2–7)
//! and rendered like the XPVM diagrams (Figs 10–13).

/// Globally unique message identifier, assigned at send time, carried in
/// the wire envelope, and echoed by the receive event — this is how
/// space-time "message lines" are reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the tracer was created.
    pub t_ns: u64,
    /// Monotonic record-order sequence number, stamped under the tracer
    /// lock. Breaks `t_ns` ties so equal-nanosecond events keep their
    /// recording order in [`crate::Tracer::snapshot`].
    pub seq: u64,
    /// Label of the acting process ("p0", "scheduler", "init",
    /// "daemon:h2", …).
    pub who: String,
    /// What happened.
    pub kind: EventKind,
}

/// The protocol actions a trace can record.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    // -- data communication (Figs 2–4) ---------------------------------
    /// A data message left the sender (send algorithm, Fig 2 line 4).
    Send {
        /// Destination rank.
        to: usize,
        /// Application tag.
        tag: i32,
        /// Payload size in bytes.
        bytes: usize,
        /// Wire identifier for send→recv matching.
        msg: MsgId,
    },
    /// `recv` began waiting for a matching message (Fig 4).
    RecvStart {
        /// Requested source rank (`None` = wildcard).
        from: Option<usize>,
        /// Requested tag (`None` = wildcard).
        tag: Option<i32>,
    },
    /// `recv` returned a message to the application.
    RecvDone {
        /// Originating rank.
        from: usize,
        /// Application tag.
        tag: i32,
        /// Payload size in bytes.
        bytes: usize,
        /// Matched wire identifier.
        msg: MsgId,
        /// True if satisfied from the received-message-list rather than
        /// a live channel read — the RML hit path of Fig 4 line 2.
        from_rml: bool,
    },
    /// A data message was appended to the received-message-list while
    /// searching for a different message (Fig 4 line 7) or while
    /// draining during migration (Fig 5 line 6).
    RmlAppend {
        /// Originating rank.
        from: usize,
        /// Application tag.
        tag: i32,
        /// Wire identifier.
        msg: MsgId,
    },

    // -- connection establishment (Fig 3) -------------------------------
    /// `conn_req` sent toward a peer's daemon.
    ConnReq {
        /// Target rank.
        to: usize,
    },
    /// `conn_ack` granted (by peer or initialized process).
    ConnAck {
        /// Requesting rank.
        from: usize,
    },
    /// `conn_nack` received — the peer migrated or is migrating.
    ConnNack {
        /// Target rank whose request bounced.
        to: usize,
    },
    /// Sender consulted the scheduler for a fresh location
    /// (Fig 3 line 10) — the "on demand" location update.
    SchedulerConsult {
        /// Rank being located.
        about: usize,
    },
    /// A new communication channel became usable between two ranks.
    ChannelOpen {
        /// Peer rank.
        peer: usize,
    },
    /// A channel was torn down (migration coordination).
    ChannelClose {
        /// Peer rank.
        peer: usize,
    },

    // -- migration (Figs 5–7) -------------------------------------------
    /// The migrating process intercepted `migration_request`
    /// (Fig 5 line 1).
    MigrationStart {
        /// The migrating rank.
        rank: usize,
    },
    /// Disconnection signal + `peer_migrating` pushed to a peer
    /// (Fig 5 line 5).
    PeerMigratingSent {
        /// Peer rank being coordinated.
        peer: usize,
    },
    /// `peer_migrating` observed by a peer (recv algorithm line 12 or
    /// the disconnection handler, Fig 6).
    PeerMigratingSeen {
        /// The migrating rank.
        peer: usize,
    },
    /// `end_of_messages` observed on a channel being drained.
    EndOfMessages {
        /// Peer whose channel drained dry.
        peer: usize,
    },
    /// In-transit messages captured into the migrating process's RML
    /// during coordination and forwarded to the initialized process —
    /// the Fig 13 "captured and forwarded" behaviour.
    RmlForwarded {
        /// Number of captured messages forwarded.
        count: usize,
        /// Their total payload bytes.
        bytes: usize,
    },
    /// One chunk of the pipelined state stream left the source — the
    /// chunked refinement of Fig 5 lines 9–10, where collection of the
    /// next chunk overlaps transmission of this one.
    StateChunkSent {
        /// Position in the stream (0 = header chunk).
        seq: u32,
        /// Chunk payload bytes.
        bytes: usize,
    },
    /// One chunk of the pipelined state stream was verified and decoded
    /// at the destination — restore overlapping transmission.
    StateChunkRestored {
        /// Position in the stream.
        seq: u32,
        /// Chunk payload bytes.
        bytes: usize,
    },
    /// Execution + memory state collection finished (Fig 5 line 9).
    StateCollected {
        /// Canonical state size in bytes.
        bytes: usize,
    },
    /// State transmission to the destination finished (Fig 5 line 10).
    StateTransmitted {
        /// Canonical state size in bytes.
        bytes: usize,
    },
    /// The initialized process finished restoring state (Fig 7 line 8).
    StateRestored {
        /// Canonical state size in bytes.
        bytes: usize,
    },
    /// Scheduler recorded `migration_commit` (Fig 7 line 7).
    MigrationCommit {
        /// The migrated rank.
        rank: usize,
    },
    /// A failed migration was rolled back: the source resumed in place
    /// (source-side) or the scheduler abandoned it (scheduler-side).
    MigrationAborted {
        /// The rank whose migration was abandoned.
        rank: usize,
        /// How many transfer attempts were made before giving up.
        attempt: u32,
    },
    /// The scheduler re-targeted a failed migration at an alternate
    /// host under its retry policy.
    MigrationRetried {
        /// The attempt number about to run (2 = first retry).
        attempt: u32,
    },
    /// A peer observed a `migration_aborted` marker: the migration it
    /// had coordinated channels away for was rolled back, and the old
    /// endpoint is live again.
    MigrationAbortSeen {
        /// The rank whose migration aborted.
        peer: usize,
    },
    /// A partially restored chunk stream was torn down because the
    /// migration aborted or the stream violated the protocol.
    StateRestoreAborted {
        /// Chunks that had been accepted.
        chunks: u32,
        /// Body bytes that had been accepted.
        bytes: usize,
    },

    // -- injected faults (chaos harness) ---------------------------------
    /// The fault layer charged extra wire delay to an outbound frame.
    FaultDelay {
        /// Extra modeled delay in nanoseconds.
        extra_ns: u64,
    },
    /// The fault layer reset a connection under the sender; the frame
    /// was not delivered and recovery (reconnect / abort-retry) runs.
    FaultReset,
    /// The fault layer silently discarded a routed datagram.
    FaultDropped {
        /// What kind of datagram was eaten ("conn_req", "conn_reply").
        what: String,
    },
    /// The fault layer delivered a routed datagram twice.
    FaultDuplicated {
        /// What kind of datagram was doubled ("conn_req", "conn_reply").
        what: String,
    },

    // -- environment -----------------------------------------------------
    /// A signal was delivered to a process's handler.
    SignalDelivered {
        /// Signal name ("SIGMIGRATE", "SIGDISCONNECT").
        signal: &'static str,
    },
    /// A computation event ran for `work` abstract units.
    Compute {
        /// Abstract work units (workload-defined).
        work: u64,
    },
    /// Free-form phase marker used by harnesses ("iteration 2 done").
    Phase {
        /// Marker text.
        label: String,
    },
}

impl EventKind {
    /// Glyph used for the event in space-time lanes.
    pub fn glyph(&self) -> char {
        match self {
            EventKind::Send { .. } => 'S',
            EventKind::RecvStart { .. } => 'r',
            EventKind::RecvDone { .. } => 'R',
            EventKind::RmlAppend { .. } => 'q',
            EventKind::ConnReq { .. } => 'c',
            EventKind::ConnAck { .. } => 'a',
            EventKind::ConnNack { .. } => 'n',
            EventKind::SchedulerConsult { .. } => '?',
            EventKind::ChannelOpen { .. } => '(',
            EventKind::ChannelClose { .. } => ')',
            EventKind::MigrationStart { .. } => 'M',
            EventKind::PeerMigratingSent { .. } => 'm',
            EventKind::PeerMigratingSeen { .. } => 'p',
            EventKind::EndOfMessages { .. } => 'e',
            EventKind::RmlForwarded { .. } => 'F',
            EventKind::StateChunkSent { .. } => 'k',
            EventKind::StateChunkRestored { .. } => 'v',
            EventKind::StateCollected { .. } => 'K',
            EventKind::StateTransmitted { .. } => 'T',
            EventKind::StateRestored { .. } => 'V',
            EventKind::MigrationCommit { .. } => 'X',
            EventKind::MigrationAborted { .. } => 'A',
            EventKind::MigrationRetried { .. } => 'Z',
            EventKind::MigrationAbortSeen { .. } => 'b',
            EventKind::StateRestoreAborted { .. } => 'x',
            EventKind::FaultDelay { .. } => 'j',
            EventKind::FaultReset => 'f',
            EventKind::FaultDropped { .. } => 'd',
            EventKind::FaultDuplicated { .. } => 'u',
            EventKind::SignalDelivered { .. } => '!',
            EventKind::Compute { .. } => '=',
            EventKind::Phase { .. } => '|',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_distinct_for_protocol_events() {
        let kinds = [
            EventKind::Send {
                to: 0,
                tag: 0,
                bytes: 0,
                msg: MsgId(0),
            },
            EventKind::RecvDone {
                from: 0,
                tag: 0,
                bytes: 0,
                msg: MsgId(0),
                from_rml: false,
            },
            EventKind::MigrationStart { rank: 0 },
            EventKind::MigrationCommit { rank: 0 },
            EventKind::MigrationAborted {
                rank: 0,
                attempt: 1,
            },
            EventKind::MigrationRetried { attempt: 2 },
            EventKind::MigrationAbortSeen { peer: 0 },
            EventKind::StateRestoreAborted {
                chunks: 0,
                bytes: 0,
            },
            EventKind::StateCollected { bytes: 0 },
            EventKind::StateTransmitted { bytes: 0 },
            EventKind::StateRestored { bytes: 0 },
            EventKind::FaultDelay { extra_ns: 0 },
            EventKind::FaultReset,
            EventKind::FaultDropped {
                what: String::new(),
            },
            EventKind::FaultDuplicated {
                what: String::new(),
            },
        ];
        let mut glyphs: Vec<char> = kinds.iter().map(|k| k.glyph()).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), kinds.len());
    }

    #[test]
    fn msgid_orders_by_assignment() {
        assert!(MsgId(1) < MsgId(2));
    }
}
