//! # snow-trace — instrumentation for the SNOW migration protocols
//!
//! The paper's evaluation (§6) leans on XPVM space-time diagrams
//! (Figs 10–13) and timing breakdowns (Tables 1–2). This crate is the
//! Rust stand-in for XPVM plus the paper's stopwatch:
//!
//! * [`Tracer`] — a low-overhead, thread-safe global event log. Every
//!   protocol-relevant action (send, recv, connection handshake,
//!   migration phase, signal, scheduler consult) is recorded with a
//!   nanosecond timestamp and the acting process's label.
//! * [`spacetime`] — renders an event log as an ASCII space-time diagram
//!   (process lanes over bucketed time) and extracts matched
//!   send→receive *message lines*, the "lines between timelines" of the
//!   XPVM figures.
//! * [`report`] — timing-breakdown accumulators for the tables
//!   (coordinate / collect / tx / restore / total) and a dependency-free
//!   JSON emitter/parser so harnesses can dump and reload
//!   machine-readable results.
//! * [`metrics`] — a per-migration metrics registry (phase latencies,
//!   bytes moved, chunk counts, retry/abort causes, queue depths) hung
//!   off the shared [`Tracer`], exported as JSONL plus a human summary.
//! * [`audit`] — an online protocol-invariant auditor that checks the
//!   paper's four guarantees (§4) against the ordered event log, both
//!   in-process at test time and offline via `snow-bench audit`.
//! * [`serial`] — typed JSONL (de)serialization of event logs for the
//!   offline audit path.
//!
//! Tracing is optional everywhere: a disabled tracer records nothing and
//! costs one relaxed atomic load per call site, so the Table 1 overhead
//! experiment is not polluted by instrumentation.

#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod event;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod serial;
pub mod spacetime;
pub mod tracer;

pub use analysis::{events_to_json, lane_stats, lane_table, LaneStats};
pub use audit::{assert_clean, audit, AuditReport, Auditor, Violation};
pub use event::{Event, EventKind, MsgId};
pub use metrics::{
    DrainMetrics, MetricsRegistry, MigrationMetrics, MigrationVerdict, SchedulerRuling,
};
pub use phase::{MigrationPhase, PhaseWindows};
pub use report::{Breakdown, JsonValue};
pub use serial::{event_from_json, event_to_json, events_from_jsonl, events_to_jsonl};
pub use spacetime::{MessageLine, SpaceTime};
pub use tracer::Tracer;
