//! Trace analysis: per-lane statistics and machine-readable export.
//!
//! The paper reads its space-time diagrams qualitatively ("there is no
//! message sent to the migrating process", "other processes proceed
//! with their data exchanges normally"). These helpers turn such
//! readings into numbers: per-process activity summaries and a JSON
//! export for external tooling.

use crate::event::{Event, EventKind};
use crate::report::JsonValue;
use crate::spacetime::SpaceTime;

/// Aggregate activity of one process lane.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneStats {
    /// Total events recorded for this lane.
    pub events: usize,
    /// Data messages sent.
    pub sends: usize,
    /// Data messages received (returned to the application).
    pub recvs: usize,
    /// Payload bytes sent.
    pub bytes_sent: usize,
    /// Messages satisfied from the received-message-list.
    pub rml_hits: usize,
    /// Connection requests issued.
    pub conn_reqs: usize,
    /// Scheduler consultations performed.
    pub consults: usize,
    /// Timestamp of the lane's first event (ns).
    pub first_ns: u64,
    /// Timestamp of the lane's last event (ns).
    pub last_ns: u64,
}

impl LaneStats {
    /// Active span of the lane in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.last_ns.saturating_sub(self.first_ns)
    }
}

/// Compute per-lane statistics in first-appearance order.
pub fn lane_stats(st: &SpaceTime) -> Vec<(String, LaneStats)> {
    let mut out: Vec<(String, LaneStats)> = st
        .lanes()
        .iter()
        .map(|l| (l.clone(), LaneStats::default()))
        .collect();
    for ev in st.events() {
        let slot = out
            .iter_mut()
            .find(|(l, _)| l == &ev.who)
            .expect("lane exists");
        let s = &mut slot.1;
        if s.events == 0 {
            s.first_ns = ev.t_ns;
        }
        s.events += 1;
        s.last_ns = ev.t_ns;
        match &ev.kind {
            EventKind::Send { bytes, .. } => {
                s.sends += 1;
                s.bytes_sent += bytes;
            }
            EventKind::RecvDone { from_rml, .. } => {
                s.recvs += 1;
                if *from_rml {
                    s.rml_hits += 1;
                }
            }
            EventKind::ConnReq { .. } => s.conn_reqs += 1,
            EventKind::SchedulerConsult { .. } => s.consults += 1,
            _ => {}
        }
    }
    out
}

/// Export events as a JSON array (one object per event, `kind` as the
/// Rust debug rendering — stable enough for offline inspection).
pub fn events_to_json(events: &[Event]) -> JsonValue {
    JsonValue::Array(
        events
            .iter()
            .map(|e| {
                JsonValue::Object(vec![
                    ("t_ns".into(), JsonValue::Num(e.t_ns as f64)),
                    ("seq".into(), JsonValue::Num(e.seq as f64)),
                    ("who".into(), JsonValue::Str(e.who.clone())),
                    ("kind".into(), JsonValue::Str(format!("{:?}", e.kind))),
                ])
            })
            .collect(),
    )
}

/// Render lane statistics as an aligned text table.
pub fn lane_table(st: &SpaceTime) -> String {
    use std::fmt::Write as _;
    let stats = lane_stats(st);
    let w = stats.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>w$} {:>7} {:>7} {:>7} {:>10} {:>8} {:>8} {:>9}",
        "lane", "events", "sends", "recvs", "bytes", "rml", "consults", "span(ms)"
    );
    for (lane, s) in &stats {
        let _ = writeln!(
            out,
            "{lane:>w$} {:>7} {:>7} {:>7} {:>10} {:>8} {:>8} {:>9.3}",
            s.events,
            s.sends,
            s.recvs,
            s.bytes_sent,
            s.rml_hits,
            s.consults,
            s.span_ns() as f64 / 1e6
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgId;

    fn ev(t: u64, who: &str, kind: EventKind) -> Event {
        Event {
            t_ns: t,
            seq: t,
            who: who.into(),
            kind,
        }
    }

    fn sample() -> SpaceTime {
        SpaceTime::build(vec![
            ev(
                10,
                "p0",
                EventKind::Send {
                    to: 1,
                    tag: 1,
                    bytes: 100,
                    msg: MsgId(1),
                },
            ),
            ev(
                20,
                "p0",
                EventKind::Send {
                    to: 1,
                    tag: 1,
                    bytes: 50,
                    msg: MsgId(2),
                },
            ),
            ev(15, "p1", EventKind::SchedulerConsult { about: 0 }),
            ev(
                30,
                "p1",
                EventKind::RecvDone {
                    from: 0,
                    tag: 1,
                    bytes: 100,
                    msg: MsgId(1),
                    from_rml: true,
                },
            ),
        ])
    }

    #[test]
    fn lane_stats_aggregate() {
        let st = sample();
        let stats = lane_stats(&st);
        let p0 = &stats.iter().find(|(l, _)| l == "p0").unwrap().1;
        assert_eq!(p0.sends, 2);
        assert_eq!(p0.bytes_sent, 150);
        assert_eq!(p0.span_ns(), 10);
        let p1 = &stats.iter().find(|(l, _)| l == "p1").unwrap().1;
        assert_eq!(p1.recvs, 1);
        assert_eq!(p1.rml_hits, 1);
        assert_eq!(p1.consults, 1);
    }

    #[test]
    fn lane_table_renders() {
        let t = lane_table(&sample());
        assert!(t.contains("p0"));
        assert!(t.contains("150"));
    }

    #[test]
    fn json_export_shape() {
        let st = sample();
        let j = events_to_json(st.events()).to_string();
        assert!(j.starts_with('['));
        assert!(j.contains("\"who\":\"p0\""));
        assert!(j.contains("SchedulerConsult"));
    }

    #[test]
    fn empty_trace_is_fine() {
        let st = SpaceTime::build(vec![]);
        assert!(lane_stats(&st).is_empty());
        assert_eq!(events_to_json(st.events()).to_string(), "[]");
    }
}
