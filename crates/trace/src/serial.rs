//! Structured event (de)serialization.
//!
//! [`crate::analysis::events_to_json`] renders `kind` as a Rust debug
//! string — fine for eyeballing, useless for tooling. This module gives
//! every [`EventKind`] a typed JSON shape (`{"type": "Send", "to": 1,
//! ...}`) that round-trips exactly, so integration tests can dump their
//! traces as JSONL and `snow-bench audit` can replay them offline.

use crate::event::{Event, EventKind, MsgId};
use crate::report::JsonValue;

fn obj(ty: &str, fields: Vec<(String, JsonValue)>) -> JsonValue {
    let mut all = vec![("type".to_string(), JsonValue::Str(ty.to_string()))];
    all.extend(fields);
    JsonValue::Object(all)
}

fn num(n: impl Into<f64>) -> JsonValue {
    JsonValue::Num(n.into())
}

fn unum(n: usize) -> JsonValue {
    JsonValue::Num(n as f64)
}

/// Serialize one event kind to its typed JSON object.
pub fn kind_to_json(kind: &EventKind) -> JsonValue {
    use EventKind::*;
    match kind {
        Send {
            to,
            tag,
            bytes,
            msg,
        } => obj(
            "Send",
            vec![
                ("to".into(), unum(*to)),
                ("tag".into(), num(*tag)),
                ("bytes".into(), unum(*bytes)),
                ("msg".into(), num(msg.0 as f64)),
            ],
        ),
        RecvStart { from, tag } => obj(
            "RecvStart",
            vec![
                ("from".into(), from.map_or(JsonValue::Null, unum)),
                ("tag".into(), tag.map_or(JsonValue::Null, num)),
            ],
        ),
        RecvDone {
            from,
            tag,
            bytes,
            msg,
            from_rml,
        } => obj(
            "RecvDone",
            vec![
                ("from".into(), unum(*from)),
                ("tag".into(), num(*tag)),
                ("bytes".into(), unum(*bytes)),
                ("msg".into(), num(msg.0 as f64)),
                ("from_rml".into(), JsonValue::Bool(*from_rml)),
            ],
        ),
        RmlAppend { from, tag, msg } => obj(
            "RmlAppend",
            vec![
                ("from".into(), unum(*from)),
                ("tag".into(), num(*tag)),
                ("msg".into(), num(msg.0 as f64)),
            ],
        ),
        ConnReq { to } => obj("ConnReq", vec![("to".into(), unum(*to))]),
        ConnAck { from } => obj("ConnAck", vec![("from".into(), unum(*from))]),
        ConnNack { to } => obj("ConnNack", vec![("to".into(), unum(*to))]),
        SchedulerConsult { about } => obj("SchedulerConsult", vec![("about".into(), unum(*about))]),
        ChannelOpen { peer } => obj("ChannelOpen", vec![("peer".into(), unum(*peer))]),
        ChannelClose { peer } => obj("ChannelClose", vec![("peer".into(), unum(*peer))]),
        MigrationStart { rank } => obj("MigrationStart", vec![("rank".into(), unum(*rank))]),
        PeerMigratingSent { peer } => obj("PeerMigratingSent", vec![("peer".into(), unum(*peer))]),
        PeerMigratingSeen { peer } => obj("PeerMigratingSeen", vec![("peer".into(), unum(*peer))]),
        EndOfMessages { peer } => obj("EndOfMessages", vec![("peer".into(), unum(*peer))]),
        RmlForwarded { count, bytes } => obj(
            "RmlForwarded",
            vec![
                ("count".into(), unum(*count)),
                ("bytes".into(), unum(*bytes)),
            ],
        ),
        StateChunkSent { seq, bytes } => obj(
            "StateChunkSent",
            vec![("seq".into(), num(*seq)), ("bytes".into(), unum(*bytes))],
        ),
        StateChunkRestored { seq, bytes } => obj(
            "StateChunkRestored",
            vec![("seq".into(), num(*seq)), ("bytes".into(), unum(*bytes))],
        ),
        StateCollected { bytes } => obj("StateCollected", vec![("bytes".into(), unum(*bytes))]),
        StateTransmitted { bytes } => obj("StateTransmitted", vec![("bytes".into(), unum(*bytes))]),
        StateRestored { bytes } => obj("StateRestored", vec![("bytes".into(), unum(*bytes))]),
        MigrationCommit { rank } => obj("MigrationCommit", vec![("rank".into(), unum(*rank))]),
        MigrationAborted { rank, attempt } => obj(
            "MigrationAborted",
            vec![
                ("rank".into(), unum(*rank)),
                ("attempt".into(), num(*attempt)),
            ],
        ),
        MigrationRetried { attempt } => {
            obj("MigrationRetried", vec![("attempt".into(), num(*attempt))])
        }
        MigrationAbortSeen { peer } => {
            obj("MigrationAbortSeen", vec![("peer".into(), unum(*peer))])
        }
        StateRestoreAborted { chunks, bytes } => obj(
            "StateRestoreAborted",
            vec![
                ("chunks".into(), num(*chunks)),
                ("bytes".into(), unum(*bytes)),
            ],
        ),
        FaultDelay { extra_ns } => obj(
            "FaultDelay",
            vec![("extra_ns".into(), num(*extra_ns as f64))],
        ),
        FaultReset => obj("FaultReset", vec![]),
        FaultDropped { what } => obj(
            "FaultDropped",
            vec![("what".into(), JsonValue::Str(what.clone()))],
        ),
        FaultDuplicated { what } => obj(
            "FaultDuplicated",
            vec![("what".into(), JsonValue::Str(what.clone()))],
        ),
        SignalDelivered { signal } => obj(
            "SignalDelivered",
            vec![("signal".into(), JsonValue::Str((*signal).to_string()))],
        ),
        Compute { work } => obj("Compute", vec![("work".into(), num(*work as f64))]),
        Phase { label } => obj(
            "Phase",
            vec![("label".into(), JsonValue::Str(label.clone()))],
        ),
    }
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn get_u32(v: &JsonValue, key: &str) -> Result<u32, String> {
    Ok(get_usize(v, key)? as u32)
}

fn get_i32(v: &JsonValue, key: &str) -> Result<i32, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .map(|n| n as i32)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn get_msg(v: &JsonValue, key: &str) -> Result<MsgId, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .map(MsgId)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

/// Deserialize one event kind from its typed JSON object.
pub fn kind_from_json(v: &JsonValue) -> Result<EventKind, String> {
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("kind object missing 'type'")?;
    let kind = match ty {
        "Send" => EventKind::Send {
            to: get_usize(v, "to")?,
            tag: get_i32(v, "tag")?,
            bytes: get_usize(v, "bytes")?,
            msg: get_msg(v, "msg")?,
        },
        "RecvStart" => EventKind::RecvStart {
            from: match v.get("from") {
                Some(JsonValue::Null) | None => None,
                Some(n) => Some(n.as_u64().ok_or("bad 'from'")? as usize),
            },
            tag: match v.get("tag") {
                Some(JsonValue::Null) | None => None,
                Some(n) => Some(n.as_f64().ok_or("bad 'tag'")? as i32),
            },
        },
        "RecvDone" => EventKind::RecvDone {
            from: get_usize(v, "from")?,
            tag: get_i32(v, "tag")?,
            bytes: get_usize(v, "bytes")?,
            msg: get_msg(v, "msg")?,
            from_rml: v
                .get("from_rml")
                .and_then(JsonValue::as_bool)
                .ok_or("missing 'from_rml'")?,
        },
        "RmlAppend" => EventKind::RmlAppend {
            from: get_usize(v, "from")?,
            tag: get_i32(v, "tag")?,
            msg: get_msg(v, "msg")?,
        },
        "ConnReq" => EventKind::ConnReq {
            to: get_usize(v, "to")?,
        },
        "ConnAck" => EventKind::ConnAck {
            from: get_usize(v, "from")?,
        },
        "ConnNack" => EventKind::ConnNack {
            to: get_usize(v, "to")?,
        },
        "SchedulerConsult" => EventKind::SchedulerConsult {
            about: get_usize(v, "about")?,
        },
        "ChannelOpen" => EventKind::ChannelOpen {
            peer: get_usize(v, "peer")?,
        },
        "ChannelClose" => EventKind::ChannelClose {
            peer: get_usize(v, "peer")?,
        },
        "MigrationStart" => EventKind::MigrationStart {
            rank: get_usize(v, "rank")?,
        },
        "PeerMigratingSent" => EventKind::PeerMigratingSent {
            peer: get_usize(v, "peer")?,
        },
        "PeerMigratingSeen" => EventKind::PeerMigratingSeen {
            peer: get_usize(v, "peer")?,
        },
        "EndOfMessages" => EventKind::EndOfMessages {
            peer: get_usize(v, "peer")?,
        },
        "RmlForwarded" => EventKind::RmlForwarded {
            count: get_usize(v, "count")?,
            bytes: get_usize(v, "bytes")?,
        },
        "StateChunkSent" => EventKind::StateChunkSent {
            seq: get_u32(v, "seq")?,
            bytes: get_usize(v, "bytes")?,
        },
        "StateChunkRestored" => EventKind::StateChunkRestored {
            seq: get_u32(v, "seq")?,
            bytes: get_usize(v, "bytes")?,
        },
        "StateCollected" => EventKind::StateCollected {
            bytes: get_usize(v, "bytes")?,
        },
        "StateTransmitted" => EventKind::StateTransmitted {
            bytes: get_usize(v, "bytes")?,
        },
        "StateRestored" => EventKind::StateRestored {
            bytes: get_usize(v, "bytes")?,
        },
        "MigrationCommit" => EventKind::MigrationCommit {
            rank: get_usize(v, "rank")?,
        },
        "MigrationAborted" => EventKind::MigrationAborted {
            rank: get_usize(v, "rank")?,
            attempt: get_u32(v, "attempt")?,
        },
        "MigrationRetried" => EventKind::MigrationRetried {
            attempt: get_u32(v, "attempt")?,
        },
        "MigrationAbortSeen" => EventKind::MigrationAbortSeen {
            peer: get_usize(v, "peer")?,
        },
        "StateRestoreAborted" => EventKind::StateRestoreAborted {
            chunks: get_u32(v, "chunks")?,
            bytes: get_usize(v, "bytes")?,
        },
        "FaultDelay" => EventKind::FaultDelay {
            extra_ns: v
                .get("extra_ns")
                .and_then(JsonValue::as_u64)
                .ok_or("missing 'extra_ns'")?,
        },
        "FaultReset" => EventKind::FaultReset,
        "FaultDropped" => EventKind::FaultDropped {
            what: v
                .get("what")
                .and_then(JsonValue::as_str)
                .ok_or("missing 'what'")?
                .to_string(),
        },
        "FaultDuplicated" => EventKind::FaultDuplicated {
            what: v
                .get("what")
                .and_then(JsonValue::as_str)
                .ok_or("missing 'what'")?
                .to_string(),
        },
        "SignalDelivered" => {
            let name = v
                .get("signal")
                .and_then(JsonValue::as_str)
                .ok_or("missing 'signal'")?;
            // The in-memory variant carries a &'static str; map the known
            // names and fall back to a leaked-free placeholder.
            let signal = match name {
                "SIGMIGRATE" => "SIGMIGRATE",
                "SIGDISCONNECT" => "SIGDISCONNECT",
                _ => "SIGUNKNOWN",
            };
            EventKind::SignalDelivered { signal }
        }
        "Compute" => EventKind::Compute {
            work: v
                .get("work")
                .and_then(JsonValue::as_u64)
                .ok_or("missing 'work'")?,
        },
        "Phase" => EventKind::Phase {
            label: v
                .get("label")
                .and_then(JsonValue::as_str)
                .ok_or("missing 'label'")?
                .to_string(),
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(kind)
}

/// Serialize one event (typed, round-trippable).
pub fn event_to_json(e: &Event) -> JsonValue {
    JsonValue::Object(vec![
        ("t_ns".into(), JsonValue::Num(e.t_ns as f64)),
        ("seq".into(), JsonValue::Num(e.seq as f64)),
        ("who".into(), JsonValue::Str(e.who.clone())),
        ("kind".into(), kind_to_json(&e.kind)),
    ])
}

/// Deserialize one event.
pub fn event_from_json(v: &JsonValue) -> Result<Event, String> {
    Ok(Event {
        t_ns: v
            .get("t_ns")
            .and_then(JsonValue::as_u64)
            .ok_or("missing 't_ns'")?,
        seq: v
            .get("seq")
            .and_then(JsonValue::as_u64)
            .ok_or("missing 'seq'")?,
        who: v
            .get("who")
            .and_then(JsonValue::as_str)
            .ok_or("missing 'who'")?
            .to_string(),
        kind: kind_from_json(v.get("kind").ok_or("missing 'kind'")?)?,
    })
}

/// Serialize a snapshot as JSONL: one event object per line, in order.
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e).to_string());
        out.push('\n');
    }
    out
}

/// Parse a JSONL event log (blank lines skipped). Errors carry the
/// 1-based line number.
pub fn events_from_jsonl(s: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(event_from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        use EventKind::*;
        vec![
            Send {
                to: 1,
                tag: -1,
                bytes: 64,
                msg: MsgId(9),
            },
            RecvStart {
                from: Some(2),
                tag: None,
            },
            RecvStart {
                from: None,
                tag: Some(5),
            },
            RecvDone {
                from: 2,
                tag: 5,
                bytes: 8,
                msg: MsgId(10),
                from_rml: true,
            },
            RmlAppend {
                from: 2,
                tag: 5,
                msg: MsgId(11),
            },
            ConnReq { to: 3 },
            ConnAck { from: 3 },
            ConnNack { to: 3 },
            SchedulerConsult { about: 0 },
            ChannelOpen { peer: 1 },
            ChannelClose { peer: 1 },
            MigrationStart { rank: 4 },
            PeerMigratingSent { peer: 0 },
            PeerMigratingSeen { peer: 4 },
            EndOfMessages { peer: 4 },
            RmlForwarded {
                count: 3,
                bytes: 300,
            },
            StateChunkSent {
                seq: 0,
                bytes: 4096,
            },
            StateChunkRestored {
                seq: 0,
                bytes: 4096,
            },
            StateCollected { bytes: 8192 },
            StateTransmitted { bytes: 8192 },
            StateRestored { bytes: 8192 },
            MigrationCommit { rank: 4 },
            MigrationAborted {
                rank: 4,
                attempt: 2,
            },
            MigrationRetried { attempt: 2 },
            MigrationAbortSeen { peer: 4 },
            StateRestoreAborted {
                chunks: 1,
                bytes: 4096,
            },
            FaultDelay { extra_ns: 2_500 },
            FaultReset,
            FaultDropped {
                what: "conn_req".into(),
            },
            FaultDuplicated {
                what: "conn_reply".into(),
            },
            SignalDelivered {
                signal: "SIGMIGRATE",
            },
            Compute { work: 1000 },
            Phase {
                label: "iter \"2\" done".into(),
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips() {
        for kind in all_kinds() {
            let j = kind_to_json(&kind);
            let back = kind_from_json(&j).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn jsonl_roundtrips_a_log() {
        let events: Vec<Event> = all_kinds()
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                t_ns: 100 * i as u64,
                seq: i as u64,
                who: format!("p{}", i % 3),
                kind,
            })
            .collect();
        let text = events_to_jsonl(&events);
        let back = events_from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_reports_bad_line() {
        let err = events_from_jsonl("{\"t_ns\":1}\nnot json\n").unwrap_err();
        assert!(err.contains("line 1") || err.contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let v = JsonValue::parse(r#"{"type":"Teleport"}"#).unwrap();
        assert!(kind_from_json(&v).unwrap_err().contains("Teleport"));
    }
}
