//! The scheduler process: lookup service + migration choreography.

use crate::directory::{CentralTable, Directory, PlEntry};
use crate::records::{MigrationPhase, MigrationRecord, RecordStore};
use snow_trace::EventKind;
use snow_vm::wire::{Ctrl, ExeStatus, Incoming, SchedReply, SchedRequest};
use snow_vm::{HostId, PostSender, ProcessCell, Rank, Signal, VirtualMachine, Vmid};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The migration-enabled executable image (§2.2): what the scheduler
/// remotely invokes on a destination host to create an *initialized
/// process* awaiting state transfer. The closure receives the fresh
/// [`ProcessCell`] and the migrating rank; it is expected to run the
/// `initialize()` protocol and then resume the application.
pub type ProcessImage = Arc<dyn Fn(ProcessCell, Rank) + Send + Sync>;

/// Handle returned by [`spawn_scheduler`].
pub struct SchedulerHandle {
    /// The scheduler's own vmid (install with `vm.set_scheduler` is done
    /// automatically).
    pub vmid: Vmid,
    records: RecordStore,
    init_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    join: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Bookkeeping records collected so far.
    pub fn records(&self) -> Vec<MigrationRecord> {
        self.records.all()
    }

    /// Take the join handles of initialized processes spawned so far.
    /// Joining them waits for resumed applications to finish — harness
    /// code should do this after joining the original rank threads.
    pub fn take_init_joins(&self) -> Vec<JoinHandle<()>> {
        std::mem::take(&mut *self.init_joins.lock())
    }

    /// Wait for the scheduler thread to stop (after a
    /// [`SchedRequest::Shutdown`]).
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

struct InFlight {
    record: usize,
    old_vmid: Vmid,
    new_vmid: Vmid,
    requester: Option<PostSender<Incoming>>,
}

struct SchedState {
    dir: Box<dyn Directory>,
    records: RecordStore,
    in_flight: HashMap<Rank, InFlight>,
    vm: VirtualMachine,
    image: ProcessImage,
    init_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
}

impl SchedState {
    fn reply(&self, to: &PostSender<Incoming>, reply: SchedReply) {
        let _ = to.send(
            Incoming::Ctrl(Ctrl::Sched(reply)),
            snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
        );
    }

    fn handle(&mut self, cell: &ProcessCell, req: SchedRequest) -> bool {
        match req {
            SchedRequest::Register { rank, vmid } => {
                self.dir.insert(
                    rank,
                    PlEntry {
                        vmid,
                        status: ExeStatus::Running,
                    },
                );
            }
            SchedRequest::Lookup { about, reply } => {
                cell.trace(EventKind::SchedulerConsult { about });
                let (status, vmid) = match self.dir.lookup(about) {
                    Some(e) => (
                        e.status,
                        if e.status == ExeStatus::Terminated {
                            None
                        } else {
                            Some(e.vmid)
                        },
                    ),
                    None => (ExeStatus::Terminated, None),
                };
                self.reply(
                    &reply,
                    SchedReply::Location {
                        about,
                        status,
                        vmid,
                    },
                );
            }
            SchedRequest::Migrate {
                rank,
                to_host,
                reply,
            } => self.start_migration(cell, rank, to_host, reply),
            SchedRequest::MigrationStart { rank, reply } => {
                match self.in_flight.get(&rank) {
                    Some(mig) => {
                        self.records.stamp(mig.record, MigrationPhase::Started);
                        let new_vmid = mig.new_vmid;
                        // Only NOW may lookups redirect: the migrating
                        // process is about to reject connections, so
                        // nacked senders consulting us must find the
                        // initialized process. Redirecting any earlier
                        // can deadlock a process that is blocked in
                        // recv and has not yet intercepted the signal
                        // (found by the snow-model schedule explorer).
                        self.dir.insert(
                            rank,
                            PlEntry {
                                vmid: new_vmid,
                                status: ExeStatus::Migrated,
                            },
                        );
                        self.reply(&reply, SchedReply::NewVmid { new_vmid });
                    }
                    None => self.reply(
                        &reply,
                        SchedReply::Error {
                            reason: format!("rank {rank} has no migration in flight"),
                        },
                    ),
                }
            }
            SchedRequest::RestoreComplete {
                rank,
                new_vmid,
                reply,
            } => match self.in_flight.get(&rank) {
                Some(mig) => {
                    debug_assert_eq!(mig.new_vmid, new_vmid);
                    self.records.stamp(mig.record, MigrationPhase::Restored);
                    let entries = self
                        .dir
                        .entries()
                        .into_iter()
                        .map(|(r, e)| (r, e.vmid))
                        .collect();
                    let old_vmid = mig.old_vmid;
                    self.reply(&reply, SchedReply::PlTable { entries, old_vmid });
                }
                None => self.reply(
                    &reply,
                    SchedReply::Error {
                        reason: format!("rank {rank}: restore without migration"),
                    },
                ),
            },
            SchedRequest::MigrationCommit { rank } => {
                if let Some(mig) = self.in_flight.remove(&rank) {
                    self.records.stamp(mig.record, MigrationPhase::Committed);
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: mig.new_vmid,
                            status: ExeStatus::Running,
                        },
                    );
                    cell.trace(EventKind::MigrationCommit);
                    if let Some(requester) = mig.requester {
                        self.reply(
                            &requester,
                            SchedReply::MigrationDone {
                                rank,
                                new_vmid: mig.new_vmid,
                            },
                        );
                    }
                }
            }
            SchedRequest::Terminated { rank } => {
                if let Some(e) = self.dir.lookup(rank) {
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: e.vmid,
                            status: ExeStatus::Terminated,
                        },
                    );
                }
            }
            SchedRequest::Shutdown => return false,
        }
        true
    }

    fn start_migration(
        &mut self,
        cell: &ProcessCell,
        rank: Rank,
        to_host: HostId,
        reply: PostSender<Incoming>,
    ) {
        let entry = match self.dir.lookup(rank) {
            Some(e) if e.status == ExeStatus::Running => e,
            Some(e) => {
                return self.reply(
                    &reply,
                    SchedReply::Error {
                        reason: format!("rank {rank} not running ({:?})", e.status),
                    },
                )
            }
            None => {
                return self.reply(
                    &reply,
                    SchedReply::Error {
                        reason: format!("unknown rank {rank}"),
                    },
                )
            }
        };
        if self.in_flight.contains_key(&rank) {
            return self.reply(
                &reply,
                SchedReply::Error {
                    reason: format!("rank {rank} already migrating"),
                },
            );
        }
        // Process initialization (§2.2): remotely invoke the
        // migration-enabled executable on the destination and let it wait
        // for state transfer.
        let image = Arc::clone(&self.image);
        let spawned = self
            .vm
            .spawn(to_host, &format!("init:{rank}"), move |init_cell| {
                image(init_cell, rank)
            });
        let Some((new_vmid, init_join)) = spawned else {
            return self.reply(
                &reply,
                SchedReply::Error {
                    reason: format!("host {to_host} is not a member"),
                },
            );
        };
        self.init_joins.lock().push(init_join);
        // NOTE: the PL table is NOT updated yet — lookups keep naming
        // the (still accepting) old process until it announces
        // migration_start. See the MigrationStart handler.
        let record = self.records.open(rank, entry.vmid, new_vmid);
        self.in_flight.insert(
            rank,
            InFlight {
                record,
                old_vmid: entry.vmid,
                new_vmid,
                requester: Some(reply.clone()),
            },
        );
        // Send the migration signal (SIGUSR1 in the prototype).
        if !cell.send_signal(entry.vmid, Signal::Migrate) {
            // The process vanished between lookup and signal.
            self.in_flight.remove(&rank);
            self.dir.insert(
                rank,
                PlEntry {
                    vmid: entry.vmid,
                    status: ExeStatus::Terminated,
                },
            );
            self.reply(
                &reply,
                SchedReply::Error {
                    reason: format!("rank {rank} terminated before migration"),
                },
            );
        }
    }
}

/// Spawn the scheduler on `host` and install it in the environment,
/// using the default centralized PL table.
pub fn spawn_scheduler(vm: &VirtualMachine, host: HostId, image: ProcessImage) -> SchedulerHandle {
    spawn_scheduler_with_directory(vm, host, image, Box::new(CentralTable::new()))
}

/// Spawn the scheduler with a custom [`Directory`] backend (§2: any
/// lookup service meeting the requirements works — centralized,
/// hierarchical, or peer-to-peer).
pub fn spawn_scheduler_with_directory(
    vm: &VirtualMachine,
    host: HostId,
    image: ProcessImage,
    dir: Box<dyn Directory>,
) -> SchedulerHandle {
    let records = RecordStore::new();
    let init_joins = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut state = SchedState {
        dir,
        records: records.clone(),
        in_flight: HashMap::new(),
        vm: vm.clone(),
        image,
        init_joins: Arc::clone(&init_joins),
    };
    let (vmid, join) = vm
        .spawn(host, "scheduler", move |cell| loop {
            match cell.recv_incoming() {
                Ok(Incoming::Ctrl(Ctrl::SchedRequest(req))) => {
                    if !state.handle(&cell, req) {
                        return;
                    }
                }
                Ok(Incoming::Ctrl(Ctrl::ConnReq(req))) => {
                    // Nobody establishes data connections with the
                    // scheduler; reject through the daemon so its pending
                    // record is cleaned up.
                    let target = req.target;
                    let req_id = req.req_id;
                    cell.answer_conn_req(req_id, Ctrl::ConnNack { req_id, target });
                }
                Ok(_) => {}
                Err(_) => return,
            }
        })
        .expect("scheduler host must be a member");
    vm.set_scheduler(vmid);
    SchedulerHandle {
        vmid,
        records,
        init_joins,
        join: Some(join),
    }
}

/// A no-op image for environments that never migrate (pure messaging
/// tests) — the initialized process exits immediately.
pub fn null_image() -> ProcessImage {
    Arc::new(|_cell, _rank| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SchedClient;
    use snow_vm::HostSpec;

    #[test]
    fn lookup_roundtrip() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let v = Vmid { host: h, pid: 77 };
        client.register(3, v).unwrap();
        let (status, vmid) = client.lookup(3).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(v));
        // Unknown rank → Terminated/None.
        let (status, vmid) = client.lookup(9).unwrap();
        assert_eq!(status, ExeStatus::Terminated);
        assert_eq!(vmid, None);
    }

    #[test]
    fn terminated_rank_reported() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        client.register(0, Vmid { host: h, pid: 1 }).unwrap();
        client.terminated(0).unwrap();
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Terminated);
        assert_eq!(vmid, None);
    }

    #[test]
    fn migrate_unknown_rank_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let err = client.migrate(42, h).unwrap_err();
        assert!(err.contains("unknown rank"), "{err}");
    }

    #[test]
    fn migrate_to_unknown_host_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        // Register a rank backed by a real blocked process so the signal
        // could be delivered if we got that far.
        let (pv, _join) = vm
            .spawn(h, "p0", |cell| {
                let _ = cell.wait_signal(std::time::Duration::from_millis(500));
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, HostId(99)).unwrap_err();
        assert!(err.contains("not a member"), "{err}");
    }

    #[test]
    fn migrate_dead_process_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let (pv, join) = vm.spawn(h, "p0", |_cell| {}).unwrap();
        join.join().unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h).unwrap_err();
        assert!(err.contains("terminated before migration"), "{err}");
    }

    #[test]
    fn full_choreography_with_stub_processes() {
        // Drive the four-step dance by hand (no snow-core yet): the
        // "migrating process" and the image both speak the scheduler
        // protocol directly.
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());

        // The image plays the initialized process: restore-complete then
        // commit.
        let image: ProcessImage = Arc::new(move |cell: ProcessCell, rank: Rank| {
            cell.sched_send(SchedRequest::RestoreComplete {
                rank,
                new_vmid: cell.vmid(),
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::PlTable { entries, old_vmid })) => {
                    assert!(!entries.is_empty());
                    assert_ne!(old_vmid, cell.vmid());
                }
                other => panic!("expected PL table, got {other:?}"),
            }
            cell.sched_send(SchedRequest::MigrationCommit { rank })
                .unwrap();
        });
        let sched = spawn_scheduler(&vm, h0, image);
        let client = SchedClient::new(&vm);

        // The migrating process: wait for the signal, announce start.
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                let sig = cell.wait_signal(std::time::Duration::from_secs(5));
                assert_eq!(sig, Some(Signal::Migrate));
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { new_vmid })) => {
                        assert_eq!(new_vmid.host, h1);
                    }
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                // Migrating process terminates (Fig 5 line 11).
            })
            .unwrap();
        client.register(0, pv).unwrap();

        let new_vmid = client.migrate(0, h1).unwrap();
        assert_eq!(new_vmid.host, h1);
        pjoin.join().unwrap();

        // Post-commit lookup points at the new location, Running.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(new_vmid));

        // Bookkeeping has all four phases.
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].reached(MigrationPhase::Committed));
        assert!(recs[0].total_seconds().unwrap() >= 0.0);
    }

    #[test]
    fn second_migration_of_same_rank_while_in_flight_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        // A process that ignores the signal, keeping the migration
        // in flight.
        let (pv, _join) = vm
            .spawn(h, "p0", |cell| {
                std::thread::sleep(std::time::Duration::from_millis(300));
                let _ = cell.poll_signal();
            })
            .unwrap();
        client.register(0, pv).unwrap();
        client.migrate_async(0, h).unwrap();
        // Give the scheduler a beat to open the in-flight entry.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let err = client.migrate(0, h).unwrap_err();
        assert!(
            err.contains("migrating") || err.contains("not running"),
            "{err}"
        );
    }
}
