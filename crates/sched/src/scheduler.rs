//! The scheduler process: lookup service + migration choreography.

use crate::directory::{CentralTable, Directory, PlEntry};
use crate::records::{MigrationPhase, MigrationRecord, RecordStore};
use snow_trace::{metrics::SchedulerRuling, EventKind};
use snow_vm::wire::{Ctrl, ExeStatus, Incoming, SchedReply, SchedRequest};
use snow_vm::{HostId, PostSender, ProcessCell, Rank, Signal, VirtualMachine, Vmid};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The migration-enabled executable image (§2.2): what the scheduler
/// remotely invokes on a destination host to create an *initialized
/// process* awaiting state transfer. The closure receives the fresh
/// [`ProcessCell`] and the migrating rank; it is expected to run the
/// `initialize()` protocol and then resume the application.
pub type ProcessImage = Arc<dyn Fn(ProcessCell, Rank) + Send + Sync>;

/// How the scheduler re-targets a failed migration before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transfer attempts allowed (1 = no retries).
    pub max_attempts: u32,
    /// Source-side pause before each retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
        }
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Re-target failed migrations at alternate live hosts before
    /// abandoning them. `None` aborts on the first failure.
    pub retry: Option<RetryPolicy>,
    /// How long one transfer attempt may stay in flight before the
    /// scheduler reaps it server-side. Generous by default so slow
    /// modeled transfers are never cut short; `None` disables the sweep.
    pub deadline: Option<Duration>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            retry: None,
            deadline: Some(Duration::from_secs(300)),
        }
    }
}

/// Handle returned by [`spawn_scheduler`].
pub struct SchedulerHandle {
    /// The scheduler's own vmid (install with `vm.set_scheduler` is done
    /// automatically).
    pub vmid: Vmid,
    records: RecordStore,
    init_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    join: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Bookkeeping records collected so far.
    pub fn records(&self) -> Vec<MigrationRecord> {
        self.records.all()
    }

    /// Take the join handles of initialized processes spawned so far.
    /// Joining them waits for resumed applications to finish — harness
    /// code should do this after joining the original rank threads.
    pub fn take_init_joins(&self) -> Vec<JoinHandle<()>> {
        std::mem::take(&mut *self.init_joins.lock())
    }

    /// Wait for the scheduler thread to stop (after a
    /// [`SchedRequest::Shutdown`]).
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

struct InFlight {
    record: usize,
    old_vmid: Vmid,
    new_vmid: Vmid,
    requester: Option<PostSender<Incoming>>,
    attempts: u32,
    deadline: Option<Instant>,
    failed_hosts: Vec<HostId>,
}

struct SchedState {
    dir: Box<dyn Directory>,
    records: RecordStore,
    in_flight: HashMap<Rank, InFlight>,
    vm: VirtualMachine,
    image: ProcessImage,
    init_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    config: SchedulerConfig,
}

impl SchedState {
    fn reply(&self, to: &PostSender<Incoming>, reply: SchedReply) {
        let _ = to.send(
            Incoming::Ctrl(Ctrl::Sched(reply)),
            snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
        );
    }

    fn handle(&mut self, cell: &ProcessCell, req: SchedRequest) -> bool {
        match req {
            SchedRequest::Register { rank, vmid } => {
                self.dir.insert(
                    rank,
                    PlEntry {
                        vmid,
                        status: ExeStatus::Running,
                    },
                );
            }
            SchedRequest::Lookup { about, reply } => {
                cell.trace(EventKind::SchedulerConsult { about });
                let (status, vmid) = match self.dir.lookup(about) {
                    Some(e) => (
                        e.status,
                        if e.status == ExeStatus::Terminated {
                            None
                        } else {
                            Some(e.vmid)
                        },
                    ),
                    None => (ExeStatus::Terminated, None),
                };
                self.reply(
                    &reply,
                    SchedReply::Location {
                        about,
                        status,
                        vmid,
                    },
                );
            }
            SchedRequest::Migrate {
                rank,
                to_host,
                reply,
            } => self.start_migration(cell, rank, to_host, reply),
            SchedRequest::MigrationStart { rank, reply } => {
                match self.in_flight.get(&rank) {
                    Some(mig) => {
                        self.records.stamp(mig.record, MigrationPhase::Started);
                        let new_vmid = mig.new_vmid;
                        // Only NOW may lookups redirect: the migrating
                        // process is about to reject connections, so
                        // nacked senders consulting us must find the
                        // initialized process. Redirecting any earlier
                        // can deadlock a process that is blocked in
                        // recv and has not yet intercepted the signal
                        // (found by the snow-model schedule explorer).
                        self.dir.insert(
                            rank,
                            PlEntry {
                                vmid: new_vmid,
                                status: ExeStatus::Migrated,
                            },
                        );
                        self.reply(&reply, SchedReply::NewVmid { new_vmid });
                    }
                    None => self.reply(
                        &reply,
                        SchedReply::Error {
                            reason: format!("rank {rank} has no migration in flight"),
                        },
                    ),
                }
            }
            SchedRequest::RestoreComplete {
                rank,
                new_vmid,
                reply,
            } => match self.in_flight.get(&rank) {
                Some(mig) => {
                    debug_assert_eq!(mig.new_vmid, new_vmid);
                    self.records.stamp(mig.record, MigrationPhase::Restored);
                    let entries = self
                        .dir
                        .entries()
                        .into_iter()
                        .map(|(r, e)| (r, e.vmid))
                        .collect();
                    let old_vmid = mig.old_vmid;
                    self.reply(&reply, SchedReply::PlTable { entries, old_vmid });
                }
                None => self.reply(
                    &reply,
                    SchedReply::Error {
                        reason: format!("rank {rank}: restore without migration"),
                    },
                ),
            },
            SchedRequest::MigrationCommit { rank } => {
                if let Some(mig) = self.in_flight.remove(&rank) {
                    self.records.stamp(mig.record, MigrationPhase::Committed);
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: mig.new_vmid,
                            status: ExeStatus::Running,
                        },
                    );
                    cell.trace(EventKind::MigrationCommit { rank });
                    record_ruling(cell, rank, "commit", mig.attempts, None);
                    if let Some(requester) = mig.requester {
                        self.reply(
                            &requester,
                            SchedReply::MigrationDone {
                                rank,
                                new_vmid: mig.new_vmid,
                            },
                        );
                    }
                }
            }
            SchedRequest::MigrationAbort {
                rank,
                reason,
                reply,
            } => match self.in_flight.remove(&rank) {
                Some(mig) => self.abort_or_retry(cell, rank, mig, &reason, Some(&reply)),
                None => {
                    // Either the destination committed before the abort
                    // request arrived (the migration actually succeeded)
                    // or the deadline sweep already reaped it.
                    let committed = self
                        .records
                        .last_for(rank)
                        .map(|r| r.reached(MigrationPhase::Committed))
                        .unwrap_or(false);
                    if committed {
                        self.reply(&reply, SchedReply::MigrationAbortDenied { rank });
                    } else {
                        self.reply(&reply, SchedReply::MigrationAborted { rank });
                    }
                }
            },
            SchedRequest::Terminated { rank } => {
                if let Some(e) = self.dir.lookup(rank) {
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: e.vmid,
                            status: ExeStatus::Terminated,
                        },
                    );
                }
            }
            SchedRequest::Shutdown => return false,
        }
        true
    }

    fn start_migration(
        &mut self,
        cell: &ProcessCell,
        rank: Rank,
        to_host: HostId,
        reply: PostSender<Incoming>,
    ) {
        let entry = match self.dir.lookup(rank) {
            Some(e) if e.status == ExeStatus::Running => e,
            Some(e) => {
                return self.reply(
                    &reply,
                    SchedReply::MigrationFailed {
                        rank,
                        reason: format!("rank {rank} not running ({:?})", e.status),
                    },
                )
            }
            None => {
                return self.reply(
                    &reply,
                    SchedReply::MigrationFailed {
                        rank,
                        reason: format!("unknown rank {rank}"),
                    },
                )
            }
        };
        if self.in_flight.contains_key(&rank) {
            return self.reply(
                &reply,
                SchedReply::MigrationFailed {
                    rank,
                    reason: format!("rank {rank} already migrating"),
                },
            );
        }
        // Process initialization (§2.2): remotely invoke the
        // migration-enabled executable on the destination and let it wait
        // for state transfer.
        let image = Arc::clone(&self.image);
        let spawned = self
            .vm
            .spawn(to_host, &format!("init:{rank}"), move |init_cell| {
                image(init_cell, rank)
            });
        let Some((new_vmid, init_join)) = spawned else {
            return self.reply(
                &reply,
                SchedReply::MigrationFailed {
                    rank,
                    reason: format!("host {to_host} is not a member"),
                },
            );
        };
        self.init_joins.lock().push(init_join);
        // NOTE: the PL table is NOT updated yet — lookups keep naming
        // the (still accepting) old process until it announces
        // migration_start. See the MigrationStart handler.
        let record = self.records.open(rank, entry.vmid, new_vmid);
        self.in_flight.insert(
            rank,
            InFlight {
                record,
                old_vmid: entry.vmid,
                new_vmid,
                requester: Some(reply.clone()),
                attempts: 1,
                deadline: self.config.deadline.map(|d| Instant::now() + d),
                failed_hosts: Vec::new(),
            },
        );
        // Send the migration signal (SIGUSR1 in the prototype).
        if !cell.send_signal(entry.vmid, Signal::Migrate) {
            // The process vanished between lookup and signal.
            self.in_flight.remove(&rank);
            self.dir.insert(
                rank,
                PlEntry {
                    vmid: entry.vmid,
                    status: ExeStatus::Terminated,
                },
            );
            self.reply(
                &reply,
                SchedReply::MigrationFailed {
                    rank,
                    reason: format!("rank {rank} terminated before migration"),
                },
            );
        }
    }

    /// A transfer attempt failed (source-reported or deadline-swept).
    /// Reap the half-initialized destination, then either re-target the
    /// migration under the retry policy or abandon it: roll the
    /// directory back to the still-running source and tell everyone.
    fn abort_or_retry(
        &mut self,
        cell: &ProcessCell,
        rank: Rank,
        mut mig: InFlight,
        reason: &str,
        source: Option<&PostSender<Incoming>>,
    ) {
        self.reap_init(rank, mig.new_vmid);
        mig.failed_hosts.push(mig.new_vmid.host);
        if let Some(policy) = self.config.retry.clone() {
            if mig.attempts < policy.max_attempts {
                if let Some(new_vmid) = self.respawn_init(rank, &mig) {
                    let attempt = mig.attempts + 1;
                    self.records.retarget(mig.record, new_vmid);
                    self.records.stamp(mig.record, MigrationPhase::Retried);
                    // The source is still rejecting connections, so
                    // lookups must keep redirecting — now at the
                    // replacement destination.
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: new_vmid,
                            status: ExeStatus::Migrated,
                        },
                    );
                    mig.new_vmid = new_vmid;
                    mig.attempts = attempt;
                    mig.deadline = self.config.deadline.map(|d| Instant::now() + d);
                    cell.trace(EventKind::MigrationRetried { attempt });
                    record_ruling(cell, rank, "retry", attempt, Some(reason));
                    if let Some(src) = source {
                        self.reply(
                            src,
                            SchedReply::MigrationRetry {
                                new_vmid,
                                attempt,
                                backoff_ms: policy.backoff.as_millis() as u64,
                            },
                        );
                    }
                    self.in_flight.insert(rank, mig);
                    return;
                }
            }
        }
        // Final abort: the source resumes at its old location.
        self.records.stamp(mig.record, MigrationPhase::Aborted);
        self.dir.insert(
            rank,
            PlEntry {
                vmid: mig.old_vmid,
                status: ExeStatus::Running,
            },
        );
        cell.trace(EventKind::MigrationAborted {
            rank,
            attempt: mig.attempts,
        });
        record_ruling(cell, rank, "abort", mig.attempts, Some(reason));
        if let Some(src) = source {
            self.reply(src, SchedReply::MigrationAborted { rank });
        }
        if let Some(requester) = &mig.requester {
            self.reply(
                requester,
                SchedReply::MigrationFailed {
                    rank,
                    reason: format!(
                        "migration of rank {rank} aborted after {} attempt(s): {reason}",
                        mig.attempts
                    ),
                },
            );
        }
    }

    /// Order a half-initialized destination process to stand down. The
    /// init is blocked inside `initialize()`'s receive loops, so the
    /// reap order goes straight into its inbox; if its host already
    /// left, the registry entry is gone and there is nothing to do (the
    /// orphaned thread unblocks at its own watchdog).
    fn reap_init(&self, rank: Rank, init: Vmid) {
        if let Some(addr) = self.vm.shared().registry().addr_of(init) {
            let _ = addr.inbox.send(
                Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationAborted { rank })),
                snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
            );
        }
    }

    /// Spawn a replacement initialized process on an alternate live
    /// host: lowest host id that is neither the source's host nor one
    /// that already failed this migration.
    fn respawn_init(&mut self, rank: Rank, mig: &InFlight) -> Option<Vmid> {
        for h in self.vm.host_ids() {
            if h == mig.old_vmid.host || mig.failed_hosts.contains(&h) {
                continue;
            }
            let image = Arc::clone(&self.image);
            if let Some((new_vmid, join)) =
                self.vm.spawn(h, &format!("init:{rank}"), move |init_cell| {
                    image(init_cell, rank)
                })
            {
                self.init_joins.lock().push(join);
                return Some(new_vmid);
            }
        }
        None
    }

    /// Abort every in-flight migration whose deadline has passed — the
    /// server-side half of abortability, covering sources that died
    /// without ever reporting failure.
    fn sweep_deadlines(&mut self, cell: &ProcessCell) {
        let now = Instant::now();
        let expired: Vec<Rank> = self
            .in_flight
            .iter()
            .filter(|(_, m)| m.deadline.is_some_and(|d| now >= d))
            .map(|(r, _)| *r)
            .collect();
        for rank in expired {
            if let Some(mig) = self.in_flight.remove(&rank) {
                self.abort_or_retry(cell, rank, mig, "migration deadline expired", None);
            }
        }
    }
}

/// Deposit one scheduler ruling (commit / retry / abort of an in-flight
/// migration) into the shared metrics registry. Free function so both
/// the request handlers and the deadline sweep can call it without
/// fighting the borrow on `self.in_flight`.
fn record_ruling(cell: &ProcessCell, rank: Rank, action: &str, attempts: u32, cause: Option<&str>) {
    let tracer = cell.tracer();
    if tracer.is_enabled() {
        tracer.metrics().record_ruling(SchedulerRuling {
            rank,
            action: action.to_string(),
            attempts,
            cause: cause.map(str::to_string),
        });
    }
}

/// Spawn the scheduler on `host` and install it in the environment,
/// using the default centralized PL table.
pub fn spawn_scheduler(vm: &VirtualMachine, host: HostId, image: ProcessImage) -> SchedulerHandle {
    spawn_scheduler_with_directory(vm, host, image, Box::new(CentralTable::new()))
}

/// Spawn the scheduler with a custom [`Directory`] backend (§2: any
/// lookup service meeting the requirements works — centralized,
/// hierarchical, or peer-to-peer).
pub fn spawn_scheduler_with_directory(
    vm: &VirtualMachine,
    host: HostId,
    image: ProcessImage,
    dir: Box<dyn Directory>,
) -> SchedulerHandle {
    spawn_scheduler_with_config(vm, host, image, dir, SchedulerConfig::default())
}

/// How often the scheduler wakes from its inbox wait to sweep in-flight
/// migration deadlines.
const SWEEP_TICK: Duration = Duration::from_millis(50);

/// Spawn the scheduler with a custom directory and explicit
/// [`SchedulerConfig`] (retry policy + in-flight deadline).
pub fn spawn_scheduler_with_config(
    vm: &VirtualMachine,
    host: HostId,
    image: ProcessImage,
    dir: Box<dyn Directory>,
    config: SchedulerConfig,
) -> SchedulerHandle {
    let records = RecordStore::new();
    let init_joins = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut state = SchedState {
        dir,
        records: records.clone(),
        in_flight: HashMap::new(),
        vm: vm.clone(),
        image,
        init_joins: Arc::clone(&init_joins),
        config,
    };
    let (vmid, join) = vm
        .spawn(host, "scheduler", move |cell| loop {
            match cell.recv_incoming_timeout(SWEEP_TICK) {
                Ok(Some(Incoming::Ctrl(Ctrl::SchedRequest(req)))) => {
                    if !state.handle(&cell, req) {
                        return;
                    }
                }
                Ok(Some(Incoming::Ctrl(Ctrl::ConnReq(req)))) => {
                    // Nobody establishes data connections with the
                    // scheduler; reject through the daemon so its pending
                    // record is cleaned up.
                    let target = req.target;
                    let req_id = req.req_id;
                    cell.answer_conn_req(req_id, Ctrl::ConnNack { req_id, target });
                }
                Ok(Some(_)) => {}
                Ok(None) => state.sweep_deadlines(&cell),
                Err(_) => return,
            }
        })
        .expect("scheduler host must be a member");
    vm.set_scheduler(vmid);
    SchedulerHandle {
        vmid,
        records,
        init_joins,
        join: Some(join),
    }
}

/// A no-op image for environments that never migrate (pure messaging
/// tests) — the initialized process exits immediately.
pub fn null_image() -> ProcessImage {
    Arc::new(|_cell, _rank| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SchedClient;
    use snow_vm::HostSpec;

    #[test]
    fn lookup_roundtrip() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let v = Vmid { host: h, pid: 77 };
        client.register(3, v).unwrap();
        let (status, vmid) = client.lookup(3).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(v));
        // Unknown rank → Terminated/None.
        let (status, vmid) = client.lookup(9).unwrap();
        assert_eq!(status, ExeStatus::Terminated);
        assert_eq!(vmid, None);
    }

    #[test]
    fn terminated_rank_reported() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        client.register(0, Vmid { host: h, pid: 1 }).unwrap();
        client.terminated(0).unwrap();
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Terminated);
        assert_eq!(vmid, None);
    }

    #[test]
    fn migrate_unknown_rank_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let err = client.migrate(42, h).unwrap_err();
        assert!(err.contains("unknown rank"), "{err}");
    }

    #[test]
    fn migrate_to_unknown_host_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        // Register a rank backed by a real blocked process so the signal
        // could be delivered if we got that far.
        let (pv, _join) = vm
            .spawn(h, "p0", |cell| {
                let _ = cell.wait_signal(std::time::Duration::from_millis(500));
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, HostId(99)).unwrap_err();
        assert!(err.contains("not a member"), "{err}");
    }

    #[test]
    fn migrate_dead_process_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let (pv, join) = vm.spawn(h, "p0", |_cell| {}).unwrap();
        join.join().unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h).unwrap_err();
        assert!(err.contains("terminated before migration"), "{err}");
    }

    #[test]
    fn full_choreography_with_stub_processes() {
        // Drive the four-step dance by hand (no snow-core yet): the
        // "migrating process" and the image both speak the scheduler
        // protocol directly.
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());

        // The image plays the initialized process: restore-complete then
        // commit.
        let image: ProcessImage = Arc::new(move |cell: ProcessCell, rank: Rank| {
            cell.sched_send(SchedRequest::RestoreComplete {
                rank,
                new_vmid: cell.vmid(),
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::PlTable { entries, old_vmid })) => {
                    assert!(!entries.is_empty());
                    assert_ne!(old_vmid, cell.vmid());
                }
                other => panic!("expected PL table, got {other:?}"),
            }
            cell.sched_send(SchedRequest::MigrationCommit { rank })
                .unwrap();
        });
        let sched = spawn_scheduler(&vm, h0, image);
        let client = SchedClient::new(&vm);

        // The migrating process: wait for the signal, announce start.
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                let sig = cell.wait_signal(std::time::Duration::from_secs(5));
                assert_eq!(sig, Some(Signal::Migrate));
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { new_vmid })) => {
                        assert_eq!(new_vmid.host, h1);
                    }
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                // Migrating process terminates (Fig 5 line 11).
            })
            .unwrap();
        client.register(0, pv).unwrap();

        let new_vmid = client.migrate(0, h1).unwrap();
        assert_eq!(new_vmid.host, h1);
        pjoin.join().unwrap();

        // Post-commit lookup points at the new location, Running.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(new_vmid));

        // Bookkeeping has all four phases.
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].reached(MigrationPhase::Committed));
        assert!(recs[0].total_seconds().unwrap() >= 0.0);
    }

    /// A stub image that stands by until the scheduler reaps it (how a
    /// blocked `initialize()` perceives an abort).
    fn reapable_image() -> ProcessImage {
        Arc::new(|cell: ProcessCell, rank: Rank| loop {
            match cell.recv_incoming() {
                Ok(Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationAborted { rank: r }))) => {
                    assert_eq!(r, rank);
                    return;
                }
                Ok(_) => {}
                Err(_) => return,
            }
        })
    }

    #[test]
    fn abort_rolls_back_directory_and_errors_requester() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler(&vm, h0, reapable_image());
        let client = SchedClient::new(&vm);
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { .. })) => {}
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                cell.sched_send(SchedRequest::MigrationAbort {
                    rank: 0,
                    reason: "transfer channel died".into(),
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationAborted { rank: 0 })) => {}
                    other => panic!("expected MigrationAborted, got {other:?}"),
                }
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h1).unwrap_err();
        assert!(err.contains("aborted"), "{err}");
        pjoin.join().unwrap();
        // Directory rolled back: rank 0 Running at the old vmid.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(pv));
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].reached(MigrationPhase::Aborted));
        assert!(!recs[0].reached(MigrationPhase::Committed));
        // The reaped init unblocked promptly.
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
    }

    #[test]
    fn retry_policy_respawns_on_alternate_host() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let h2 = vm.add_host(HostSpec::ideal());
        // First init (h1) waits for its reap order; the replacement
        // (h2) runs the restore choreography to completion.
        let image: ProcessImage = Arc::new(move |cell: ProcessCell, rank: Rank| {
            if cell.host() != h2 {
                (reapable_image())(cell, rank);
                return;
            }
            cell.sched_send(SchedRequest::RestoreComplete {
                rank,
                new_vmid: cell.vmid(),
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::PlTable { .. })) => {}
                other => panic!("expected PL table, got {other:?}"),
            }
            cell.sched_send(SchedRequest::MigrationCommit { rank })
                .unwrap();
        });
        let sched = spawn_scheduler_with_config(
            &vm,
            h0,
            image,
            Box::new(CentralTable::new()),
            SchedulerConfig {
                retry: Some(RetryPolicy {
                    max_attempts: 3,
                    backoff: Duration::from_millis(1),
                }),
                ..SchedulerConfig::default()
            },
        );
        let client = SchedClient::new(&vm);
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { new_vmid })) => {
                        assert_eq!(new_vmid.host, h1);
                    }
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                cell.sched_send(SchedRequest::MigrationAbort {
                    rank: 0,
                    reason: "checksum mismatch".into(),
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationRetry {
                        new_vmid,
                        attempt,
                        ..
                    })) => {
                        assert_eq!(new_vmid.host, h2);
                        assert_eq!(attempt, 2);
                    }
                    other => panic!("expected MigrationRetry, got {other:?}"),
                }
                // Second transfer "succeeds": the h2 init commits on its
                // own; the source terminates as in Fig 5 line 11.
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let new_vmid = client.migrate(0, h1).unwrap();
        assert_eq!(new_vmid.host, h2, "must have re-targeted off h1");
        pjoin.join().unwrap();
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].attempts, 2);
        assert!(recs[0].reached(MigrationPhase::Retried));
        assert!(recs[0].reached(MigrationPhase::Committed));
        assert_eq!(recs[0].new_vmid, new_vmid);
    }

    #[test]
    fn deadline_sweep_reaps_stalled_migration() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler_with_config(
            &vm,
            h0,
            reapable_image(),
            Box::new(CentralTable::new()),
            SchedulerConfig {
                retry: None,
                deadline: Some(Duration::from_millis(100)),
            },
        );
        let client = SchedClient::new(&vm);
        // A source that accepts the signal but never transfers.
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                std::thread::sleep(Duration::from_millis(400));
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h1).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        pjoin.join().unwrap();
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
        let recs = sched.records();
        assert!(recs[0].reached(MigrationPhase::Aborted));
        // Directory rolled back to the (stalled but live) source.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(pv));
    }

    #[test]
    fn second_migration_of_same_rank_while_in_flight_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        // A process that ignores the signal, keeping the migration
        // in flight.
        let (pv, _join) = vm
            .spawn(h, "p0", |cell| {
                std::thread::sleep(std::time::Duration::from_millis(300));
                let _ = cell.poll_signal();
            })
            .unwrap();
        client.register(0, pv).unwrap();
        client.migrate_async(0, h).unwrap();
        // Give the scheduler a beat to open the in-flight entry.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let err = client.migrate(0, h).unwrap_err();
        assert!(
            err.contains("migrating") || err.contains("not running"),
            "{err}"
        );
    }
}
