//! The scheduler process: lookup service + migration choreography.

use crate::directory::{Directory, IndexedDirectory, PlEntry};
use crate::records::{MigrationPhase, MigrationRecord, RecordStore};
use snow_trace::{
    metrics::{DrainMetrics, SchedulerRuling},
    EventKind,
};
use snow_vm::wire::{
    Ctrl, DrainOutcome, DrainPoolConfig, DrainRankResult, ExeStatus, FailCause, Incoming,
    SchedReply, SchedRequest,
};
use snow_vm::{HostId, PostSender, ProcessCell, Rank, Signal, VirtualMachine, Vmid};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The migration-enabled executable image (§2.2): what the scheduler
/// remotely invokes on a destination host to create an *initialized
/// process* awaiting state transfer. The closure receives the fresh
/// [`ProcessCell`] and the migrating rank; it is expected to run the
/// `initialize()` protocol and then resume the application.
pub type ProcessImage = Arc<dyn Fn(ProcessCell, Rank) + Send + Sync>;

/// How the scheduler re-targets a failed migration before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transfer attempts allowed (1 = no retries).
    pub max_attempts: u32,
    /// Source-side pause before each retry.
    pub backoff: Duration,
    /// Maximum extra pause added on top of `backoff`, drawn
    /// deterministically per `(seed, rank, attempt)` so that N migrants
    /// whose shared destination died do not re-target in lockstep.
    /// `Duration::ZERO` disables jitter.
    pub jitter: Duration,
    /// Seed for the jitter draw (the spread is a pure function of
    /// `(seed, rank, attempt)` — reruns back off identically).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            jitter: Duration::ZERO,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff for `rank`'s retry number `attempt`: the base pause
    /// plus a deterministic jitter in `[0, self.jitter]`. Pure in
    /// `(seed, rank, attempt)`, so a replayed run backs off identically
    /// while concurrent migrants spread out.
    pub fn backoff_for(&self, rank: Rank, attempt: u32) -> Duration {
        if self.jitter.is_zero() {
            return self.backoff;
        }
        // splitmix64-style scramble of (seed, rank, attempt).
        let mut h = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((rank as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        self.backoff + Duration::from_nanos((self.jitter.as_nanos() as f64 * frac) as u64)
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Re-target failed migrations at alternate live hosts before
    /// abandoning them. `None` aborts on the first failure.
    pub retry: Option<RetryPolicy>,
    /// How long one transfer attempt may stay in flight before the
    /// scheduler reaps it server-side. Generous by default so slow
    /// modeled transfers are never cut short; `None` disables the sweep.
    pub deadline: Option<Duration>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            retry: None,
            deadline: Some(Duration::from_secs(300)),
        }
    }
}

/// Handle returned by [`spawn_scheduler`].
pub struct SchedulerHandle {
    /// The scheduler's own vmid (install with `vm.set_scheduler` is done
    /// automatically).
    pub vmid: Vmid,
    records: RecordStore,
    init_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    join: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Bookkeeping records collected so far.
    pub fn records(&self) -> Vec<MigrationRecord> {
        self.records.all()
    }

    /// Take the join handles of initialized processes spawned so far.
    /// Joining them waits for resumed applications to finish — harness
    /// code should do this after joining the original rank threads.
    pub fn take_init_joins(&self) -> Vec<JoinHandle<()>> {
        std::mem::take(&mut *self.init_joins.lock())
    }

    /// Wait for the scheduler thread to stop (after a
    /// [`SchedRequest::Shutdown`]).
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

struct InFlight {
    record: usize,
    old_vmid: Vmid,
    new_vmid: Vmid,
    requester: Option<PostSender<Incoming>>,
    attempts: u32,
    deadline: Option<Instant>,
    failed_hosts: Vec<HostId>,
    /// When this migration is one job of a host drain, the draining
    /// host: its terminal verdict feeds the gang's outcome instead of a
    /// per-migration reply.
    drain: Option<HostId>,
}

/// One in-progress host evacuation: a gang of per-rank migration jobs
/// fed through a bounded worker pool (at most `pool.max_workers`
/// concurrently in the in-flight table, the rest queued in `pending`).
struct DrainState {
    requester: PostSender<Incoming>,
    pool: DrainPoolConfig,
    /// Ranks waiting for a pool slot (the bounded job queue).
    pending: VecDeque<Rank>,
    /// Ranks currently in the in-flight table on this drain's behalf.
    active: HashSet<Rank>,
    /// Per-rank verdicts, capped at `pool.res_queue_size` (the counters
    /// below always cover the whole gang).
    results: Vec<(Rank, DrainRankResult)>,
    completed: usize,
    aborted: usize,
    /// Retry rulings issued across the gang (re-targets).
    retried: usize,
    /// Gang size at admission.
    total: usize,
    started: Instant,
    last_progress: Instant,
    peak_active: usize,
    /// Round-robin cursor over destination candidates.
    next_dest: usize,
}

struct SchedState {
    dir: Box<dyn Directory>,
    records: RecordStore,
    in_flight: HashMap<Rank, InFlight>,
    drains: HashMap<HostId, DrainState>,
    vm: VirtualMachine,
    image: ProcessImage,
    init_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    config: SchedulerConfig,
}

impl SchedState {
    fn reply(&self, to: &PostSender<Incoming>, reply: SchedReply) {
        let _ = to.send(
            Incoming::Ctrl(Ctrl::Sched(reply)),
            snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
        );
    }

    fn handle(&mut self, cell: &ProcessCell, req: SchedRequest) -> bool {
        match req {
            SchedRequest::Register { rank, vmid } => {
                self.dir.insert(
                    rank,
                    PlEntry {
                        vmid,
                        status: ExeStatus::Running,
                    },
                );
            }
            SchedRequest::Lookup { about, reply } => {
                cell.trace(EventKind::SchedulerConsult { about });
                let (status, vmid) = match self.dir.lookup(about) {
                    Some(e) => (
                        e.status,
                        if e.status == ExeStatus::Terminated {
                            None
                        } else {
                            Some(e.vmid)
                        },
                    ),
                    None => (ExeStatus::Terminated, None),
                };
                self.reply(
                    &reply,
                    SchedReply::Location {
                        about,
                        status,
                        vmid,
                    },
                );
            }
            SchedRequest::Migrate {
                rank,
                to_host,
                reply,
            } => self.start_migration(cell, rank, to_host, reply),
            SchedRequest::MigrationStart { rank, reply } => {
                match self.in_flight.get(&rank) {
                    Some(mig) => {
                        self.records.stamp(mig.record, MigrationPhase::Started);
                        let new_vmid = mig.new_vmid;
                        // Only NOW may lookups redirect: the migrating
                        // process is about to reject connections, so
                        // nacked senders consulting us must find the
                        // initialized process. Redirecting any earlier
                        // can deadlock a process that is blocked in
                        // recv and has not yet intercepted the signal
                        // (found by the snow-model schedule explorer).
                        self.dir.insert(
                            rank,
                            PlEntry {
                                vmid: new_vmid,
                                status: ExeStatus::Migrated,
                            },
                        );
                        self.reply(&reply, SchedReply::NewVmid { new_vmid });
                    }
                    None => self.reply(
                        &reply,
                        SchedReply::Error {
                            reason: format!("rank {rank} has no migration in flight"),
                        },
                    ),
                }
            }
            SchedRequest::RestoreComplete {
                rank,
                new_vmid,
                reply,
            } => match self.in_flight.get(&rank) {
                Some(mig) => {
                    debug_assert_eq!(mig.new_vmid, new_vmid);
                    self.records.stamp(mig.record, MigrationPhase::Restored);
                    let entries = self
                        .dir
                        .entries()
                        .into_iter()
                        .map(|(r, e)| (r, e.vmid))
                        .collect();
                    let old_vmid = mig.old_vmid;
                    self.reply(&reply, SchedReply::PlTable { entries, old_vmid });
                }
                None => self.reply(
                    &reply,
                    SchedReply::Error {
                        reason: format!("rank {rank}: restore without migration"),
                    },
                ),
            },
            SchedRequest::MigrationCommit { rank } => {
                if let Some(mig) = self.in_flight.remove(&rank) {
                    self.records.stamp(mig.record, MigrationPhase::Committed);
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: mig.new_vmid,
                            status: ExeStatus::Running,
                        },
                    );
                    cell.trace(EventKind::MigrationCommit { rank });
                    record_ruling(cell, rank, "commit", mig.attempts, None);
                    if let Some(requester) = mig.requester {
                        self.reply(
                            &requester,
                            SchedReply::MigrationDone {
                                rank,
                                new_vmid: mig.new_vmid,
                            },
                        );
                    }
                    if let Some(host) = mig.drain {
                        self.drain_job_done(
                            cell,
                            host,
                            rank,
                            DrainRankResult::Completed(mig.new_vmid),
                        );
                    }
                }
            }
            SchedRequest::MigrationAbort {
                rank,
                reason,
                reply,
            } => match self.in_flight.remove(&rank) {
                Some(mig) => self.abort_or_retry(cell, rank, mig, &reason, Some(&reply)),
                None => {
                    // Either the destination committed before the abort
                    // request arrived (the migration actually succeeded)
                    // or the deadline sweep already reaped it.
                    let committed = self
                        .records
                        .last_for(rank)
                        .map(|r| r.reached(MigrationPhase::Committed))
                        .unwrap_or(false);
                    if committed {
                        self.reply(&reply, SchedReply::MigrationAbortDenied { rank });
                    } else {
                        self.reply(&reply, SchedReply::MigrationAborted { rank });
                    }
                }
            },
            SchedRequest::HostDrain { host, pool, reply } => {
                self.start_drain(cell, host, pool, reply)
            }
            SchedRequest::Terminated { rank } => {
                if let Some(e) = self.dir.lookup(rank) {
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: e.vmid,
                            status: ExeStatus::Terminated,
                        },
                    );
                }
            }
            SchedRequest::Shutdown => return false,
        }
        true
    }

    fn start_migration(
        &mut self,
        cell: &ProcessCell,
        rank: Rank,
        to_host: HostId,
        reply: PostSender<Incoming>,
    ) {
        if let Err(cause) = self.begin_migration(cell, rank, to_host, Some(reply.clone()), None) {
            self.reply(&reply, SchedReply::MigrationFailed { rank, cause });
        }
    }

    /// Is `rank` claimed by any drain gang (queued or active)?
    fn rank_in_drain(&self, rank: Rank) -> bool {
        self.drains
            .values()
            .any(|st| st.active.contains(&rank) || st.pending.contains(&rank))
    }

    /// Open a migration transaction for `rank` toward `to_host`:
    /// validate, initialize the destination process, enter the in-flight
    /// table, and signal the source. `requester` (if any) is notified on
    /// commit/final abort; `drain` tags the entry as one job of a host
    /// evacuation. Admission control lives here: migrations onto a
    /// draining host are refused.
    fn begin_migration(
        &mut self,
        cell: &ProcessCell,
        rank: Rank,
        to_host: HostId,
        requester: Option<PostSender<Incoming>>,
        drain: Option<HostId>,
    ) -> Result<(), FailCause> {
        let entry = match self.dir.lookup(rank) {
            Some(e) if e.status == ExeStatus::Running => e,
            Some(e) => return Err(FailCause::NotRunning(e.status)),
            None => return Err(FailCause::UnknownRank),
        };
        if self.in_flight.contains_key(&rank) || (drain.is_none() && self.rank_in_drain(rank)) {
            return Err(FailCause::AlreadyMigrating);
        }
        if self.vm.host_is_draining(to_host) {
            return Err(FailCause::HostDraining(to_host));
        }
        // Process initialization (§2.2): remotely invoke the
        // migration-enabled executable on the destination and let it wait
        // for state transfer.
        let image = Arc::clone(&self.image);
        let spawned = self
            .vm
            .spawn(to_host, &format!("init:{rank}"), move |init_cell| {
                image(init_cell, rank)
            });
        let Some((new_vmid, init_join)) = spawned else {
            // Spawn refusal: the host left, or began draining between
            // the admission check and the allocation.
            return Err(if self.vm.host_is_draining(to_host) {
                FailCause::HostDraining(to_host)
            } else {
                FailCause::HostNotMember(to_host)
            });
        };
        self.init_joins.lock().push(init_join);
        // NOTE: the PL table is NOT updated yet — lookups keep naming
        // the (still accepting) old process until it announces
        // migration_start. See the MigrationStart handler.
        let record = self.records.open(rank, entry.vmid, new_vmid);
        self.in_flight.insert(
            rank,
            InFlight {
                record,
                old_vmid: entry.vmid,
                new_vmid,
                requester,
                attempts: 1,
                deadline: self.config.deadline.map(|d| Instant::now() + d),
                failed_hosts: Vec::new(),
                drain,
            },
        );
        // Send the migration signal (SIGUSR1 in the prototype).
        if !cell.send_signal(entry.vmid, Signal::Migrate) {
            // The process vanished between lookup and signal.
            self.in_flight.remove(&rank);
            self.reap_init(rank, new_vmid);
            self.dir.insert(
                rank,
                PlEntry {
                    vmid: entry.vmid,
                    status: ExeStatus::Terminated,
                },
            );
            return Err(FailCause::SourceTerminated);
        }
        Ok(())
    }

    /// A transfer attempt failed (source-reported or deadline-swept).
    /// Reap the half-initialized destination, then either re-target the
    /// migration under the retry policy or abandon it: roll the
    /// directory back to the still-running source and tell everyone.
    fn abort_or_retry(
        &mut self,
        cell: &ProcessCell,
        rank: Rank,
        mut mig: InFlight,
        reason: &str,
        source: Option<&PostSender<Incoming>>,
    ) {
        self.reap_init(rank, mig.new_vmid);
        mig.failed_hosts.push(mig.new_vmid.host);
        if let Some(policy) = self.config.retry.clone() {
            if mig.attempts < policy.max_attempts {
                if let Some(new_vmid) = self.respawn_init(rank, &mig) {
                    let attempt = mig.attempts + 1;
                    self.records.retarget(mig.record, new_vmid);
                    self.records.stamp(mig.record, MigrationPhase::Retried);
                    // The source is still rejecting connections, so
                    // lookups must keep redirecting — now at the
                    // replacement destination.
                    self.dir.insert(
                        rank,
                        PlEntry {
                            vmid: new_vmid,
                            status: ExeStatus::Migrated,
                        },
                    );
                    mig.new_vmid = new_vmid;
                    mig.attempts = attempt;
                    mig.deadline = self.config.deadline.map(|d| Instant::now() + d);
                    cell.trace(EventKind::MigrationRetried { attempt });
                    record_ruling(cell, rank, "retry", attempt, Some(reason));
                    if let Some(src) = source {
                        self.reply(
                            src,
                            SchedReply::MigrationRetry {
                                new_vmid,
                                attempt,
                                // Jittered so gang-mates orphaned by one
                                // dead destination fan back in staggered.
                                backoff_ms: policy.backoff_for(rank, attempt).as_millis() as u64,
                            },
                        );
                    }
                    if let Some(host) = mig.drain {
                        if let Some(st) = self.drains.get_mut(&host) {
                            st.retried += 1;
                        }
                    }
                    self.in_flight.insert(rank, mig);
                    return;
                }
            }
        }
        // Final abort: the source resumes at its old location.
        self.records.stamp(mig.record, MigrationPhase::Aborted);
        self.dir.insert(
            rank,
            PlEntry {
                vmid: mig.old_vmid,
                status: ExeStatus::Running,
            },
        );
        cell.trace(EventKind::MigrationAborted {
            rank,
            attempt: mig.attempts,
        });
        record_ruling(cell, rank, "abort", mig.attempts, Some(reason));
        let cause = FailCause::Aborted {
            attempts: mig.attempts,
            reason: reason.to_string(),
        };
        if let Some(src) = source {
            self.reply(src, SchedReply::MigrationAborted { rank });
        }
        if let Some(requester) = &mig.requester {
            self.reply(
                requester,
                SchedReply::MigrationFailed {
                    rank,
                    cause: cause.clone(),
                },
            );
        }
        if let Some(host) = mig.drain {
            self.drain_job_done(cell, host, rank, DrainRankResult::Aborted(cause));
        }
    }

    /// Order a half-initialized destination process to stand down. The
    /// init is blocked inside `initialize()`'s receive loops, so the
    /// reap order goes straight into its inbox; if its host already
    /// left, the registry entry is gone and there is nothing to do (the
    /// orphaned thread unblocks at its own watchdog).
    fn reap_init(&self, rank: Rank, init: Vmid) {
        let from = self
            .vm
            .shared()
            .scheduler_vmid()
            .map(|v| v.host.into())
            .unwrap_or(snow_vm::NodeId::CLIENT);
        let _ = self.vm.shared().transport().send_to(
            from,
            init,
            Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationAborted { rank })),
            snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
            snow_net::FrameClass::Control,
        );
    }

    /// Spawn a replacement initialized process on an alternate live
    /// host: lowest host id that is neither the source's host, nor one
    /// that already failed this migration, nor a host being evacuated
    /// (admission control applies to re-targets too).
    fn respawn_init(&mut self, rank: Rank, mig: &InFlight) -> Option<Vmid> {
        for h in self.vm.host_ids() {
            if h == mig.old_vmid.host
                || mig.failed_hosts.contains(&h)
                || self.vm.host_is_draining(h)
            {
                continue;
            }
            let image = Arc::clone(&self.image);
            if let Some((new_vmid, join)) =
                self.vm.spawn(h, &format!("init:{rank}"), move |init_cell| {
                    image(init_cell, rank)
                })
            {
                self.init_joins.lock().push(join);
                return Some(new_vmid);
            }
        }
        None
    }

    /// Abort every in-flight migration whose deadline has passed — the
    /// server-side half of abortability, covering sources that died
    /// without ever reporting failure.
    fn sweep_deadlines(&mut self, cell: &ProcessCell) {
        let now = Instant::now();
        let expired: Vec<Rank> = self
            .in_flight
            .iter()
            .filter(|(_, m)| m.deadline.is_some_and(|d| now >= d))
            .map(|(r, _)| *r)
            .collect();
        for rank in expired {
            if let Some(mig) = self.in_flight.remove(&rank) {
                self.abort_or_retry(cell, rank, mig, "migration deadline expired", None);
            }
        }
    }

    /// Admit a host evacuation: snapshot the co-located running ranks,
    /// arbitrate against the in-flight table (ranks already migrating on
    /// their own are skipped — they are leaving anyway), bound the gang
    /// by the pool capacity, mark the host draining, and start feeding
    /// jobs through the pool.
    fn start_drain(
        &mut self,
        cell: &ProcessCell,
        host: HostId,
        pool: DrainPoolConfig,
        reply: PostSender<Incoming>,
    ) {
        let fail = |me: &Self, cause: FailCause| {
            me.reply(&reply, SchedReply::DrainFailed { host, cause });
        };
        if !self.vm.has_host(host) {
            return fail(self, FailCause::HostNotMember(host));
        }
        if self.drains.contains_key(&host) || self.vm.host_is_draining(host) {
            return fail(self, FailCause::HostDraining(host));
        }
        let mut ranks: Vec<Rank> = self
            .dir
            .entries()
            .into_iter()
            .filter(|(r, e)| {
                e.status == ExeStatus::Running
                    && e.vmid.host == host
                    && !self.in_flight.contains_key(r)
            })
            .map(|(r, _)| r)
            .collect();
        ranks.sort_unstable();
        let capacity = if pool.max_workers == 0 {
            0
        } else {
            pool.max_workers + pool.job_queue_size
        };
        if ranks.len() > capacity {
            return fail(
                self,
                FailCause::DrainOverflow {
                    ranks: ranks.len(),
                    capacity,
                },
            );
        }
        self.vm.set_host_draining(host, true);
        cell.trace(EventKind::Phase {
            label: format!(
                "drain:{host}:start ranks={} workers={}",
                ranks.len(),
                pool.max_workers
            ),
        });
        let now = Instant::now();
        self.drains.insert(
            host,
            DrainState {
                requester: reply,
                pool,
                total: ranks.len(),
                pending: ranks.into(),
                active: HashSet::new(),
                results: Vec::new(),
                completed: 0,
                aborted: 0,
                retried: 0,
                started: now,
                last_progress: now,
                peak_active: 0,
                next_dest: 0,
            },
        );
        self.pump_drain(cell, host);
    }

    /// Round-robin destination pick for the next drain job: any live
    /// host that is neither the draining host nor itself draining.
    fn pick_drain_dest(&mut self, host: HostId) -> Option<HostId> {
        let candidates: Vec<HostId> = self
            .vm
            .host_ids()
            .into_iter()
            .filter(|h| *h != host && !self.vm.host_is_draining(*h))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let st = self.drains.get_mut(&host)?;
        let dest = candidates[st.next_dest % candidates.len()];
        st.next_dest += 1;
        Some(dest)
    }

    /// Fill free pool slots from the job queue; when both the queue and
    /// the pool are empty, the drain has terminated. Jobs that cannot
    /// even start (rank died meanwhile, no live destination) take their
    /// verdict immediately — they must never wedge their gang-mates.
    fn pump_drain(&mut self, cell: &ProcessCell, host: HostId) {
        loop {
            let job = match self.drains.get_mut(&host) {
                Some(st) if st.active.len() < st.pool.max_workers => st.pending.pop_front(),
                _ => None,
            };
            let Some(rank) = job else { break };
            let started = self
                .pick_drain_dest(host)
                .ok_or(FailCause::NoDestination)
                .and_then(|dest| self.begin_migration(cell, rank, dest, None, Some(host)));
            let Some(st) = self.drains.get_mut(&host) else {
                break;
            };
            match started {
                Ok(()) => {
                    st.active.insert(rank);
                    st.peak_active = st.peak_active.max(st.active.len());
                }
                Err(cause) => {
                    record_ruling(cell, rank, "drain-skip", 0, Some(&cause.to_string()));
                    st.aborted += 1;
                    if st.results.len() < st.pool.res_queue_size {
                        st.results.push((rank, DrainRankResult::Aborted(cause)));
                    }
                }
            }
        }
        let finished = self
            .drains
            .get(&host)
            .is_some_and(|st| st.pending.is_empty() && st.active.is_empty());
        if finished {
            self.finish_drain(cell, host);
        }
    }

    /// One drain job reached its terminal state (commit or final
    /// abort): record the verdict, free its pool slot, admit the next
    /// queued rank, and close the drain when the gang is done.
    fn drain_job_done(
        &mut self,
        cell: &ProcessCell,
        host: HostId,
        rank: Rank,
        result: DrainRankResult,
    ) {
        let Some(st) = self.drains.get_mut(&host) else {
            return;
        };
        st.active.remove(&rank);
        match result {
            DrainRankResult::Completed(_) => st.completed += 1,
            DrainRankResult::Aborted(_) => st.aborted += 1,
        }
        if st.results.len() < st.pool.res_queue_size {
            st.results.push((rank, result));
        }
        self.pump_drain(cell, host);
    }

    /// Close a finished drain: clear the draining flag, deposit the
    /// per-drain metrics record (exactly one per drain), and send the
    /// terminal verdict to the requester.
    fn finish_drain(&mut self, cell: &ProcessCell, host: HostId) {
        let Some(st) = self.drains.remove(&host) else {
            return;
        };
        self.vm.set_host_draining(host, false);
        let outcome = if st.aborted == 0 {
            DrainOutcome::Evacuated {
                completed: st.completed,
                retried: st.retried,
            }
        } else {
            DrainOutcome::PartiallyEvacuated {
                completed: st.completed,
                aborted: st.aborted,
                retried: st.retried,
            }
        };
        cell.trace(EventKind::Phase {
            label: format!(
                "drain:{host}:done completed={} aborted={} retried={}",
                st.completed, st.aborted, st.retried
            ),
        });
        let tracer = cell.tracer();
        if tracer.is_enabled() {
            tracer.metrics().record_drain(DrainMetrics {
                host: host.0 as usize,
                ranks: st.total,
                completed: st.completed,
                aborted: st.aborted,
                retried: st.retried,
                makespan_s: st.started.elapsed().as_secs_f64(),
                max_workers: st.pool.max_workers,
                peak_active: st.peak_active,
                outcome: match outcome {
                    DrainOutcome::Evacuated { .. } => "evacuated".into(),
                    DrainOutcome::PartiallyEvacuated { .. } => "partial".into(),
                },
            });
        }
        self.reply(
            &st.requester,
            SchedReply::DrainDone {
                host,
                outcome,
                per_rank: st.results,
            },
        );
    }

    /// Periodic progress logging for live drains: a `Phase` trace line
    /// and a pool-occupancy sample per `progress_log_period` (zero
    /// disables). Runs on the same tick as the deadline sweep.
    fn drain_progress(&mut self, cell: &ProcessCell) {
        let hosts: Vec<HostId> = self.drains.keys().copied().collect();
        for host in hosts {
            let Some(st) = self.drains.get_mut(&host) else {
                continue;
            };
            let period = st.pool.progress_log_period;
            if period.is_zero() || st.last_progress.elapsed() < period {
                continue;
            }
            st.last_progress = Instant::now();
            let label = format!(
                "drain:{host} done={}/{} active={} queued={}",
                st.completed + st.aborted,
                st.total,
                st.active.len(),
                st.pending.len()
            );
            let depth = st.active.len();
            cell.trace(EventKind::Phase { label });
            let tracer = cell.tracer();
            if tracer.is_enabled() {
                tracer.metrics().sample_queue_depth(
                    &format!("drain:{host}:pool"),
                    tracer.now_ns(),
                    depth,
                );
            }
        }
    }
}

/// Deposit one scheduler ruling (commit / retry / abort of an in-flight
/// migration) into the shared metrics registry. Free function so both
/// the request handlers and the deadline sweep can call it without
/// fighting the borrow on `self.in_flight`.
fn record_ruling(cell: &ProcessCell, rank: Rank, action: &str, attempts: u32, cause: Option<&str>) {
    let tracer = cell.tracer();
    if tracer.is_enabled() {
        tracer.metrics().record_ruling(SchedulerRuling {
            rank,
            action: action.to_string(),
            attempts,
            cause: cause.map(str::to_string),
        });
    }
}

/// Spawn the scheduler on `host` and install it in the environment,
/// using the default centralized PL table (dense rank-indexed, O(1)
/// per consult — see [`IndexedDirectory`]).
pub fn spawn_scheduler(vm: &VirtualMachine, host: HostId, image: ProcessImage) -> SchedulerHandle {
    spawn_scheduler_with_directory(vm, host, image, Box::new(IndexedDirectory::new()))
}

/// Spawn the scheduler with a custom [`Directory`] backend (§2: any
/// lookup service meeting the requirements works — centralized,
/// hierarchical, or peer-to-peer).
pub fn spawn_scheduler_with_directory(
    vm: &VirtualMachine,
    host: HostId,
    image: ProcessImage,
    dir: Box<dyn Directory>,
) -> SchedulerHandle {
    spawn_scheduler_with_config(vm, host, image, dir, SchedulerConfig::default())
}

/// How often the scheduler wakes from its inbox wait to sweep in-flight
/// migration deadlines.
const SWEEP_TICK: Duration = Duration::from_millis(50);

/// Spawn the scheduler with a custom directory and explicit
/// [`SchedulerConfig`] (retry policy + in-flight deadline).
pub fn spawn_scheduler_with_config(
    vm: &VirtualMachine,
    host: HostId,
    image: ProcessImage,
    dir: Box<dyn Directory>,
    config: SchedulerConfig,
) -> SchedulerHandle {
    let records = RecordStore::new();
    let init_joins = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut state = SchedState {
        dir,
        records: records.clone(),
        in_flight: HashMap::new(),
        drains: HashMap::new(),
        vm: vm.clone(),
        image,
        init_joins: Arc::clone(&init_joins),
        config,
    };
    let (vmid, join) = vm
        .spawn(host, "scheduler", move |cell| loop {
            match cell.recv_incoming_timeout(SWEEP_TICK) {
                Ok(Some(Incoming::Ctrl(Ctrl::SchedRequest(req)))) => {
                    if !state.handle(&cell, req) {
                        return;
                    }
                }
                Ok(Some(Incoming::Ctrl(Ctrl::ConnReq(req)))) => {
                    // Nobody establishes data connections with the
                    // scheduler; reject through the daemon so its pending
                    // record is cleaned up.
                    let target = req.target;
                    let req_id = req.req_id;
                    cell.answer_conn_req(req_id, Ctrl::ConnNack { req_id, target });
                }
                Ok(Some(_)) => {}
                Ok(None) => {
                    state.sweep_deadlines(&cell);
                    state.drain_progress(&cell);
                }
                Err(_) => return,
            }
        })
        .expect("scheduler host must be a member");
    vm.set_scheduler(vmid);
    SchedulerHandle {
        vmid,
        records,
        init_joins,
        join: Some(join),
    }
}

/// A no-op image for environments that never migrate (pure messaging
/// tests) — the initialized process exits immediately.
pub fn null_image() -> ProcessImage {
    Arc::new(|_cell, _rank| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SchedClient;
    use snow_vm::HostSpec;

    #[test]
    fn lookup_roundtrip() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let v = Vmid { host: h, pid: 77 };
        client.register(3, v).unwrap();
        let (status, vmid) = client.lookup(3).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(v));
        // Unknown rank → Terminated/None.
        let (status, vmid) = client.lookup(9).unwrap();
        assert_eq!(status, ExeStatus::Terminated);
        assert_eq!(vmid, None);
    }

    #[test]
    fn terminated_rank_reported() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        client.register(0, Vmid { host: h, pid: 1 }).unwrap();
        client.terminated(0).unwrap();
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Terminated);
        assert_eq!(vmid, None);
    }

    #[test]
    fn migrate_unknown_rank_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let err = client.migrate(42, h).unwrap_err();
        assert!(err.contains("unknown rank"), "{err}");
    }

    #[test]
    fn migrate_to_unknown_host_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        // Register a rank backed by a real blocked process so the signal
        // could be delivered if we got that far.
        let (pv, _join) = vm
            .spawn(h, "p0", |cell| {
                let _ = cell.wait_signal(std::time::Duration::from_millis(500));
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, HostId(99)).unwrap_err();
        assert!(err.contains("not a member"), "{err}");
    }

    #[test]
    fn migrate_dead_process_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let (pv, join) = vm.spawn(h, "p0", |_cell| {}).unwrap();
        join.join().unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h).unwrap_err();
        assert!(err.contains("terminated before migration"), "{err}");
    }

    #[test]
    fn full_choreography_with_stub_processes() {
        // Drive the four-step dance by hand (no snow-core yet): the
        // "migrating process" and the image both speak the scheduler
        // protocol directly.
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());

        // The image plays the initialized process: restore-complete then
        // commit.
        let image: ProcessImage = Arc::new(move |cell: ProcessCell, rank: Rank| {
            cell.sched_send(SchedRequest::RestoreComplete {
                rank,
                new_vmid: cell.vmid(),
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::PlTable { entries, old_vmid })) => {
                    assert!(!entries.is_empty());
                    assert_ne!(old_vmid, cell.vmid());
                }
                other => panic!("expected PL table, got {other:?}"),
            }
            cell.sched_send(SchedRequest::MigrationCommit { rank })
                .unwrap();
        });
        let sched = spawn_scheduler(&vm, h0, image);
        let client = SchedClient::new(&vm);

        // The migrating process: wait for the signal, announce start.
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                let sig = cell.wait_signal(std::time::Duration::from_secs(5));
                assert_eq!(sig, Some(Signal::Migrate));
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { new_vmid })) => {
                        assert_eq!(new_vmid.host, h1);
                    }
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                // Migrating process terminates (Fig 5 line 11).
            })
            .unwrap();
        client.register(0, pv).unwrap();

        let new_vmid = client.migrate(0, h1).unwrap();
        assert_eq!(new_vmid.host, h1);
        pjoin.join().unwrap();

        // Post-commit lookup points at the new location, Running.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(new_vmid));

        // Bookkeeping has all four phases.
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].reached(MigrationPhase::Committed));
        assert!(recs[0].total_seconds().unwrap() >= 0.0);
    }

    /// A stub image that stands by until the scheduler reaps it (how a
    /// blocked `initialize()` perceives an abort).
    fn reapable_image() -> ProcessImage {
        Arc::new(|cell: ProcessCell, rank: Rank| loop {
            match cell.recv_incoming() {
                Ok(Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationAborted { rank: r }))) => {
                    assert_eq!(r, rank);
                    return;
                }
                Ok(_) => {}
                Err(_) => return,
            }
        })
    }

    #[test]
    fn abort_rolls_back_directory_and_errors_requester() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler(&vm, h0, reapable_image());
        let client = SchedClient::new(&vm);
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { .. })) => {}
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                cell.sched_send(SchedRequest::MigrationAbort {
                    rank: 0,
                    reason: "transfer channel died".into(),
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationAborted { rank: 0 })) => {}
                    other => panic!("expected MigrationAborted, got {other:?}"),
                }
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h1).unwrap_err();
        assert!(err.contains("aborted"), "{err}");
        pjoin.join().unwrap();
        // Directory rolled back: rank 0 Running at the old vmid.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(pv));
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].reached(MigrationPhase::Aborted));
        assert!(!recs[0].reached(MigrationPhase::Committed));
        // The reaped init unblocked promptly.
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
    }

    #[test]
    fn retry_policy_respawns_on_alternate_host() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let h2 = vm.add_host(HostSpec::ideal());
        // First init (h1) waits for its reap order; the replacement
        // (h2) runs the restore choreography to completion.
        let image: ProcessImage = Arc::new(move |cell: ProcessCell, rank: Rank| {
            if cell.host() != h2 {
                (reapable_image())(cell, rank);
                return;
            }
            cell.sched_send(SchedRequest::RestoreComplete {
                rank,
                new_vmid: cell.vmid(),
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::PlTable { .. })) => {}
                other => panic!("expected PL table, got {other:?}"),
            }
            cell.sched_send(SchedRequest::MigrationCommit { rank })
                .unwrap();
        });
        let sched = spawn_scheduler_with_config(
            &vm,
            h0,
            image,
            Box::new(IndexedDirectory::new()),
            SchedulerConfig {
                retry: Some(RetryPolicy {
                    max_attempts: 3,
                    backoff: Duration::from_millis(1),
                    ..RetryPolicy::default()
                }),
                ..SchedulerConfig::default()
            },
        );
        let client = SchedClient::new(&vm);
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                cell.sched_send(SchedRequest::MigrationStart {
                    rank: 0,
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { new_vmid })) => {
                        assert_eq!(new_vmid.host, h1);
                    }
                    other => panic!("expected NewVmid, got {other:?}"),
                }
                cell.sched_send(SchedRequest::MigrationAbort {
                    rank: 0,
                    reason: "checksum mismatch".into(),
                    reply: cell.reply_sender(),
                })
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::Sched(SchedReply::MigrationRetry {
                        new_vmid,
                        attempt,
                        ..
                    })) => {
                        assert_eq!(new_vmid.host, h2);
                        assert_eq!(attempt, 2);
                    }
                    other => panic!("expected MigrationRetry, got {other:?}"),
                }
                // Second transfer "succeeds": the h2 init commits on its
                // own; the source terminates as in Fig 5 line 11.
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let new_vmid = client.migrate(0, h1).unwrap();
        assert_eq!(new_vmid.host, h2, "must have re-targeted off h1");
        pjoin.join().unwrap();
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
        let recs = sched.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].attempts, 2);
        assert!(recs[0].reached(MigrationPhase::Retried));
        assert!(recs[0].reached(MigrationPhase::Committed));
        assert_eq!(recs[0].new_vmid, new_vmid);
    }

    #[test]
    fn deadline_sweep_reaps_stalled_migration() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler_with_config(
            &vm,
            h0,
            reapable_image(),
            Box::new(IndexedDirectory::new()),
            SchedulerConfig {
                retry: None,
                deadline: Some(Duration::from_millis(100)),
            },
        );
        let client = SchedClient::new(&vm);
        // A source that accepts the signal but never transfers.
        let (pv, pjoin) = vm
            .spawn(h0, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                std::thread::sleep(Duration::from_millis(400));
            })
            .unwrap();
        client.register(0, pv).unwrap();
        let err = client.migrate(0, h1).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        pjoin.join().unwrap();
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
        let recs = sched.records();
        assert!(recs[0].reached(MigrationPhase::Aborted));
        // Directory rolled back to the (stalled but live) source.
        let (status, vmid) = client.lookup(0).unwrap();
        assert_eq!(status, ExeStatus::Running);
        assert_eq!(vmid, Some(pv));
    }

    /// A stub image that completes the restore choreography: the
    /// initialized process reports restore-complete, absorbs the PL
    /// table, and commits.
    fn commit_image() -> ProcessImage {
        Arc::new(|cell: ProcessCell, rank: Rank| {
            cell.sched_send(SchedRequest::RestoreComplete {
                rank,
                new_vmid: cell.vmid(),
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::PlTable { .. })) => {}
                other => panic!("expected PL table, got {other:?}"),
            }
            cell.sched_send(SchedRequest::MigrationCommit { rank })
                .unwrap();
        })
    }

    /// The source half of a successful migration: wait for the signal,
    /// announce start, learn the destination, terminate (Fig 5 line 11).
    fn migrating_source(rank: Rank) -> impl FnOnce(ProcessCell) + Send + 'static {
        move |cell: ProcessCell| {
            assert_eq!(
                cell.wait_signal(std::time::Duration::from_secs(5)),
                Some(Signal::Migrate)
            );
            cell.sched_send(SchedRequest::MigrationStart {
                rank,
                reply: cell.reply_sender(),
            })
            .unwrap();
            match cell.recv_incoming().unwrap() {
                Incoming::Ctrl(Ctrl::Sched(SchedReply::NewVmid { .. })) => {}
                other => panic!("expected NewVmid, got {other:?}"),
            }
        }
    }

    #[test]
    fn retry_backoff_jitter_is_deterministic_and_spread() {
        let p = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            jitter: Duration::from_millis(50),
            seed: 42,
        };
        // Pure in (seed, rank, attempt): replays are identical.
        assert_eq!(p.backoff_for(3, 2), p.backoff_for(3, 2));
        // Always within [backoff, backoff + jitter].
        for rank in 0..32 {
            for attempt in 1..4 {
                let d = p.backoff_for(rank, attempt);
                assert!(d >= p.backoff, "{d:?} under base");
                assert!(d <= p.backoff + p.jitter, "{d:?} over cap");
            }
        }
        // Gang-mates spread out instead of re-targeting in lockstep.
        let spread: HashSet<Duration> = (0..32).map(|r| p.backoff_for(r, 2)).collect();
        assert!(spread.len() > 16, "only {} distinct draws", spread.len());
        // Attempts draw independently too.
        let per_attempt: HashSet<Duration> = (1..8).map(|a| p.backoff_for(5, a)).collect();
        assert!(per_attempt.len() > 4);
        // A different seed reshuffles the draws.
        let p2 = RetryPolicy {
            seed: 43,
            ..p.clone()
        };
        assert!((0..32).any(|r| p.backoff_for(r, 2) != p2.backoff_for(r, 2)));
        // Zero jitter degenerates to the fixed backoff.
        let p0 = RetryPolicy {
            jitter: Duration::ZERO,
            ..p.clone()
        };
        assert_eq!(p0.backoff_for(7, 1), p0.backoff);
    }

    #[test]
    fn deadline_sweep_under_concurrent_in_flight_entries() {
        // Twelve migrations in flight at once: the even ranks commit
        // while the odd ranks stall past the deadline. The sweep must
        // reap exactly the stalled half without disturbing committers.
        const N: Rank = 12;
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let image: ProcessImage = Arc::new(move |cell: ProcessCell, rank: Rank| {
            if rank.is_multiple_of(2) {
                (commit_image())(cell, rank)
            } else {
                (reapable_image())(cell, rank)
            }
        });
        let sched = spawn_scheduler_with_config(
            &vm,
            h0,
            image,
            Box::new(IndexedDirectory::new()),
            SchedulerConfig {
                retry: None,
                deadline: Some(Duration::from_millis(200)),
            },
        );
        let client = SchedClient::new(&vm);
        let mut old = Vec::new();
        let mut joins = Vec::new();
        for rank in 0..N {
            let (pv, join) = if rank % 2 == 0 {
                vm.spawn(h0, &format!("p{rank}"), migrating_source(rank))
                    .unwrap()
            } else {
                // Accepts the signal but never transfers.
                vm.spawn(h0, &format!("p{rank}"), move |cell| {
                    assert_eq!(
                        cell.wait_signal(std::time::Duration::from_secs(5)),
                        Some(Signal::Migrate)
                    );
                    std::thread::sleep(Duration::from_millis(800));
                })
                .unwrap()
            };
            client.register(rank, pv).unwrap();
            old.push(pv);
            joins.push(join);
        }
        for rank in 0..N {
            client.migrate_async(rank, h1).unwrap();
        }
        for rank in (0..N).filter(|r| r % 2 == 0) {
            let v = client.wait_migration_done(rank).unwrap();
            assert_eq!(v.host, h1, "rank {rank} must land on h1");
        }
        for rank in (0..N).filter(|r| r % 2 == 1) {
            let err = client.wait_migration_done(rank).unwrap_err();
            assert!(err.contains("deadline"), "rank {rank}: {err}");
            // Directory rolled back to the (stalled but live) source.
            let (status, vmid) = client.lookup(rank).unwrap();
            assert_eq!(status, ExeStatus::Running);
            assert_eq!(vmid, Some(old[rank]));
        }
        for j in joins {
            j.join().unwrap();
        }
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
        let recs = sched.records();
        assert_eq!(recs.len(), N);
        let committed = recs
            .iter()
            .filter(|r| r.reached(MigrationPhase::Committed))
            .count();
        let aborted = recs
            .iter()
            .filter(|r| r.reached(MigrationPhase::Aborted))
            .count();
        assert_eq!((committed, aborted), (N / 2, N / 2));
    }

    #[test]
    fn drain_of_unknown_host_fails() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        let err = client
            .drain_host(HostId(99), DrainPoolConfig::default())
            .unwrap_err();
        assert!(matches!(err, FailCause::HostNotMember(HostId(99))), "{err}");
    }

    #[test]
    fn drain_of_empty_host_trivially_evacuates() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h0, null_image());
        let client = SchedClient::new(&vm);
        let report = client.drain_host(h1, DrainPoolConfig::default()).unwrap();
        assert_eq!(
            report.outcome,
            DrainOutcome::Evacuated {
                completed: 0,
                retried: 0
            }
        );
        assert!(report.per_rank.is_empty());
        assert!(!vm.host_is_draining(h1), "flag must clear on completion");
    }

    #[test]
    fn drain_overflow_is_rejected_before_any_work() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h0, null_image());
        let client = SchedClient::new(&vm);
        client.register(0, Vmid { host: h1, pid: 50 }).unwrap();
        client.register(1, Vmid { host: h1, pid: 51 }).unwrap();
        let pool = DrainPoolConfig {
            max_workers: 1,
            job_queue_size: 0,
            ..DrainPoolConfig::default()
        };
        let err = client.drain_host(h1, pool).unwrap_err();
        assert_eq!(
            err,
            FailCause::DrainOverflow {
                ranks: 2,
                capacity: 1
            }
        );
        assert!(!vm.host_is_draining(h1), "rejected drain must not flag");
        // A zero-width pool can hold nothing at all.
        let err = client
            .drain_host(
                h1,
                DrainPoolConfig {
                    max_workers: 0,
                    ..DrainPoolConfig::default()
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            FailCause::DrainOverflow {
                ranks: 2,
                capacity: 0
            }
        );
    }

    #[test]
    fn draining_host_refuses_inbound_migrations_and_double_drain() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler_with_config(
            &vm,
            h0,
            reapable_image(),
            Box::new(IndexedDirectory::new()),
            SchedulerConfig {
                retry: None,
                deadline: Some(Duration::from_millis(300)),
            },
        );
        let client = SchedClient::new(&vm);
        // The evacuee accepts the signal but stalls, keeping the drain
        // open until the deadline sweep aborts it.
        let (pv, pjoin) = vm
            .spawn(h1, "p0", move |cell| {
                assert_eq!(
                    cell.wait_signal(std::time::Duration::from_secs(5)),
                    Some(Signal::Migrate)
                );
                std::thread::sleep(Duration::from_millis(900));
            })
            .unwrap();
        client.register(0, pv).unwrap();
        // A bystander rank elsewhere, backed by a live blocked process.
        let (bv, _bjoin) = vm
            .spawn(h0, "p1", |cell| {
                let _ = cell.wait_signal(std::time::Duration::from_secs(2));
            })
            .unwrap();
        client.register(1, bv).unwrap();

        client
            .drain_host_async(h1, DrainPoolConfig::default())
            .unwrap();
        // Let the scheduler admit the drain and raise the flag.
        let deadline = Instant::now() + Duration::from_secs(2);
        while !vm.host_is_draining(h1) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(vm.host_is_draining(h1));

        // Admission control: no migrating onto an evacuating host.
        let err = client.migrate(1, h1).unwrap_err();
        assert!(err.contains("draining"), "{err}");
        // And no second drain of the same host.
        let err = client
            .drain_host(h1, DrainPoolConfig::default())
            .unwrap_err();
        assert!(
            matches!(err, FailCause::HostDraining(h) if h == h1),
            "{err}"
        );

        // The stalled evacuee is deadline-swept into a final abort; the
        // drain still terminates with a verdict.
        let report = client.wait_drain_done(h1).unwrap();
        assert_eq!(
            report.outcome,
            DrainOutcome::PartiallyEvacuated {
                completed: 0,
                aborted: 1,
                retried: 0
            }
        );
        assert_eq!(report.per_rank.len(), 1);
        assert!(
            matches!(report.per_rank[0], (0, DrainRankResult::Aborted(_))),
            "{:?}",
            report.per_rank
        );
        assert!(!vm.host_is_draining(h1), "flag must clear after verdict");
        pjoin.join().unwrap();
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
    }

    #[test]
    fn drain_pumps_gang_through_bounded_pool() {
        const N: Rank = 6;
        let vm = VirtualMachine::new(snow_trace::Tracer::new(), snow_net::TimeScale::ZERO);
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ideal());
        let h2 = vm.add_host(HostSpec::ideal());
        let _ = h2;
        let sched = spawn_scheduler(&vm, h0, commit_image());
        let client = SchedClient::new(&vm);
        let mut joins = Vec::new();
        for rank in 0..N {
            let (pv, join) = vm
                .spawn(h1, &format!("p{rank}"), migrating_source(rank))
                .unwrap();
            client.register(rank, pv).unwrap();
            joins.push(join);
        }
        let report = client
            .drain_host(
                h1,
                DrainPoolConfig {
                    max_workers: 2,
                    job_queue_size: 16,
                    ..DrainPoolConfig::default()
                },
            )
            .unwrap();
        assert_eq!(
            report.outcome,
            DrainOutcome::Evacuated {
                completed: N,
                retried: 0
            }
        );
        assert_eq!(report.per_rank.len(), N);
        for (rank, res) in &report.per_rank {
            match res {
                DrainRankResult::Completed(v) => {
                    assert_ne!(v.host, h1, "rank {rank} must leave h1")
                }
                other => panic!("rank {rank}: {other:?}"),
            }
        }
        // Every rank is resolvable at its new home.
        for rank in 0..N {
            let (status, vmid) = client.lookup(rank).unwrap();
            assert_eq!(status, ExeStatus::Running);
            assert_ne!(vmid.unwrap().host, h1);
        }
        for j in joins {
            j.join().unwrap();
        }
        for j in sched.take_init_joins() {
            j.join().unwrap();
        }
        // Exactly one terminal metrics record, and the pool bound held.
        let drains = vm.shared().tracer().metrics().drains();
        assert_eq!(drains.len(), 1, "one drain → one record");
        let d = &drains[0];
        assert_eq!((d.ranks, d.completed, d.aborted), (N, N, 0));
        assert_eq!(d.max_workers, 2);
        assert!(
            d.peak_active >= 1 && d.peak_active <= 2,
            "pool bound violated: peak {}",
            d.peak_active
        );
        assert_eq!(d.outcome, "evacuated");
        assert!(!vm.host_is_draining(h1));
    }

    #[test]
    fn second_migration_of_same_rank_while_in_flight_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let _sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        // A process that ignores the signal, keeping the migration
        // in flight.
        let (pv, _join) = vm
            .spawn(h, "p0", |cell| {
                std::thread::sleep(std::time::Duration::from_millis(300));
                let _ = cell.poll_signal();
            })
            .unwrap();
        client.register(0, pv).unwrap();
        client.migrate_async(0, h).unwrap();
        // Give the scheduler a beat to open the in-flight entry.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let err = client.migrate(0, h).unwrap_err();
        assert!(
            err.contains("migrating") || err.contains("not running"),
            "{err}"
        );
    }
}
