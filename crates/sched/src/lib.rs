//! # snow-sched — the scheduler
//!
//! The paper requires a scheduler that (§2): (i) tracks hosts and
//! processes, (ii) provides a scalable lookup service mapping ranks to
//! vmids, and (iii) coordinates migration on the source and destination
//! computers. The paper uses a centralized scheduler "for the sake of
//! simplicity" and notes any directory meeting the requirements works;
//! we mirror that: the [`directory::Directory`] trait abstracts the PL
//! store, with [`directory::IndexedDirectory`] (dense O(1) rank-indexed
//! PL table) as the default backend.
//!
//! The migration choreography (§2.2, §3.2.2):
//!
//! 1. A user asks the scheduler to migrate `rank` to a host
//!    ([`snow_vm::wire::SchedRequest::Migrate`]).
//! 2. The scheduler *initializes* a process on the destination — remote
//!    invocation of the migration-enabled executable — then sends the
//!    `migration_request` signal to the migrating process.
//! 3. The migrating process answers with `migration_start` and receives
//!    the initialized process's vmid.
//! 4. The initialized process reports `restore_complete`, receives the
//!    PL table, and confirms `migration_commit`; the scheduler updates
//!    its books and notifies the original requester.
//!
//! Throughout the migration the PL table already maps the rank to the
//! *initialized* process, so peers whose `conn_req` bounces redirect
//! there on demand — no broadcast, no forwarding (§3.1).

#![warn(missing_docs)]

pub mod client;
pub mod directory;
pub mod records;
pub mod scheduler;

pub use client::{DrainReport, SchedClient};
pub use directory::TwoLevelDirectory;
pub use directory::{CentralTable, Directory, IndexedDirectory, PlEntry};
pub use records::{MigrationPhase, MigrationRecord};
pub use scheduler::{
    spawn_scheduler, spawn_scheduler_with_config, spawn_scheduler_with_directory, ProcessImage,
    RetryPolicy, SchedulerConfig, SchedulerHandle,
};
