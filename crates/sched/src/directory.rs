//! Process-location directory backends.
//!
//! §2 of the paper: the lookup service "could have a centralized or
//! distributed structure depending on the applications' needs" — DNS,
//! LDAP, Chord and Globe are all cited as viable. The [`Directory`]
//! trait captures the three operations the protocol needs; the default
//! [`CentralTable`] is the paper's simple centralized server.

use snow_vm::wire::ExeStatus;
use snow_vm::{Rank, Vmid};
use std::collections::BTreeMap;

/// One PL-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlEntry {
    /// Current (or new, when migrating) location.
    pub vmid: Vmid,
    /// Execution status reported to lookups.
    pub status: ExeStatus,
}

/// Abstract process-location directory.
pub trait Directory: Send {
    /// Insert or overwrite a rank's entry.
    fn insert(&mut self, rank: Rank, entry: PlEntry);
    /// Look up a rank.
    fn lookup(&self, rank: Rank) -> Option<PlEntry>;
    /// All entries, ordered by rank (the PL table shipped to an
    /// initialized process, Fig 7 line 6).
    fn entries(&self) -> Vec<(Rank, PlEntry)>;
    /// Number of known ranks.
    fn len(&self) -> usize {
        self.entries().len()
    }
    /// True when no rank is registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Centralized in-memory PL table (the paper's prototype scheduler).
#[derive(Debug, Clone, Default)]
pub struct CentralTable {
    rows: BTreeMap<Rank, PlEntry>,
}

impl CentralTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Directory for CentralTable {
    fn insert(&mut self, rank: Rank, entry: PlEntry) {
        self.rows.insert(rank, entry);
    }

    fn lookup(&self, rank: Rank) -> Option<PlEntry> {
        self.rows.get(&rank).copied()
    }

    fn entries(&self) -> Vec<(Rank, PlEntry)> {
        self.rows.iter().map(|(r, e)| (*r, *e)).collect()
    }
}

/// Dense rank-indexed PL table: O(1) lookup and insert.
///
/// SNOW ranks are dense small integers assigned at launch (0..n), so a
/// flat `Vec<Option<PlEntry>>` indexed by rank beats any tree or hash
/// structure: a lookup is one bounds check and one array load. This is
/// the default directory for the scheduler — at thousands of ranks the
/// `CentralTable` BTreeMap's O(log n) pointer chase on *every* consult
/// (each nacked sender consults the scheduler, Fig 8 line 4) shows up
/// in the scale bench.
///
/// Degrades gracefully on sparse rank spaces: the vector grows to the
/// largest rank seen, so pathological rank values waste memory, not
/// time. The launch paths in this repo always use dense ranks.
#[derive(Debug, Clone, Default)]
pub struct IndexedDirectory {
    rows: Vec<Option<PlEntry>>,
    live: usize,
}

impl IndexedDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty directory pre-sized for `n` ranks (avoids regrowth during
    /// the launch registration burst).
    pub fn with_capacity(n: usize) -> Self {
        IndexedDirectory {
            rows: vec![None; n],
            live: 0,
        }
    }
}

impl Directory for IndexedDirectory {
    fn insert(&mut self, rank: Rank, entry: PlEntry) {
        if rank >= self.rows.len() {
            self.rows.resize(rank + 1, None);
        }
        if self.rows[rank].replace(entry).is_none() {
            self.live += 1;
        }
    }

    fn lookup(&self, rank: Rank) -> Option<PlEntry> {
        self.rows.get(rank).copied().flatten()
    }

    fn entries(&self) -> Vec<(Rank, PlEntry)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(r, e)| e.map(|e| (r, e)))
            .collect()
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// A two-level hierarchical directory: ranks are hashed into `fan`
/// *domains*, each holding its own table — the shape of the DNS/LDAP-
/// style deployments §2 suggests for multi-domain environments. Lookup
/// cost is one domain hop plus one leaf access; the counters make that
/// observable for scalability experiments.
#[derive(Debug, Default)]
pub struct TwoLevelDirectory {
    domains: Vec<CentralTable>,
    /// Accesses that touched the domain level.
    pub domain_hops: std::cell::Cell<u64>,
    /// Accesses that touched a leaf table.
    pub leaf_hits: std::cell::Cell<u64>,
}

impl TwoLevelDirectory {
    /// Create a directory with `fan` leaf domains.
    pub fn new(fan: usize) -> Self {
        assert!(fan >= 1, "at least one domain");
        TwoLevelDirectory {
            domains: vec![CentralTable::new(); fan],
            domain_hops: std::cell::Cell::new(0),
            leaf_hits: std::cell::Cell::new(0),
        }
    }

    fn domain_of(&self, rank: Rank) -> usize {
        // Knuth multiplicative hash keeps ranks spread over domains.
        (rank.wrapping_mul(2654435761) >> 4) % self.domains.len()
    }

    /// Number of domains.
    pub fn fan(&self) -> usize {
        self.domains.len()
    }
}

impl Directory for TwoLevelDirectory {
    fn insert(&mut self, rank: Rank, entry: PlEntry) {
        let d = self.domain_of(rank);
        self.domain_hops.set(self.domain_hops.get() + 1);
        self.leaf_hits.set(self.leaf_hits.get() + 1);
        self.domains[d].insert(rank, entry);
    }

    fn lookup(&self, rank: Rank) -> Option<PlEntry> {
        let d = self.domain_of(rank);
        self.domain_hops.set(self.domain_hops.get() + 1);
        self.leaf_hits.set(self.leaf_hits.get() + 1);
        self.domains[d].lookup(rank)
    }

    fn entries(&self) -> Vec<(Rank, PlEntry)> {
        let mut all: Vec<(Rank, PlEntry)> = self.domains.iter().flat_map(|d| d.entries()).collect();
        all.sort_by_key(|(r, _)| *r);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_vm::HostId;

    fn vmid(h: u32, p: u32) -> Vmid {
        Vmid {
            host: HostId(h),
            pid: p,
        }
    }

    #[test]
    fn insert_lookup_overwrite() {
        let mut t = CentralTable::new();
        assert!(t.is_empty());
        t.insert(
            0,
            PlEntry {
                vmid: vmid(0, 0),
                status: ExeStatus::Running,
            },
        );
        assert_eq!(t.lookup(0).unwrap().vmid, vmid(0, 0));
        t.insert(
            0,
            PlEntry {
                vmid: vmid(1, 0),
                status: ExeStatus::Migrated,
            },
        );
        let e = t.lookup(0).unwrap();
        assert_eq!(e.vmid, vmid(1, 0));
        assert_eq!(e.status, ExeStatus::Migrated);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn entries_ordered_by_rank() {
        let mut t = CentralTable::new();
        for r in [3usize, 1, 2, 0] {
            t.insert(
                r,
                PlEntry {
                    vmid: vmid(0, r as u32),
                    status: ExeStatus::Running,
                },
            );
        }
        let ranks: Vec<Rank> = t.entries().iter().map(|(r, _)| *r).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn missing_rank_is_none() {
        let t = CentralTable::new();
        assert_eq!(t.lookup(9), None);
    }

    #[test]
    fn indexed_roundtrip_matches_central_table() {
        let mut idx = IndexedDirectory::with_capacity(8);
        let mut ct = CentralTable::new();
        assert!(idx.is_empty());
        for r in [5usize, 0, 3, 7, 3, 12] {
            let e = PlEntry {
                vmid: vmid(0, r as u32),
                status: ExeStatus::Running,
            };
            idx.insert(r, e);
            ct.insert(r, e);
        }
        assert_eq!(idx.len(), ct.len());
        assert_eq!(idx.entries(), ct.entries(), "same ordered snapshot");
        for r in 0..16 {
            assert_eq!(idx.lookup(r), ct.lookup(r), "rank {r}");
        }
    }

    #[test]
    fn indexed_overwrite_keeps_count() {
        let mut idx = IndexedDirectory::new();
        let running = PlEntry {
            vmid: vmid(0, 0),
            status: ExeStatus::Running,
        };
        let migrated = PlEntry {
            vmid: vmid(1, 0),
            status: ExeStatus::Migrated,
        };
        idx.insert(4, running);
        idx.insert(4, migrated);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.lookup(4), Some(migrated));
        assert_eq!(idx.lookup(3), None, "holes stay empty");
        assert_eq!(idx.lookup(99), None, "out of range is None, not panic");
    }

    #[test]
    fn two_level_roundtrip_and_ordering() {
        let mut d = TwoLevelDirectory::new(4);
        for r in (0..32).rev() {
            d.insert(
                r,
                PlEntry {
                    vmid: vmid(0, r as u32),
                    status: ExeStatus::Running,
                },
            );
        }
        for r in 0..32 {
            assert_eq!(d.lookup(r).unwrap().vmid, vmid(0, r as u32));
        }
        assert_eq!(d.lookup(99), None);
        let ranks: Vec<Rank> = d.entries().iter().map(|(r, _)| *r).collect();
        assert_eq!(ranks, (0..32).collect::<Vec<_>>());
        assert!(d.domain_hops.get() >= 64, "accesses are counted");
    }

    #[test]
    fn two_level_spreads_ranks() {
        let mut d = TwoLevelDirectory::new(4);
        for r in 0..64 {
            d.insert(
                r,
                PlEntry {
                    vmid: vmid(0, r as u32),
                    status: ExeStatus::Running,
                },
            );
        }
        // Every domain should have received some ranks.
        let per_domain: Vec<usize> = d.domains.iter().map(|t| t.len()).collect();
        assert!(per_domain.iter().all(|&n| n > 0), "{per_domain:?}");
        assert_eq!(per_domain.iter().sum::<usize>(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_fan_rejected() {
        let _ = TwoLevelDirectory::new(0);
    }
}
