//! Harness-side scheduler client.
//!
//! Test harnesses and benchmark drivers are not SNOW processes, but they
//! need to register ranks, request migrations (the "user sends a request
//! to the scheduler" of §2.2) and query locations. `SchedClient` owns a
//! private mailbox for the replies.

use snow_net::LinkModel;
use snow_vm::wire::{
    Ctrl, DrainOutcome, DrainPoolConfig, DrainRankResult, ExeStatus, FailCause, Incoming,
    SchedReply, SchedRequest,
};
use snow_vm::{HostId, NodeId, Post, PostSender, Rank, VirtualMachine, Vmid};
use std::sync::Arc;
use std::time::Duration;

/// Default patience for scheduler replies.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Terminal verdict of one host drain, as seen by the requester.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// The host that was evacuated.
    pub host: HostId,
    /// Aggregate verdict.
    pub outcome: DrainOutcome,
    /// Per-rank dispositions, in completion order.
    pub per_rank: Vec<(Rank, DrainRankResult)>,
}

/// A blocking client for the scheduler.
pub struct SchedClient {
    shared: Arc<snow_vm::vm::VmShared>,
    reply_tx: PostSender<Incoming>,
    post: Post<Incoming>,
    /// Completions that arrived while waiting for a different rank
    /// (several migrations may be in flight through one client).
    done: parking_lot::Mutex<std::collections::HashMap<Rank, Vmid>>,
    /// Failure verdicts buffered the same way: with several migrations
    /// in flight, one rank's abort must not be claimed by another
    /// rank's waiter.
    failed: parking_lot::Mutex<std::collections::HashMap<Rank, FailCause>>,
    /// Drain verdicts buffered per host while a waiter is blocked on a
    /// different host (or on an individual migration).
    drained: parking_lot::Mutex<std::collections::HashMap<HostId, Result<DrainReport, FailCause>>>,
}

impl SchedClient {
    /// Create a client against a running environment.
    pub fn new(vm: &VirtualMachine) -> Self {
        let (reply_tx, post) = Post::channel(LinkModel::INSTANT, vm.shared().time_scale());
        SchedClient {
            shared: Arc::clone(vm.shared()),
            reply_tx,
            post,
            done: parking_lot::Mutex::new(std::collections::HashMap::new()),
            failed: parking_lot::Mutex::new(std::collections::HashMap::new()),
            drained: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Buffer a stray reply for the waiter it belongs to. Returns the
    /// reply back if it is not a parkable verdict.
    fn park(&self, reply: SchedReply) -> Option<SchedReply> {
        match reply {
            SchedReply::MigrationDone { rank, new_vmid } => {
                self.done.lock().insert(rank, new_vmid);
                None
            }
            SchedReply::MigrationFailed { rank, cause } => {
                self.failed.lock().insert(rank, cause);
                None
            }
            SchedReply::DrainDone {
                host,
                outcome,
                per_rank,
            } => {
                self.drained.lock().insert(
                    host,
                    Ok(DrainReport {
                        host,
                        outcome,
                        per_rank,
                    }),
                );
                None
            }
            SchedReply::DrainFailed { host, cause } => {
                self.drained.lock().insert(host, Err(cause));
                None
            }
            other => Some(other),
        }
    }

    fn send(&self, req: SchedRequest) -> Result<(), String> {
        let sched = self
            .shared
            .scheduler_vmid()
            .ok_or_else(|| "no scheduler installed".to_string())?;
        self.shared
            .transport()
            .send_to(
                NodeId::CLIENT,
                sched,
                Incoming::Ctrl(Ctrl::SchedRequest(req)),
                snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
                snow_net::FrameClass::Control,
            )
            .map_err(|_| "scheduler terminated".to_string())
    }

    fn recv_reply(&self) -> Result<SchedReply, String> {
        let deadline = std::time::Instant::now() + REPLY_TIMEOUT;
        loop {
            let left = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| "timed out waiting for scheduler".to_string())?;
            match self.post.recv_timeout(left) {
                Ok(Some(Incoming::Ctrl(Ctrl::Sched(reply)))) => return Ok(reply),
                Ok(Some(_)) => continue, // stray traffic; clients only expect replies
                Ok(None) => continue,
                Err(_) => return Err("client mailbox closed".into()),
            }
        }
    }

    /// Register a rank's initial location.
    pub fn register(&self, rank: Rank, vmid: Vmid) -> Result<(), String> {
        self.send(SchedRequest::Register { rank, vmid })
    }

    /// Mark a rank terminated.
    pub fn terminated(&self, rank: Rank) -> Result<(), String> {
        self.send(SchedRequest::Terminated { rank })
    }

    /// Look up a rank's status and location.
    pub fn lookup(&self, rank: Rank) -> Result<(ExeStatus, Option<Vmid>), String> {
        self.send(SchedRequest::Lookup {
            about: rank,
            reply: self.reply_tx.clone(),
        })?;
        loop {
            // Migration and drain verdicts crossing a lookup belong to
            // their own waiters; park them instead of dropping them.
            match self.park(self.recv_reply()?) {
                Some(SchedReply::Location {
                    about,
                    status,
                    vmid,
                }) if about == rank => return Ok((status, vmid)),
                Some(SchedReply::Error { reason }) => return Err(reason),
                _ => continue,
            }
        }
    }

    /// Request a migration without waiting for completion.
    pub fn migrate_async(&self, rank: Rank, to_host: HostId) -> Result<(), String> {
        self.send(SchedRequest::Migrate {
            rank,
            to_host,
            reply: self.reply_tx.clone(),
        })
    }

    /// Request a migration and block until it commits; returns the new
    /// vmid.
    pub fn migrate(&self, rank: Rank, to_host: HostId) -> Result<Vmid, String> {
        self.migrate_async(rank, to_host)?;
        self.wait_migration_done(rank)
    }

    /// Wait for a previously requested migration of `rank` to commit.
    /// Completions and failures for other in-flight ranks observed
    /// meanwhile are buffered for their own waiters.
    pub fn wait_migration_done(&self, rank: Rank) -> Result<Vmid, String> {
        self.wait_migration_result(rank).map_err(|e| e.to_string())
    }

    /// Typed variant of [`wait_migration_done`](Self::wait_migration_done):
    /// a failed migration yields the scheduler's [`FailCause`] verdict
    /// instead of its rendering.
    pub fn wait_migration_result(&self, rank: Rank) -> Result<Vmid, FailCause> {
        if let Some(v) = self.done.lock().remove(&rank) {
            return Ok(v);
        }
        if let Some(e) = self.failed.lock().remove(&rank) {
            return Err(e);
        }
        loop {
            match self.recv_reply().map_err(|e| FailCause::Aborted {
                attempts: 0,
                reason: e,
            })? {
                SchedReply::MigrationDone { rank: r, new_vmid } if r == rank => {
                    return Ok(new_vmid);
                }
                SchedReply::MigrationFailed { rank: r, cause } if r == rank => {
                    return Err(cause);
                }
                other => {
                    self.park(other);
                }
            }
        }
    }

    /// Ask the scheduler to evacuate every running rank off `host`
    /// through its bounded worker pool, without waiting for the verdict.
    pub fn drain_host_async(&self, host: HostId, pool: DrainPoolConfig) -> Result<(), String> {
        self.send(SchedRequest::HostDrain {
            host,
            pool,
            reply: self.reply_tx.clone(),
        })
    }

    /// Wait for a previously requested drain of `host` to reach its
    /// terminal verdict. Individual migration verdicts observed
    /// meanwhile are buffered for their own waiters.
    pub fn wait_drain_done(&self, host: HostId) -> Result<DrainReport, FailCause> {
        if let Some(r) = self.drained.lock().remove(&host) {
            return r;
        }
        loop {
            match self.recv_reply().map_err(|e| FailCause::Aborted {
                attempts: 0,
                reason: e,
            })? {
                SchedReply::DrainDone {
                    host: h,
                    outcome,
                    per_rank,
                } if h == host => {
                    return Ok(DrainReport {
                        host,
                        outcome,
                        per_rank,
                    });
                }
                SchedReply::DrainFailed { host: h, cause } if h == host => return Err(cause),
                other => {
                    self.park(other);
                }
            }
        }
    }

    /// Request a drain of `host` and block until every migrant reaches a
    /// terminal disposition.
    pub fn drain_host(
        &self,
        host: HostId,
        pool: DrainPoolConfig,
    ) -> Result<DrainReport, FailCause> {
        self.drain_host_async(host, pool)
            .map_err(|e| FailCause::Aborted {
                attempts: 0,
                reason: e,
            })?;
        self.wait_drain_done(host)
    }

    /// Ask the scheduler to stop (environment teardown).
    pub fn shutdown(&self) -> Result<(), String> {
        self.send(SchedRequest::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{null_image, spawn_scheduler};
    use snow_vm::HostSpec;

    #[test]
    fn client_without_scheduler_errors() {
        let vm = VirtualMachine::ideal();
        let client = SchedClient::new(&vm);
        assert!(client
            .register(
                0,
                Vmid {
                    host: HostId(0),
                    pid: 0
                }
            )
            .is_err());
    }

    #[test]
    fn shutdown_stops_scheduler() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        client.shutdown().unwrap();
        sched.join();
        // Requests now fail: the scheduler unregistered on exit.
        assert!(client.lookup(0).is_err());
    }
}
