//! Harness-side scheduler client.
//!
//! Test harnesses and benchmark drivers are not SNOW processes, but they
//! need to register ranks, request migrations (the "user sends a request
//! to the scheduler" of §2.2) and query locations. `SchedClient` owns a
//! private mailbox for the replies.

use snow_net::LinkModel;
use snow_vm::wire::{Ctrl, ExeStatus, Incoming, SchedReply, SchedRequest};
use snow_vm::{HostId, Post, PostSender, Rank, VirtualMachine, Vmid};
use std::sync::Arc;
use std::time::Duration;

/// Default patience for scheduler replies.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking client for the scheduler.
pub struct SchedClient {
    shared: Arc<snow_vm::vm::VmShared>,
    reply_tx: PostSender<Incoming>,
    post: Post<Incoming>,
    /// Completions that arrived while waiting for a different rank
    /// (several migrations may be in flight through one client).
    done: parking_lot::Mutex<std::collections::HashMap<Rank, Vmid>>,
    /// Failure verdicts buffered the same way: with several migrations
    /// in flight, one rank's abort must not be claimed by another
    /// rank's waiter.
    failed: parking_lot::Mutex<std::collections::HashMap<Rank, String>>,
}

impl SchedClient {
    /// Create a client against a running environment.
    pub fn new(vm: &VirtualMachine) -> Self {
        let (reply_tx, post) = Post::channel(LinkModel::INSTANT, vm.shared().time_scale());
        SchedClient {
            shared: Arc::clone(vm.shared()),
            reply_tx,
            post,
            done: parking_lot::Mutex::new(std::collections::HashMap::new()),
            failed: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    fn send(&self, req: SchedRequest) -> Result<(), String> {
        let sched = self
            .shared
            .scheduler_vmid()
            .ok_or_else(|| "no scheduler installed".to_string())?;
        let addr = self
            .shared
            .registry()
            .addr_of(sched)
            .ok_or_else(|| "scheduler terminated".to_string())?;
        addr.inbox
            .send(
                Incoming::Ctrl(Ctrl::SchedRequest(req)),
                snow_vm::wire::ENVELOPE_OVERHEAD_BYTES,
            )
            .map_err(|_| "scheduler terminated".to_string())
    }

    fn recv_reply(&self) -> Result<SchedReply, String> {
        let deadline = std::time::Instant::now() + REPLY_TIMEOUT;
        loop {
            let left = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| "timed out waiting for scheduler".to_string())?;
            match self.post.recv_timeout(left) {
                Ok(Some(Incoming::Ctrl(Ctrl::Sched(reply)))) => return Ok(reply),
                Ok(Some(_)) => continue, // stray traffic; clients only expect replies
                Ok(None) => continue,
                Err(_) => return Err("client mailbox closed".into()),
            }
        }
    }

    /// Register a rank's initial location.
    pub fn register(&self, rank: Rank, vmid: Vmid) -> Result<(), String> {
        self.send(SchedRequest::Register { rank, vmid })
    }

    /// Mark a rank terminated.
    pub fn terminated(&self, rank: Rank) -> Result<(), String> {
        self.send(SchedRequest::Terminated { rank })
    }

    /// Look up a rank's status and location.
    pub fn lookup(&self, rank: Rank) -> Result<(ExeStatus, Option<Vmid>), String> {
        self.send(SchedRequest::Lookup {
            about: rank,
            reply: self.reply_tx.clone(),
        })?;
        loop {
            match self.recv_reply()? {
                SchedReply::Location {
                    about,
                    status,
                    vmid,
                } if about == rank => return Ok((status, vmid)),
                // Migration verdicts crossing a lookup belong to their
                // own waiters; park them instead of dropping them.
                SchedReply::MigrationDone { rank: r, new_vmid } => {
                    self.done.lock().insert(r, new_vmid);
                }
                SchedReply::MigrationFailed { rank: r, reason } => {
                    self.failed.lock().insert(r, reason);
                }
                SchedReply::Error { reason } => return Err(reason),
                _ => continue,
            }
        }
    }

    /// Request a migration without waiting for completion.
    pub fn migrate_async(&self, rank: Rank, to_host: HostId) -> Result<(), String> {
        self.send(SchedRequest::Migrate {
            rank,
            to_host,
            reply: self.reply_tx.clone(),
        })
    }

    /// Request a migration and block until it commits; returns the new
    /// vmid.
    pub fn migrate(&self, rank: Rank, to_host: HostId) -> Result<Vmid, String> {
        self.migrate_async(rank, to_host)?;
        self.wait_migration_done(rank)
    }

    /// Wait for a previously requested migration of `rank` to commit.
    /// Completions and failures for other in-flight ranks observed
    /// meanwhile are buffered for their own waiters.
    pub fn wait_migration_done(&self, rank: Rank) -> Result<Vmid, String> {
        if let Some(v) = self.done.lock().remove(&rank) {
            return Ok(v);
        }
        if let Some(e) = self.failed.lock().remove(&rank) {
            return Err(e);
        }
        loop {
            match self.recv_reply()? {
                SchedReply::MigrationDone { rank: r, new_vmid } => {
                    if r == rank {
                        return Ok(new_vmid);
                    }
                    self.done.lock().insert(r, new_vmid);
                }
                SchedReply::MigrationFailed { rank: r, reason } => {
                    if r == rank {
                        return Err(reason);
                    }
                    self.failed.lock().insert(r, reason);
                }
                SchedReply::Error { reason } => return Err(reason),
                _ => continue,
            }
        }
    }

    /// Ask the scheduler to stop (environment teardown).
    pub fn shutdown(&self) -> Result<(), String> {
        self.send(SchedRequest::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{null_image, spawn_scheduler};
    use snow_vm::HostSpec;

    #[test]
    fn client_without_scheduler_errors() {
        let vm = VirtualMachine::ideal();
        let client = SchedClient::new(&vm);
        assert!(client
            .register(
                0,
                Vmid {
                    host: HostId(0),
                    pid: 0
                }
            )
            .is_err());
    }

    #[test]
    fn shutdown_stops_scheduler() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let sched = spawn_scheduler(&vm, h, null_image());
        let client = SchedClient::new(&vm);
        client.shutdown().unwrap();
        sched.join();
        // Requests now fail: the scheduler unregistered on exit.
        assert!(client.lookup(0).is_err());
    }
}
