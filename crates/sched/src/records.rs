//! Migration bookkeeping (the scheduler "performs bookkeeping on process
//! migration records", §5).

use parking_lot::Mutex;
use snow_vm::{Rank, Vmid};
use std::sync::Arc;
use std::time::Instant;

/// Phases of one migration, in choreography order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigrationPhase {
    /// Migrate request accepted; destination process initialized.
    Requested,
    /// `migration_start` received from the migrating process.
    Started,
    /// `restore_complete` received from the initialized process.
    Restored,
    /// `migration_commit` received; migration finished.
    Committed,
    /// The transfer failed and the migration was re-targeted at an
    /// alternate host (one stamp per retry).
    Retried,
    /// The migration was abandoned; the directory rolled back to the
    /// still-running source.
    Aborted,
}

/// The scheduler's record of one migration.
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// The migrated rank.
    pub rank: Rank,
    /// Location before migration.
    pub old_vmid: Vmid,
    /// Location after migration (the initialized process; the *latest*
    /// target when the migration was re-targeted by the retry policy).
    pub new_vmid: Vmid,
    /// Transfer attempts made so far (1 = no retries).
    pub attempts: u32,
    /// Wall-clock timestamps per completed phase.
    pub phases: Vec<(MigrationPhase, Instant)>,
}

impl MigrationRecord {
    /// Has the given phase completed?
    pub fn reached(&self, phase: MigrationPhase) -> bool {
        self.phases.iter().any(|(p, _)| *p == phase)
    }

    /// Seconds from request to commit, when committed.
    pub fn total_seconds(&self) -> Option<f64> {
        let t0 = self
            .phases
            .iter()
            .find(|(p, _)| *p == MigrationPhase::Requested)?
            .1;
        let t1 = self
            .phases
            .iter()
            .find(|(p, _)| *p == MigrationPhase::Committed)?
            .1;
        Some((t1 - t0).as_secs_f64())
    }
}

/// Shared, append-only record store surfaced through
/// [`crate::SchedulerHandle`].
#[derive(Debug, Clone, Default)]
pub struct RecordStore {
    inner: Arc<Mutex<Vec<MigrationRecord>>>,
}

impl RecordStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new record, returning its index.
    pub fn open(&self, rank: Rank, old_vmid: Vmid, new_vmid: Vmid) -> usize {
        let mut v = self.inner.lock();
        v.push(MigrationRecord {
            rank,
            old_vmid,
            new_vmid,
            attempts: 1,
            phases: vec![(MigrationPhase::Requested, Instant::now())],
        });
        v.len() - 1
    }

    /// Stamp a phase on record `idx`.
    pub fn stamp(&self, idx: usize, phase: MigrationPhase) {
        if let Some(r) = self.inner.lock().get_mut(idx) {
            r.phases.push((phase, Instant::now()));
        }
    }

    /// Point record `idx` at a replacement destination (retry policy)
    /// and count the new attempt.
    pub fn retarget(&self, idx: usize, new_vmid: Vmid) {
        if let Some(r) = self.inner.lock().get_mut(idx) {
            r.new_vmid = new_vmid;
            r.attempts += 1;
        }
    }

    /// Copy out all records.
    pub fn all(&self) -> Vec<MigrationRecord> {
        self.inner.lock().clone()
    }

    /// The most recently opened record for `rank`, if any.
    pub fn last_for(&self, rank: Rank) -> Option<MigrationRecord> {
        self.inner
            .lock()
            .iter()
            .rev()
            .find(|r| r.rank == rank)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_vm::HostId;

    fn vmid(h: u32, p: u32) -> Vmid {
        Vmid {
            host: HostId(h),
            pid: p,
        }
    }

    #[test]
    fn record_lifecycle() {
        let store = RecordStore::new();
        let idx = store.open(0, vmid(0, 0), vmid(1, 0));
        store.stamp(idx, MigrationPhase::Started);
        store.stamp(idx, MigrationPhase::Restored);
        store.stamp(idx, MigrationPhase::Committed);
        let recs = store.all();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert!(r.reached(MigrationPhase::Committed));
        assert!(r.total_seconds().unwrap() >= 0.0);
    }

    #[test]
    fn uncommitted_record_has_no_total() {
        let store = RecordStore::new();
        let idx = store.open(3, vmid(0, 0), vmid(1, 0));
        store.stamp(idx, MigrationPhase::Started);
        let r = &store.all()[0];
        assert!(r.reached(MigrationPhase::Started));
        assert!(!r.reached(MigrationPhase::Committed));
        assert_eq!(r.total_seconds(), None);
    }

    #[test]
    fn stamp_out_of_range_is_ignored() {
        let store = RecordStore::new();
        store.stamp(5, MigrationPhase::Committed);
        assert!(store.all().is_empty());
    }

    #[test]
    fn retarget_counts_attempts_and_moves_destination() {
        let store = RecordStore::new();
        let idx = store.open(1, vmid(0, 0), vmid(1, 0));
        store.stamp(idx, MigrationPhase::Started);
        store.retarget(idx, vmid(2, 0));
        store.stamp(idx, MigrationPhase::Retried);
        let r = &store.all()[idx];
        assert_eq!(r.attempts, 2);
        assert_eq!(r.new_vmid, vmid(2, 0));
        assert!(r.reached(MigrationPhase::Retried));
        assert!(!r.reached(MigrationPhase::Aborted));
    }

    #[test]
    fn last_for_returns_newest_record_of_rank() {
        let store = RecordStore::new();
        store.open(1, vmid(0, 0), vmid(1, 0));
        let idx = store.open(1, vmid(1, 0), vmid(2, 0));
        store.stamp(idx, MigrationPhase::Aborted);
        assert!(store.last_for(0).is_none());
        let r = store.last_for(1).unwrap();
        assert_eq!(r.old_vmid, vmid(1, 0));
        assert!(r.reached(MigrationPhase::Aborted));
    }
}
