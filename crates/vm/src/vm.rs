//! The virtual machine: membership, registries, spawning, signals.

use crate::daemon::{spawn_daemon, DaemonHandle, DaemonMsg};
use crate::faults::FaultLayer;
use crate::host::HostSpec;
use crate::ids::{HostId, Vmid};
use crate::post::{Post, PostSender};
use crate::process::ProcessCell;
use crate::shard::ShardedMap;
use crate::transport::{InProcTransport, Transport};
use crate::wire::{Incoming, Signal};
use crossbeam::channel::{self, Sender};
use parking_lot::{Mutex, RwLock};
use snow_net::{LinkModel, TimeScale};
use snow_trace::Tracer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Address record of one live process.
#[derive(Debug, Clone)]
pub struct ProcAddr {
    /// Control-grade sender into the process inbox.
    pub inbox: PostSender<Incoming>,
    /// Ordered signal queue.
    pub signals: Sender<Signal>,
    /// Where the process lives.
    pub host: HostId,
    /// Trace label.
    pub label: String,
}

/// Shared vmid → address table (process registry), sharded N ways so
/// concurrent routing lookups on distinct vmids never contend for one
/// global lock (see [`crate::shard`]).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    procs: Arc<ShardedMap<Vmid, ProcAddr>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a process address.
    pub fn register(&self, vmid: Vmid, addr: ProcAddr) {
        self.procs.insert(vmid, addr);
    }

    /// Remove a process (termination / migration completion).
    pub fn unregister(&self, vmid: Vmid) {
        self.procs.remove(&vmid);
    }

    /// Look up an address. Clones the record (including its label
    /// string); hot paths that only need one field should use
    /// [`Registry::with_addr`] instead.
    pub fn addr_of(&self, vmid: Vmid) -> Option<ProcAddr> {
        self.procs.get_cloned(&vmid)
    }

    /// Run `f` over the borrowed address record without cloning it —
    /// the zero-copy lookup for the send/route/signal hot paths. Holds
    /// one shard's read lock for the duration of `f`; do not block
    /// inside `f`.
    pub fn with_addr<R>(&self, vmid: Vmid, f: impl FnOnce(&ProcAddr) -> R) -> Option<R> {
        self.procs.with(&vmid, f)
    }

    /// Remove every process living on `host`; returns the removed vmids.
    pub fn remove_host(&self, host: HostId) -> Vec<Vmid> {
        self.procs.remove_if(|v, _| v.host == host)
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no process is registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

struct HostEntry {
    spec: HostSpec,
    daemon: DaemonHandle,
    next_pid: AtomicU32,
    /// Set while the host is being evacuated: no new vmids may be
    /// allocated on it (admission control for the drain engine).
    draining: AtomicBool,
}

/// Environment state shared by every process, daemon and the scheduler.
pub struct VmShared {
    hosts: RwLock<HashMap<HostId, Arc<HostEntry>>>,
    registry: Registry,
    scheduler: RwLock<Option<Vmid>>,
    tracer: Arc<Tracer>,
    scale: TimeScale,
    next_host: AtomicU32,
    /// Serialises host membership changes.
    membership: Mutex<()>,
    /// Deterministic fault injection (disarmed unless a plan is
    /// installed via [`VirtualMachine::set_fault_plan`]).
    faults: Arc<FaultLayer>,
    /// The backend carrying every cross-host service of §2.3.
    transport: Arc<dyn Transport>,
}

impl VmShared {
    /// The process registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The configured modeled-time scale.
    pub fn time_scale(&self) -> TimeScale {
        self.scale
    }

    /// The environment's fault layer.
    pub fn faults(&self) -> &Arc<FaultLayer> {
        &self.faults
    }

    /// The transport backend routing cross-host traffic.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Spec of a live host.
    pub fn host_spec(&self, host: HostId) -> Option<HostSpec> {
        self.hosts.read().get(&host).map(|e| e.spec)
    }

    /// Daemon handle of a live host.
    pub fn daemon(&self, host: HostId) -> Option<DaemonHandle> {
        self.hosts.read().get(&host).map(|e| e.daemon.clone())
    }

    /// Network path model between two hosts (bottleneck of uplinks);
    /// `INSTANT` when either host is unknown.
    pub fn path(&self, a: HostId, b: HostId) -> LinkModel {
        let hosts = self.hosts.read();
        match (hosts.get(&a), hosts.get(&b)) {
            (Some(x), Some(y)) => x.spec.path_to(&y.spec),
            _ => LinkModel::INSTANT,
        }
    }

    /// The scheduler's vmid, once one has been installed.
    pub fn scheduler_vmid(&self) -> Option<Vmid> {
        *self.scheduler.read()
    }

    /// Deliver a signal to a process's ordered signal queue through the
    /// transport's signaling service. Returns `false` when the process
    /// is unknown or has terminated.
    pub fn signal(&self, vmid: Vmid, sig: Signal) -> bool {
        self.transport.signal(vmid, sig)
    }

    /// Mark `host` as draining (or clear the mark). While draining no
    /// new vmid can be allocated on the host — placements and inbound
    /// migrations are refused — and the host's daemon nacks connection
    /// requests addressed to processes placed after the mark was set
    /// (there should be none; the daemon flag is the backstop). Returns
    /// `false` when the host is not a member.
    pub fn set_host_draining(&self, host: HostId, on: bool) -> bool {
        let entry = match self.hosts.read().get(&host) {
            Some(e) => Arc::clone(e),
            None => return false,
        };
        entry.draining.store(on, Ordering::SeqCst);
        entry.daemon.send(DaemonMsg::SetDraining {
            from_pid: on.then(|| entry.next_pid.load(Ordering::SeqCst)),
        });
        true
    }

    /// Is `host` currently being evacuated?
    pub fn host_is_draining(&self, host: HostId) -> bool {
        self.hosts
            .read()
            .get(&host)
            .is_some_and(|e| e.draining.load(Ordering::SeqCst))
    }
}

/// A running virtual machine environment.
#[derive(Clone)]
pub struct VirtualMachine {
    shared: Arc<VmShared>,
}

impl VirtualMachine {
    /// Create an empty environment on the default in-process transport.
    pub fn new(tracer: Arc<Tracer>, scale: TimeScale) -> Self {
        Self::with_transport(tracer, scale, Arc::new(InProcTransport::new()))
    }

    /// Create an empty environment on an explicit transport backend.
    /// Socket-backed transports carry real wire delays and must run at
    /// [`TimeScale::ZERO`] so modeled link delays do not stack on them.
    pub fn with_transport(
        tracer: Arc<Tracer>,
        scale: TimeScale,
        transport: Arc<dyn Transport>,
    ) -> Self {
        let registry = Registry::new();
        transport.attach(registry.clone());
        VirtualMachine {
            shared: Arc::new(VmShared {
                hosts: RwLock::new(HashMap::new()),
                registry,
                scheduler: RwLock::new(None),
                tracer,
                scale,
                next_host: AtomicU32::new(0),
                membership: Mutex::new(()),
                faults: Arc::new(FaultLayer::new()),
                transport,
            }),
        }
    }

    /// Convenience: an environment with no tracing, no modeled delays.
    pub fn ideal() -> Self {
        Self::new(Tracer::disabled(), TimeScale::ZERO)
    }

    /// The shared environment state.
    pub fn shared(&self) -> &Arc<VmShared> {
        &self.shared
    }

    /// A host joins the virtual machine; its daemon starts (§2: "the
    /// virtual machine daemon is executed on a host when it joins").
    pub fn add_host(&self, spec: HostSpec) -> HostId {
        let _guard = self.shared.membership.lock();
        let id = HostId(self.shared.next_host.fetch_add(1, Ordering::Relaxed));
        let daemon = spawn_daemon(
            id,
            self.shared.registry.clone(),
            Arc::clone(&self.shared.tracer),
            Arc::clone(&self.shared.faults),
        );
        self.shared.hosts.write().insert(
            id,
            Arc::new(HostEntry {
                spec,
                daemon: daemon.clone(),
                next_pid: AtomicU32::new(0),
                draining: AtomicBool::new(false),
            }),
        );
        self.shared.transport.host_joined(id.into(), Some(daemon));
        id
    }

    /// Add `n` identical hosts.
    pub fn add_hosts(&self, spec: HostSpec, n: usize) -> Vec<HostId> {
        (0..n).map(|_| self.add_host(spec)).collect()
    }

    /// A host leaves: its daemon nacks outstanding requests and stops,
    /// and its processes disappear from the registry. (The paper's
    /// protocols guarantee no residual dependency on departed hosts.)
    pub fn remove_host(&self, host: HostId) {
        let _guard = self.shared.membership.lock();
        let entry = self.shared.hosts.write().remove(&host);
        self.shared.transport.host_left(host.into());
        if let Some(entry) = entry {
            entry.daemon.send(DaemonMsg::Shutdown);
        }
        self.shared.registry.remove_host(host);
    }

    /// Is `host` currently a member?
    pub fn has_host(&self, host: HostId) -> bool {
        self.shared.hosts.read().contains_key(&host)
    }

    /// The current member hosts, sorted by id (deterministic order for
    /// retry-policy re-targeting).
    pub fn host_ids(&self) -> Vec<HostId> {
        let mut ids: Vec<HostId> = self.shared.hosts.read().keys().copied().collect();
        ids.sort_unstable_by_key(|h| h.0);
        ids
    }

    /// Install the scheduler's address so processes can consult it.
    pub fn set_scheduler(&self, vmid: Vmid) {
        *self.shared.scheduler.write() = Some(vmid);
    }

    /// Arm deterministic fault injection with `plan`. Governs every
    /// logical connection created afterwards and every daemon-routed
    /// control datagram (install before traffic flows for full
    /// coverage). Replacing a plan restarts its counters.
    pub fn set_fault_plan(&self, plan: snow_net::fault::FaultPlan) {
        self.shared.faults.install(plan);
    }

    /// Disarm fault injection.
    pub fn clear_fault_plan(&self) {
        self.shared.faults.clear();
    }

    /// Mark `host` as draining (or clear the mark); see
    /// [`VmShared::set_host_draining`].
    pub fn set_host_draining(&self, host: HostId, on: bool) -> bool {
        self.shared.set_host_draining(host, on)
    }

    /// Is `host` currently being evacuated?
    pub fn host_is_draining(&self, host: HostId) -> bool {
        self.shared.host_is_draining(host)
    }

    /// Allocate a vmid on a host without spawning (used by tests).
    /// Refused (like [`VirtualMachine::spawn`]) while the host drains.
    pub fn allocate_vmid(&self, host: HostId) -> Option<Vmid> {
        let hosts = self.shared.hosts.read();
        let entry = hosts.get(&host)?;
        if entry.draining.load(Ordering::SeqCst) {
            return None;
        }
        Some(Vmid {
            host,
            pid: entry.next_pid.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Spawn a process on `host`. The body runs on its own OS thread
    /// with a [`ProcessCell`] giving access to the environment. On
    /// return the process is unregistered and its daemon is notified so
    /// pending connection requests are rejected.
    pub fn spawn<F>(&self, host: HostId, label: &str, body: F) -> Option<(Vmid, JoinHandle<()>)>
    where
        F: FnOnce(ProcessCell) + Send + 'static,
    {
        let vmid = self.allocate_vmid(host)?;
        let (inbox_tx, inbox) = Post::<Incoming>::channel(LinkModel::INSTANT, self.shared.scale);
        let (sig_tx, sig_rx) = channel::unbounded();
        self.shared.registry.register(
            vmid,
            ProcAddr {
                inbox: inbox_tx.clone(),
                signals: sig_tx,
                host,
                label: label.to_string(),
            },
        );
        let shared = Arc::clone(&self.shared);
        let label = label.to_string();
        let thread_label = label.clone();
        let handle = std::thread::Builder::new()
            .name(format!("snow-{thread_label}"))
            .spawn(move || {
                let cell =
                    ProcessCell::new(vmid, label.clone(), inbox, inbox_tx, sig_rx, shared.clone());
                body(cell);
                // Termination: unregister, then tell the local daemon so
                // pending conn_reqs are nacked.
                shared.registry.unregister(vmid);
                if let Some(d) = shared.daemon(vmid.host) {
                    d.send(DaemonMsg::ProcessExited(vmid));
                }
            })
            .expect("spawn process thread");
        Some((vmid, handle))
    }

    /// Assemble a process on `host` without dedicating an OS thread to
    /// it: the caller receives the [`ProcessCell`] and drives it
    /// cooperatively. Large-scale harnesses multiplex thousands of such
    /// cells onto a bounded worker pool — a thread per rank stops
    /// scaling long before the protocol does. The caller owns the
    /// termination epilogue: when the process is done (or its vmid is
    /// retired by a completed migration), pass the vmid to
    /// [`VirtualMachine::retire`], which is exactly what
    /// [`VirtualMachine::spawn`] does when its body returns.
    pub fn spawn_cell(&self, host: HostId, label: &str) -> Option<(Vmid, ProcessCell)> {
        let vmid = self.allocate_vmid(host)?;
        let (inbox_tx, inbox) = Post::<Incoming>::channel(LinkModel::INSTANT, self.shared.scale);
        let (sig_tx, sig_rx) = channel::unbounded();
        self.shared.registry.register(
            vmid,
            ProcAddr {
                inbox: inbox_tx.clone(),
                signals: sig_tx,
                host,
                label: label.to_string(),
            },
        );
        let cell = ProcessCell::new(
            vmid,
            label.to_string(),
            inbox,
            inbox_tx,
            sig_rx,
            Arc::clone(&self.shared),
        );
        Some((vmid, cell))
    }

    /// Termination epilogue for a cooperatively driven process (the
    /// counterpart of what [`VirtualMachine::spawn`] runs when its body
    /// returns): unregister, then tell the local daemon so pending
    /// conn_reqs are nacked.
    pub fn retire(&self, vmid: Vmid) {
        self.shared.registry.unregister(vmid);
        if let Some(d) = self.shared.daemon(vmid.host) {
            d.send(DaemonMsg::ProcessExited(vmid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn hosts_join_and_leave() {
        let vm = VirtualMachine::ideal();
        let h0 = vm.add_host(HostSpec::ideal());
        let h1 = vm.add_host(HostSpec::ultra5());
        assert_ne!(h0, h1);
        assert!(vm.has_host(h0));
        vm.remove_host(h0);
        assert!(!vm.has_host(h0));
        assert!(vm.has_host(h1));
    }

    #[test]
    fn vmids_sequential_per_host() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let a = vm.allocate_vmid(h).unwrap();
        let b = vm.allocate_vmid(h).unwrap();
        assert_eq!(a.host, h);
        assert_eq!(b.pid, a.pid + 1);
        assert_eq!(vm.allocate_vmid(HostId(99)), None);
    }

    #[test]
    fn spawn_runs_and_unregisters() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (vmid, handle) = vm
            .spawn(h, "worker", move |cell| {
                assert_eq!(cell.label(), "worker");
            })
            .unwrap();
        handle.join().unwrap();
        assert!(vm.shared().registry().addr_of(vmid).is_none());
    }

    #[test]
    fn signals_reach_running_process() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (vmid, handle) = vm
            .spawn(h, "sig", move |cell| {
                // Wait for the signal to arrive.
                let sig = cell.wait_signal(Duration::from_secs(5));
                assert_eq!(sig, Some(Signal::Migrate));
            })
            .unwrap();
        // Deliver after spawn.
        while !vm.shared().signal(vmid, Signal::Migrate) {
            std::thread::yield_now();
        }
        handle.join().unwrap();
        // After termination, signalling fails.
        assert!(!vm.shared().signal(vmid, Signal::Migrate));
    }

    #[test]
    fn path_between_hosts_is_bottleneck() {
        let vm = VirtualMachine::ideal();
        let fast = vm.add_host(HostSpec::ultra5());
        let slow = vm.add_host(HostSpec::dec5000());
        let p = vm.shared().path(fast, slow);
        assert_eq!(p.bandwidth_bps, HostSpec::dec5000().uplink.bandwidth_bps);
        // Unknown host → INSTANT fallback.
        assert_eq!(vm.shared().path(fast, HostId(77)), LinkModel::INSTANT);
    }

    #[test]
    fn removing_host_clears_registry() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (vmid, handle) = vm
            .spawn(h, "stay", move |cell| {
                // Block until inbox closes or a signal arrives.
                let _ = cell.wait_signal(Duration::from_millis(300));
            })
            .unwrap();
        assert!(vm.shared().registry().addr_of(vmid).is_some());
        vm.remove_host(h);
        assert!(vm.shared().registry().addr_of(vmid).is_none());
        handle.join().unwrap();
    }

    #[test]
    fn scheduler_installation() {
        let vm = VirtualMachine::ideal();
        assert_eq!(vm.shared().scheduler_vmid(), None);
        let h = vm.add_host(HostSpec::ideal());
        let v = vm.allocate_vmid(h).unwrap();
        vm.set_scheduler(v);
        assert_eq!(vm.shared().scheduler_vmid(), Some(v));
    }
}
