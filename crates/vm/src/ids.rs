//! Two-level process identification (§2.1 of the paper).
//!
//! Application-level processes are named by a *rank* — "a non-negative
//! integer assigned in sequence to every process in a distributed
//! computation" — which is location-transparent. The virtual machine
//! names every process (including daemons and the scheduler) by a
//! [`Vmid`]: a coupling of workstation and per-workstation process
//! numbers. The rank→vmid mappings form the PL (process location) table,
//! kept by every process and the scheduler.

use std::fmt;

/// Application-level process identifier (the paper's rank number).
pub type Rank = usize;

/// Application message tag (PVM-style).
pub type Tag = i32;

/// Virtual-machine-level workstation identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Virtual-machine-level process identification: host number plus the
/// process number on that host, both assigned sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vmid {
    /// The workstation the process runs on.
    pub host: HostId,
    /// Sequential process number on that workstation.
    pub pid: u32,
}

impl fmt::Display for Vmid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.host, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmid_display() {
        let v = Vmid {
            host: HostId(2),
            pid: 5,
        };
        assert_eq!(v.to_string(), "h2.p5");
    }

    #[test]
    fn vmid_ordering_is_host_major() {
        let a = Vmid {
            host: HostId(1),
            pid: 9,
        };
        let b = Vmid {
            host: HostId(2),
            pid: 0,
        };
        assert!(a < b);
    }

    #[test]
    fn vmid_usable_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(
            Vmid {
                host: HostId(0),
                pid: 1,
            },
            "x",
        );
        assert_eq!(
            m[&Vmid {
                host: HostId(0),
                pid: 1
            }],
            "x"
        );
    }
}
