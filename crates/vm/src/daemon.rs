//! Per-host virtual machine daemons.
//!
//! The paper extends the PVM daemon to "keep records of connection
//! requests being routed through it" and to reject requests whose target
//! is gone or is refusing connections (§3.1, §5). Each host runs one
//! daemon thread with this exact role:
//!
//! * **route** `conn_req` control messages to local target processes,
//!   recording a pending entry per request;
//! * **delete** the pending entry when the target's grant/rejection is
//!   routed back, forwarding the reply to the requester;
//! * **reject** (`conn_nack`) when the target process does not exist,
//!   has terminated with requests still pending, or has registered a
//!   *reject-all* flag (a migrating process does this at Fig 5 line 4);
//! * on host leave, nack everything outstanding and exit.

use crate::faults::FaultLayer;
use crate::ids::{HostId, Vmid};
use crate::vm::Registry;
use crate::wire::{ConnReqMsg, Ctrl, Incoming};
use crossbeam::channel::{self, Receiver, Sender};
use snow_net::fault::DatagramVerdict;
use snow_trace::{EventKind, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;

/// Messages handled by a daemon thread.
#[derive(Debug)]
pub enum DaemonMsg {
    /// A requester (possibly remote) asks to reach a process on this
    /// host.
    RouteConnReq(ConnReqMsg),
    /// A local process answers a previously routed request; `ctrl` is a
    /// [`Ctrl::ConnGrant`] or [`Ctrl::ConnNack`]. The daemon deletes its
    /// pending record and forwards the reply.
    ConnReply {
        /// The request being answered.
        req_id: u64,
        /// Grant or nack to forward to the requester.
        ctrl: Ctrl,
    },
    /// Set/clear the reject-all flag for a local process (a migrating
    /// process sets it; cleared implicitly when the process exits).
    SetReject {
        /// The local process.
        vmid: Vmid,
        /// New flag value.
        on: bool,
    },
    /// Set/clear the host-wide draining flag. While draining, conn_reqs
    /// addressed to pids at or above `from_pid` — processes placed
    /// *after* the evacuation began, which admission control should
    /// have prevented — are nacked instead of routed. Processes already
    /// on the host keep accepting connections so the gang's RML drains
    /// stay live.
    SetDraining {
        /// `Some(pid)`: drain mode, rejecting targets with `pid >=`
        /// this allocation watermark. `None`: clear the flag.
        from_pid: Option<u32>,
    },
    /// A local process terminated: nack everything pending for it.
    ProcessExited(Vmid),
    /// Host leave: nack everything and stop.
    Shutdown,
}

/// Handle to a running daemon.
#[derive(Debug, Clone)]
pub struct DaemonHandle {
    /// The host this daemon serves.
    pub host: HostId,
    tx: Sender<DaemonMsg>,
}

impl DaemonHandle {
    /// Send a message to the daemon. Returns `false` if the daemon has
    /// shut down (host left).
    pub fn send(&self, msg: DaemonMsg) -> bool {
        self.tx.send(msg).is_ok()
    }
}

struct DaemonState {
    host: HostId,
    /// Trace label, formatted once at spawn — `route` stamps it on
    /// every nack/fault verdict and must not pay a `format!` each time.
    label: String,
    registry: Registry,
    tracer: Arc<Tracer>,
    /// Environment fault layer: daemon-routed control datagrams are the
    /// connectionless service of §2.3, so they may be dropped or
    /// duplicated by an armed plan.
    faults: Arc<FaultLayer>,
    /// req_id → the original request (holding the requester's reply
    /// sender and target vmid).
    pending: HashMap<u64, ConnReqMsg>,
    /// Local processes currently refusing connections.
    rejecting: HashSet<Vmid>,
    /// Drain watermark: while `Some(p)`, targets with `pid >= p` are
    /// nacked (the host is being evacuated; nothing may be placed on it).
    draining_from: Option<u32>,
}

impl DaemonState {
    fn label(&self) -> &str {
        &self.label
    }

    fn nack(&self, req: &ConnReqMsg) {
        self.tracer
            .record(self.label(), EventKind::ConnNack { to: req.from_rank });
        // Ignore failure: the requester itself may be gone.
        let _ = req.reply.send(
            Incoming::Ctrl(Ctrl::ConnNack {
                req_id: req.req_id,
                target: req.target,
            }),
            crate::wire::ENVELOPE_OVERHEAD_BYTES,
        );
    }

    /// Draw the fault verdict for one daemon-routed datagram, recording
    /// drops and duplicates in the trace and metrics.
    fn datagram_verdict(&self, lane: u64, what: &str) -> DatagramVerdict {
        let v = self.faults.daemon_verdict(self.host, lane);
        match v {
            DatagramVerdict::Drop => {
                self.tracer
                    .record(self.label(), EventKind::FaultDropped { what: what.into() });
                self.tracer.metrics().record_fault(&format!("drop:{what}"));
            }
            DatagramVerdict::Duplicate => {
                self.tracer.record(
                    self.label(),
                    EventKind::FaultDuplicated { what: what.into() },
                );
                self.tracer.metrics().record_fault(&format!("dup:{what}"));
            }
            DatagramVerdict::Deliver => {}
        }
        v
    }

    fn route(&mut self, req: ConnReqMsg) {
        debug_assert_eq!(req.target.host, self.host, "misrouted conn_req");
        if self.draining_from.is_some_and(|p| req.target.pid >= p) {
            // The host is draining and the target was (or would be)
            // placed after the evacuation began: refuse it outright.
            self.nack(&req);
            return;
        }
        if self.rejecting.contains(&req.target) {
            // The migrating process told us to reject all future
            // requests (Fig 5 line 4).
            self.nack(&req);
            return;
        }
        // Borrow the target's address in place (no ProcAddr clone per
        // routed request); the pending-table update happens after the
        // shard lock is released.
        let state = &*self;
        let outcome = self.registry.with_addr(req.target, |addr| {
            // conn_req rides the connectionless datagram service
            // (§2.3): the fault plan may eat it (the requester must
            // re-send) or duplicate it (the target must dedup).
            let verdict = state.datagram_verdict(req.from_rank as u64, "conn_req");
            if verdict == DatagramVerdict::Drop {
                return None;
            }
            let copies = if verdict == DatagramVerdict::Duplicate {
                2
            } else {
                1
            };
            let mut delivered = false;
            for _ in 0..copies {
                let fwd = Incoming::Ctrl(Ctrl::ConnReq(req.clone()));
                delivered |= addr
                    .inbox
                    .send(fwd, crate::wire::ENVELOPE_OVERHEAD_BYTES)
                    .is_ok();
            }
            Some(delivered)
        });
        match outcome {
            Some(Some(true)) => {
                self.pending.insert(req.req_id, req);
            }
            // Unknown target, or the send raced with termination.
            None | Some(Some(false)) => self.nack(&req),
            // Dropped by the fault plan: the requester re-sends.
            Some(None) => {}
        }
    }

    fn reply(&mut self, req_id: u64, ctrl: Ctrl) {
        if let Some(req) = self.pending.remove(&req_id) {
            // conn_grant / conn_nack replies are datagrams too. A
            // dropped reply leaves the requester waiting; its re-sent
            // conn_req recreates the pending record and is answered
            // afresh by the target.
            let verdict = self.datagram_verdict(req.from_rank as u64, "conn_reply");
            if verdict == DatagramVerdict::Drop {
                return;
            }
            let copies = if verdict == DatagramVerdict::Duplicate {
                2
            } else {
                1
            };
            for _ in 0..copies {
                let _ = req.reply.send(
                    Incoming::Ctrl(ctrl.clone()),
                    crate::wire::ENVELOPE_OVERHEAD_BYTES,
                );
            }
        }
        // Unknown req_id: the record was already cleared (e.g. the
        // requester was nacked when the target exited). Drop silently.
    }

    fn process_exited(&mut self, vmid: Vmid) {
        self.rejecting.remove(&vmid);
        let dead: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, req)| req.target == vmid)
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            if let Some(req) = self.pending.remove(&id) {
                self.nack(&req);
            }
        }
    }

    fn shutdown(&mut self) {
        let all: Vec<u64> = self.pending.keys().copied().collect();
        for id in all {
            if let Some(req) = self.pending.remove(&id) {
                self.nack(&req);
            }
        }
    }
}

/// Spawn the daemon thread for `host`.
pub fn spawn_daemon(
    host: HostId,
    registry: Registry,
    tracer: Arc<Tracer>,
    faults: Arc<FaultLayer>,
) -> DaemonHandle {
    let (tx, rx): (Sender<DaemonMsg>, Receiver<DaemonMsg>) = channel::unbounded();
    let mut state = DaemonState {
        host,
        label: format!("daemon:{}", host),
        registry,
        tracer,
        faults,
        pending: HashMap::new(),
        rejecting: HashSet::new(),
        draining_from: None,
    };
    thread::Builder::new()
        .name(format!("snow-daemon-{}", host.0))
        .spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    DaemonMsg::RouteConnReq(req) => state.route(req),
                    DaemonMsg::ConnReply { req_id, ctrl } => state.reply(req_id, ctrl),
                    DaemonMsg::SetReject { vmid, on } => {
                        if on {
                            state.rejecting.insert(vmid);
                        } else {
                            state.rejecting.remove(&vmid);
                        }
                    }
                    DaemonMsg::SetDraining { from_pid } => state.draining_from = from_pid,
                    DaemonMsg::ProcessExited(vmid) => state.process_exited(vmid),
                    DaemonMsg::Shutdown => {
                        state.shutdown();
                        return;
                    }
                }
            }
            // All senders dropped (environment torn down): flush pending.
            state.shutdown();
        })
        .expect("spawn daemon thread");
    DaemonHandle { host, tx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::Post;
    use crate::vm::{ProcAddr, Registry};
    use snow_net::{LinkModel, TimeScale};
    use std::time::Duration;

    fn mk_req(req_id: u64, target: Vmid) -> (ConnReqMsg, Post<Incoming>) {
        let (reply, post) = Post::channel(LinkModel::INSTANT, SCALE);
        let req = ConnReqMsg {
            req_id,
            from_rank: 1,
            from_vmid: Vmid {
                host: HostId(9),
                pid: 9,
            },
            target,
            reply: reply.clone(),
            data_to_requester: reply,
        };
        (req, post)
    }

    fn target_addr(registry: &Registry, vmid: Vmid) -> Post<Incoming> {
        let (tx, post) = Post::channel(LinkModel::INSTANT, SCALE);
        let (sig_tx, _sig_rx) = channel::unbounded();
        registry.register(
            vmid,
            ProcAddr {
                inbox: tx,
                signals: sig_tx,
                host: vmid.host,
                label: "t".into(),
            },
        );
        post
    }

    /// The scale these tests run the modeled clock at. ZERO keeps them
    /// instant; bump it when debugging to watch the daemon in slow
    /// motion — the settle windows stretch to match.
    const SCALE: TimeScale = TimeScale::ZERO;

    /// How long to let the daemon thread drain its mailbox before the
    /// next assertion. The base covers raw thread scheduling on a ZERO
    /// scale; slower modeled clocks widen the window proportionally so
    /// a scaled run doesn't race the daemon.
    fn settle() {
        std::thread::sleep(Duration::from_millis(20) + SCALE.real(1.0));
    }

    /// Timed receive that surfaces failures as errors instead of
    /// panicking inside the helper, so a wedged daemon reports *which*
    /// wait failed rather than a bare unwrap backtrace.
    fn recv_within(post: &Post<Incoming>, d: Duration) -> Result<Option<Incoming>, String> {
        post.recv_timeout(d)
            .map_err(|e| format!("inbox closed while waiting for the daemon: {e:?}"))
    }

    /// Assert that nothing reaches `post` within `d`. A closed inbox
    /// also counts: when the daemon drops the only request holding the
    /// reply sender, the requester sees disconnect rather than data.
    fn expect_silence(post: &Post<Incoming>, d: Duration) -> Result<(), String> {
        match post.recv_timeout(d) {
            Ok(None) | Err(_) => Ok(()),
            Ok(Some(m)) => Err(format!("unexpected delivery: {m:?}")),
        }
    }

    fn expect_nack(post: &Post<Incoming>, req_id: u64) -> Result<(), String> {
        match recv_within(post, Duration::from_secs(2))? {
            Some(Incoming::Ctrl(Ctrl::ConnNack { req_id: r, .. })) if r == req_id => Ok(()),
            Some(Incoming::Ctrl(Ctrl::ConnNack { req_id: r, .. })) => {
                Err(format!("nack for req {r}, expected req {req_id}"))
            }
            other => Err(format!("expected nack for req {req_id}, got {other:?}")),
        }
    }

    #[test]
    fn routes_to_registered_process() -> Result<(), String> {
        let registry = Registry::new();
        let tracer = Tracer::disabled();
        let host = HostId(0);
        let d = spawn_daemon(host, registry.clone(), tracer, Arc::new(FaultLayer::new()));
        let target = Vmid { host, pid: 1 };
        let target_post = target_addr(&registry, target);
        let (req, _reply_post) = mk_req(1, target);
        assert!(d.send(DaemonMsg::RouteConnReq(req)));
        match recv_within(&target_post, Duration::from_secs(2))? {
            Some(Incoming::Ctrl(Ctrl::ConnReq(r))) => assert_eq!(r.req_id, 1),
            other => return Err(format!("expected forwarded req, got {other:?}")),
        }
        Ok(())
    }

    #[test]
    fn nacks_missing_process() -> Result<(), String> {
        let registry = Registry::new();
        let d = spawn_daemon(
            HostId(0),
            registry,
            Tracer::disabled(),
            Arc::new(FaultLayer::new()),
        );
        let target = Vmid {
            host: HostId(0),
            pid: 42,
        };
        let (req, reply_post) = mk_req(7, target);
        d.send(DaemonMsg::RouteConnReq(req));
        expect_nack(&reply_post, 7)
    }

    #[test]
    fn reject_flag_nacks_immediately() -> Result<(), String> {
        let registry = Registry::new();
        let d = spawn_daemon(
            HostId(0),
            registry.clone(),
            Tracer::disabled(),
            Arc::new(FaultLayer::new()),
        );
        let target = Vmid {
            host: HostId(0),
            pid: 1,
        };
        let _target_post = target_addr(&registry, target);
        d.send(DaemonMsg::SetReject {
            vmid: target,
            on: true,
        });
        let (req, reply_post) = mk_req(3, target);
        d.send(DaemonMsg::RouteConnReq(req));
        expect_nack(&reply_post, 3)?;
        // Clearing the flag lets requests through again.
        d.send(DaemonMsg::SetReject {
            vmid: target,
            on: false,
        });
        let (req, reply_post2) = mk_req(4, target);
        d.send(DaemonMsg::RouteConnReq(req));
        // No nack this time: it was forwarded.
        assert!(recv_within(&reply_post2, Duration::from_millis(100))?.is_none());
        Ok(())
    }

    #[test]
    fn reply_forwarded_and_record_deleted() -> Result<(), String> {
        let registry = Registry::new();
        let d = spawn_daemon(
            HostId(0),
            registry.clone(),
            Tracer::disabled(),
            Arc::new(FaultLayer::new()),
        );
        let target = Vmid {
            host: HostId(0),
            pid: 1,
        };
        let _tp = target_addr(&registry, target);
        let (req, reply_post) = mk_req(11, target);
        d.send(DaemonMsg::RouteConnReq(req));
        d.send(DaemonMsg::ConnReply {
            req_id: 11,
            ctrl: Ctrl::ConnNack { req_id: 11, target },
        });
        expect_nack(&reply_post, 11)?;
        // Second reply for the same id is dropped (record deleted).
        d.send(DaemonMsg::ConnReply {
            req_id: 11,
            ctrl: Ctrl::ConnNack { req_id: 11, target },
        });
        assert!(recv_within(&reply_post, Duration::from_millis(50))?.is_none());
        Ok(())
    }

    #[test]
    fn process_exit_nacks_pending() -> Result<(), String> {
        let registry = Registry::new();
        let d = spawn_daemon(
            HostId(0),
            registry.clone(),
            Tracer::disabled(),
            Arc::new(FaultLayer::new()),
        );
        let target = Vmid {
            host: HostId(0),
            pid: 1,
        };
        let _tp = target_addr(&registry, target);
        let (req, reply_post) = mk_req(21, target);
        d.send(DaemonMsg::RouteConnReq(req));
        // Give the daemon time to record the pending entry.
        settle();
        d.send(DaemonMsg::ProcessExited(target));
        expect_nack(&reply_post, 21)
    }

    #[test]
    fn shutdown_nacks_everything() -> Result<(), String> {
        let registry = Registry::new();
        let d = spawn_daemon(
            HostId(0),
            registry.clone(),
            Tracer::disabled(),
            Arc::new(FaultLayer::new()),
        );
        let target = Vmid {
            host: HostId(0),
            pid: 1,
        };
        let _tp = target_addr(&registry, target);
        let (req, reply_post) = mk_req(31, target);
        d.send(DaemonMsg::RouteConnReq(req));
        settle();
        d.send(DaemonMsg::Shutdown);
        expect_nack(&reply_post, 31)?;
        // Daemon is gone: further sends fail eventually.
        settle();
        let (req2, _rp) = mk_req(32, target);
        let _ = d.send(DaemonMsg::RouteConnReq(req2));
        Ok(())
    }

    #[test]
    fn armed_layer_drops_conn_req_silently() -> Result<(), String> {
        use snow_net::fault::{FaultPlan, FaultSpec, LinkSel};
        let registry = Registry::new();
        let faults = Arc::new(FaultLayer::new());
        faults.install(FaultPlan::new(5).rule(LinkSel::Any, FaultSpec::none().drops(1.0)));
        let tracer = Tracer::new();
        let d = spawn_daemon(HostId(0), registry.clone(), Arc::clone(&tracer), faults);
        let target = Vmid {
            host: HostId(0),
            pid: 1,
        };
        let target_post = target_addr(&registry, target);
        let (req, reply_post) = mk_req(41, target);
        d.send(DaemonMsg::RouteConnReq(req));
        settle();
        // Dropped: neither forwarded nor nacked — the requester must
        // re-send, exactly like a lost datagram.
        expect_silence(&target_post, Duration::from_millis(50))?;
        expect_silence(&reply_post, Duration::from_millis(50))?;
        assert!(tracer
            .snapshot()
            .iter()
            .any(|e| matches!(&e.kind, EventKind::FaultDropped { what } if what == "conn_req")));
        Ok(())
    }

    #[test]
    fn armed_layer_duplicates_conn_req_but_keeps_one_record() -> Result<(), String> {
        use snow_net::fault::{FaultPlan, FaultSpec, LinkSel};
        let registry = Registry::new();
        let faults = Arc::new(FaultLayer::new());
        faults.install(FaultPlan::new(5).rule(LinkSel::Any, FaultSpec::none().duplicates(1.0)));
        let tracer = Tracer::new();
        let d = spawn_daemon(HostId(0), registry.clone(), Arc::clone(&tracer), faults);
        let target = Vmid {
            host: HostId(0),
            pid: 1,
        };
        let target_post = target_addr(&registry, target);
        let (req, reply_post) = mk_req(43, target);
        d.send(DaemonMsg::RouteConnReq(req));
        // The target sees the request twice …
        for _ in 0..2 {
            match recv_within(&target_post, Duration::from_secs(2))? {
                Some(Incoming::Ctrl(Ctrl::ConnReq(r))) => assert_eq!(r.req_id, 43),
                other => return Err(format!("expected duplicated req, got {other:?}")),
            }
        }
        // … but a single pending record remains. The reply rides the
        // same duplicating datagram service, so the requester sees two
        // copies of the one forwarded reply …
        d.send(DaemonMsg::ConnReply {
            req_id: 43,
            ctrl: Ctrl::ConnNack { req_id: 43, target },
        });
        expect_nack(&reply_post, 43)?;
        expect_nack(&reply_post, 43)?;
        // … and a second ConnReply for the id finds no record at all.
        d.send(DaemonMsg::ConnReply {
            req_id: 43,
            ctrl: Ctrl::ConnNack { req_id: 43, target },
        });
        expect_silence(&reply_post, Duration::from_millis(50))?;
        Ok(())
    }
}
