//! Host descriptions.
//!
//! A host couples a simulated architecture (byte order / word size, used
//! by the heterogeneous state transfer), a relative CPU speed (used by
//! the state collect/restore cost model) and the host's network uplink
//! (used by the transfer cost model). The paper's two testbeds are
//! provided as presets.

use snow_codec::HostArch;
use snow_net::LinkModel;

/// Static description of a workstation participating in the virtual
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// Simulated architecture (byte order, word size, label).
    pub arch: HostArch,
    /// Relative CPU speed; 1.0 = a Sun Ultra 5 of the paper's testbed.
    /// State collection/restoration of `B` bytes is modeled to cost
    /// `B / (speed * BYTES_PER_SECOND_AT_1X)` seconds.
    pub speed: f64,
    /// The host's uplink; a path between two hosts is the bottleneck of
    /// their uplinks.
    pub uplink: LinkModel,
}

impl HostSpec {
    /// The paper's fast homogeneous node: Sun Ultra 5 on 100 Mbit/s
    /// switched Ethernet.
    pub fn ultra5() -> Self {
        HostSpec {
            arch: HostArch::SUN_ULTRA5,
            speed: 1.0,
            uplink: LinkModel::ETHERNET_100M,
        }
    }

    /// The paper's slow heterogeneous node: DEC 5000/120 on 10 Mbit/s
    /// Ethernet. §6.3 reports state collection ~7× slower than on the
    /// Ultra 5 (5.209 s vs 0.73 s), hence speed ≈ 0.14.
    pub fn dec5000() -> Self {
        HostSpec {
            arch: HostArch::DEC_5000,
            speed: 0.14,
            uplink: LinkModel::ETHERNET_10M,
        }
    }

    /// An idealised host for pure protocol-logic tests: instant network,
    /// unit speed, native-looking architecture.
    pub fn ideal() -> Self {
        HostSpec {
            arch: HostArch::X86_64,
            speed: 1.0,
            uplink: LinkModel::INSTANT,
        }
    }

    /// The network path model between two hosts.
    pub fn path_to(&self, other: &HostSpec) -> LinkModel {
        self.uplink.bottleneck(&other.uplink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_testbed() {
        let fast = HostSpec::ultra5();
        let slow = HostSpec::dec5000();
        assert!(fast.speed > slow.speed * 5.0);
        assert!(slow.uplink.transfer_seconds(1_000_000) > fast.uplink.transfer_seconds(1_000_000));
    }

    #[test]
    fn path_is_bottleneck() {
        let fast = HostSpec::ultra5();
        let slow = HostSpec::dec5000();
        let p = fast.path_to(&slow);
        assert_eq!(p.bandwidth_bps, slow.uplink.bandwidth_bps);
        // Symmetric:
        assert_eq!(p, slow.path_to(&fast));
    }

    #[test]
    fn ideal_path_is_instant() {
        let h = HostSpec::ideal();
        assert_eq!(h.path_to(&h).transfer_seconds(1 << 20), 0.0);
    }
}
