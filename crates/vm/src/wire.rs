//! Wire types: data envelopes, control messages and signals.
//!
//! These are the messages that cross process boundaries. Data envelopes
//! flow over logical connections; control messages implement the
//! connectionless handshakes (connection establishment, scheduler
//! consultation); signals implement the ordered signaling service of
//! §2.3 (migration request and the disconnection signal of Fig 5/6).

use crate::ids::{Rank, Tag, Vmid};
use crate::post::PostSender;
use bytes::Bytes;
use snow_trace::MsgId;

/// Fixed per-envelope header cost charged by the link cost model, on top
/// of the payload bytes (rough Ethernet + PVM framing).
pub const ENVELOPE_OVERHEAD_BYTES: usize = 64;

/// What a data envelope carries.
#[derive(Debug, Clone)]
pub enum Payload {
    /// An application message.
    Data(Bytes),
    /// The marker a migrating process sends as *its* last message on a
    /// channel (Fig 5 line 5): "all messages sent earlier through this
    /// channel have been received once you see this".
    PeerMigrating,
    /// The marker a *peer* sends as its last message before closing its
    /// side of a channel toward the migrating process (§3.2.2).
    EndOfMessages,
    /// The migrating process's received-message-list, forwarded to the
    /// initialized process (Fig 5 line 8 / Fig 7 lines 2–3).
    RmlBatch(Vec<Envelope>),
    /// Canonical execution + memory state as a single frame
    /// (Fig 5 line 10 / Fig 7 line 4) — the monolithic transfer path.
    ExeMemState(Bytes),
    /// One chunk of the canonical exe+mem state stream — the pipelined
    /// transfer path. Chunks are FIFO on the transfer channel; `seq`
    /// guards against logic errors, `checksum` against corruption.
    ExeMemStateChunk {
        /// Position in the stream (0 = header chunk).
        seq: u32,
        /// FNV-1a of `bytes`.
        checksum: u64,
        /// This chunk's slice of the canonical state body.
        bytes: Bytes,
    },
    /// Closes a chunked state stream: whole-state digest plus totals the
    /// destination must reproduce before restoring.
    ExeMemStateDigest {
        /// FNV-1a over the whole reassembled body.
        digest: u64,
        /// Number of chunks sent.
        chunks: u32,
        /// Total body bytes sent.
        total_bytes: u64,
    },
    /// A process that had announced a migration rolled it back: sent to
    /// every peer it had coordinated away so they treat the old endpoint
    /// as live again (the scheduler has already rolled the PL table
    /// back).
    MigrationAborted,
    /// The destination's verdict on a received state transfer, sent back
    /// to the source over the transfer channel before the commit
    /// handshake. A negative ack (or none at all) sends the source down
    /// the abort path.
    StateAck {
        /// True when the state arrived intact: the source may terminate.
        ok: bool,
        /// The acking initialized process — lets the source discard
        /// stale acks from an earlier, already-aborted attempt.
        from: Vmid,
        /// Failure description when `ok` is false.
        detail: String,
    },
}

impl Payload {
    /// Application-payload size used for link cost accounting.
    pub fn body_bytes(&self) -> usize {
        match self {
            Payload::Data(b) => b.len(),
            Payload::PeerMigrating | Payload::EndOfMessages => 0,
            Payload::RmlBatch(list) => list.iter().map(Envelope::wire_bytes).sum(),
            Payload::ExeMemState(b) => b.len(),
            Payload::ExeMemStateChunk { bytes, .. } => bytes.len(),
            // Header-only frames: seq/digest/ack metadata rides in the
            // envelope overhead, like the protocol markers.
            Payload::ExeMemStateDigest { .. } => 0,
            Payload::MigrationAborted | Payload::StateAck { .. } => 0,
        }
    }
}

/// One message on a logical connection.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender's application rank.
    pub src: Rank,
    /// Application tag.
    pub tag: Tag,
    /// Globally unique wire id (trace matching / dedup checks).
    pub msg: MsgId,
    /// Contents.
    pub payload: Payload,
}

impl Envelope {
    /// Total modeled wire size.
    pub fn wire_bytes(&self) -> usize {
        ENVELOPE_OVERHEAD_BYTES + self.payload.body_bytes()
    }
}

/// A connection request (`conn_req`) as routed through daemons.
#[derive(Debug, Clone)]
pub struct ConnReqMsg {
    /// Unique request id (daemon pending-record key).
    pub req_id: u64,
    /// Requester's application rank.
    pub from_rank: Rank,
    /// Requester's vmid (for PL-table updates on the granter side).
    pub from_vmid: Vmid,
    /// Target vmid the requester believes the destination lives at.
    pub target: Vmid,
    /// Where grant/nack replies must be delivered (the requester's
    /// inbox, control-grade link).
    pub reply: PostSender<Incoming>,
    /// A sender into the requester's inbox that the granter will use as
    /// its data-sending end of the new channel. The requester has already
    /// provisioned it with the path link model.
    pub data_to_requester: PostSender<Incoming>,
}

/// Control messages delivered through a process inbox.
#[derive(Debug, Clone)]
pub enum Ctrl {
    /// A peer asks to establish a connection (forwarded by the target's
    /// daemon).
    ConnReq(ConnReqMsg),
    /// Connection granted: carries the granter's data-sending end.
    ConnGrant {
        /// Request being answered.
        req_id: u64,
        /// Granter's application rank.
        peer_rank: Rank,
        /// Granter's vmid.
        peer_vmid: Vmid,
        /// Sender into the granter's inbox for the requester to use.
        data_to_granter: PostSender<Incoming>,
    },
    /// Connection denied: the target migrated, is migrating, terminated,
    /// or its host left.
    ConnNack {
        /// Request being answered.
        req_id: u64,
        /// The vmid the request was addressed to.
        target: Vmid,
    },
    /// A request bound for the scheduler (only the scheduler process
    /// sees these).
    SchedRequest(SchedRequest),
    /// A scheduler reply (lookup results, migration coordination).
    Sched(SchedReply),
}

/// Everything that can land in a process inbox.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A data envelope on an established logical connection.
    Data(Envelope),
    /// A control message.
    Ctrl(Ctrl),
}

impl Incoming {
    /// Modeled wire size for link accounting.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Incoming::Data(e) => e.wire_bytes(),
            Incoming::Ctrl(_) => ENVELOPE_OVERHEAD_BYTES,
        }
    }
}

/// Execution status of a rank, as reported by the scheduler (§3.1:
/// "consult scheduler for exe status and new_vmid").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExeStatus {
    /// Running normally at the reported vmid.
    Running,
    /// Migrated (or migrating): the reported vmid is the new location.
    Migrated,
    /// The process has terminated; no location exists.
    Terminated,
}

/// Why a migration could not be started or could not be completed.
///
/// Typed so the drain engine and tests branch on causes structurally;
/// the [`std::fmt::Display`] form preserves the historical phrasing
/// harnesses grep for ("unknown rank", "not a member", "aborted", …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailCause {
    /// The rank was never registered.
    UnknownRank,
    /// The rank exists but is not [`ExeStatus::Running`].
    NotRunning(ExeStatus),
    /// A migration of the rank is already in flight.
    AlreadyMigrating,
    /// The requested destination host is not a member.
    HostNotMember(crate::ids::HostId),
    /// The requested destination host is being evacuated; admission
    /// control refuses new migrations onto it.
    HostDraining(crate::ids::HostId),
    /// The source process terminated before the migration signal landed.
    SourceTerminated,
    /// A host drain was asked to move more ranks than its worker pool
    /// plus job queue can hold.
    DrainOverflow {
        /// Ranks the drain would have to move.
        ranks: usize,
        /// `max_workers + job_queue_size` of the rejected request.
        capacity: usize,
    },
    /// No live, non-draining destination host exists for the migrant.
    NoDestination,
    /// Every transfer attempt failed; the migration rolled back.
    Aborted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last attempt's failure description.
        reason: String,
    },
}

impl std::fmt::Display for FailCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailCause::UnknownRank => write!(f, "unknown rank"),
            FailCause::NotRunning(status) => write!(f, "not running ({status:?})"),
            FailCause::AlreadyMigrating => write!(f, "already migrating"),
            FailCause::HostNotMember(h) => write!(f, "host {h} is not a member"),
            FailCause::HostDraining(h) => write!(f, "host {h} is draining"),
            FailCause::SourceTerminated => write!(f, "terminated before migration"),
            FailCause::DrainOverflow { ranks, capacity } => {
                write!(
                    f,
                    "drain of {ranks} rank(s) exceeds pool capacity {capacity}"
                )
            }
            FailCause::NoDestination => write!(f, "no live destination host"),
            FailCause::Aborted { attempts, reason } => {
                write!(f, "aborted after {attempts} attempt(s): {reason}")
            }
        }
    }
}

/// Worker-pool shape of a host drain ([`SchedRequest::HostDrain`]): at
/// most `max_workers` migrations run concurrently, the rest wait in a
/// bounded job queue, and per-rank verdicts accumulate in a bounded
/// result queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainPoolConfig {
    /// Concurrent migration jobs (pool width).
    pub max_workers: usize,
    /// Ranks that may wait behind the pool; a drain needing more than
    /// `max_workers + job_queue_size` slots is rejected up front.
    pub job_queue_size: usize,
    /// Per-rank verdicts retained in the terminal report; beyond this
    /// the report only counts them.
    pub res_queue_size: usize,
    /// Emit a progress trace event and a pool-occupancy sample every
    /// period while the drain runs. Zero disables progress logging.
    pub progress_log_period: std::time::Duration,
}

impl Default for DrainPoolConfig {
    fn default() -> Self {
        DrainPoolConfig {
            max_workers: 4,
            job_queue_size: 64,
            res_queue_size: 64,
            progress_log_period: std::time::Duration::ZERO,
        }
    }
}

/// Terminal verdict of a host drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every co-located rank migrated off the host.
    Evacuated {
        /// Ranks moved.
        completed: usize,
        /// Retry rulings issued across the gang (re-targets after a
        /// destination death).
        retried: usize,
    },
    /// The drain terminated, but some migrants rolled back in place.
    PartiallyEvacuated {
        /// Ranks moved.
        completed: usize,
        /// Ranks whose migration finally aborted (they resume on the
        /// draining host).
        aborted: usize,
        /// Retry rulings issued across the gang.
        retried: usize,
    },
}

/// How one migrant of a drain gang ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainRankResult {
    /// Migrated off the host; now lives at the reported vmid.
    Completed(Vmid),
    /// Rolled back in place for the reported cause.
    Aborted(FailCause),
}

/// Requests processes send to the scheduler.
#[derive(Debug, Clone)]
pub enum SchedRequest {
    /// Locate a rank (Fig 3 line 10). Reply: [`SchedReply::Location`].
    Lookup {
        /// Rank to locate.
        about: Rank,
        /// Requester's inbox for the reply.
        reply: PostSender<Incoming>,
    },
    /// A user/harness asks the scheduler to migrate `rank` onto `to_host`
    /// (§2.2). Reply (to the requesting harness): [`SchedReply::MigrationDone`]
    /// after commit.
    Migrate {
        /// Rank to migrate.
        rank: Rank,
        /// Destination workstation.
        to_host: crate::ids::HostId,
        /// Requester's inbox for the completion notification.
        reply: PostSender<Incoming>,
    },
    /// The migrating process announces `migration_start` and asks for its
    /// initialized process's vmid (Fig 5 lines 2–3). Reply:
    /// [`SchedReply::NewVmid`].
    MigrationStart {
        /// The migrating rank.
        rank: Rank,
        /// Its inbox for the reply.
        reply: PostSender<Incoming>,
    },
    /// The initialized process reports `restore_complete` and asks for
    /// the PL table (Fig 7 lines 5–6). Reply: [`SchedReply::PlTable`].
    RestoreComplete {
        /// The migrated rank.
        rank: Rank,
        /// The initialized process's vmid (becomes authoritative).
        new_vmid: Vmid,
        /// Its inbox for the reply.
        reply: PostSender<Incoming>,
    },
    /// The initialized process confirms `migration_commit` (Fig 7 line 7).
    MigrationCommit {
        /// The migrated rank.
        rank: Rank,
    },
    /// The migrating process reports that the transfer to its initialized
    /// process failed (destination gone, transfer channel dead, restore
    /// rejected). The scheduler reaps the half-initialized destination
    /// and either re-targets the migration (retry policy) or rolls the
    /// directory back to the still-running source. Reply:
    /// [`SchedReply::MigrationRetry`], [`SchedReply::MigrationAborted`]
    /// or [`SchedReply::MigrationAbortDenied`].
    MigrationAbort {
        /// The migrating rank.
        rank: Rank,
        /// Why the transfer failed (bookkeeping + requester's error).
        reason: String,
        /// The migrating process's inbox for the decision.
        reply: PostSender<Incoming>,
    },
    /// Evacuate every running rank co-located on `host`: the scheduler
    /// expands the request into a gang of per-rank migration jobs fed
    /// through a bounded worker pool, and drives the drain to a
    /// terminal [`SchedReply::DrainDone`] (or rejects it up front with
    /// [`SchedReply::DrainFailed`]).
    HostDrain {
        /// The host being evacuated.
        host: crate::ids::HostId,
        /// Worker-pool shape for the gang.
        pool: DrainPoolConfig,
        /// Requester's inbox for the terminal verdict.
        reply: PostSender<Incoming>,
    },
    /// A process announces its termination so lookups report
    /// [`ExeStatus::Terminated`].
    Terminated {
        /// The terminating rank.
        rank: Rank,
    },
    /// Register an application process (spawn-time bookkeeping).
    Register {
        /// Rank being registered.
        rank: Rank,
        /// Where it lives.
        vmid: Vmid,
    },
    /// Stop the scheduler loop (environment teardown).
    Shutdown,
}

/// Replies from the scheduler.
#[derive(Debug, Clone)]
pub enum SchedReply {
    /// Result of [`SchedRequest::Lookup`].
    Location {
        /// The rank that was looked up.
        about: Rank,
        /// Its execution status.
        status: ExeStatus,
        /// Current vmid, when one exists.
        vmid: Option<Vmid>,
    },
    /// Result of [`SchedRequest::MigrationStart`]: where the initialized
    /// process waits.
    NewVmid {
        /// The initialized process's vmid.
        new_vmid: Vmid,
    },
    /// Result of [`SchedRequest::RestoreComplete`]: the authoritative PL
    /// table and the old vmid being retired.
    PlTable {
        /// rank → vmid for every registered process.
        entries: Vec<(Rank, Vmid)>,
        /// The migrating process's retiring vmid.
        old_vmid: Vmid,
    },
    /// A migration requested via [`SchedRequest::Migrate`] committed.
    MigrationDone {
        /// The migrated rank.
        rank: Rank,
        /// Its new vmid.
        new_vmid: Vmid,
    },
    /// A failed migration was re-targeted at an alternate host
    /// ([`SchedRequest::MigrationAbort`] under a retry policy): the
    /// source should retry the transfer against `new_vmid` after
    /// `backoff_ms`.
    MigrationRetry {
        /// The freshly initialized process to transfer to.
        new_vmid: Vmid,
        /// The attempt number about to run (2 = first retry).
        attempt: u32,
        /// Source-side pause before retrying, from the retry policy.
        backoff_ms: u64,
    },
    /// A migration was abandoned: the directory was rolled back to the
    /// old vmid and the source must resume in place. Also delivered to a
    /// half-initialized destination process as its reap order.
    MigrationAborted {
        /// The rank whose migration aborted.
        rank: Rank,
    },
    /// An abort request arrived after the destination had already
    /// committed: the migration stands and the source must terminate as
    /// if the transfer had been acknowledged.
    MigrationAbortDenied {
        /// The rank whose abort was denied.
        rank: Rank,
    },
    /// A migration requested via [`SchedRequest::Migrate`] failed for
    /// good: it never started, or it finally aborted. Rank-tagged so a
    /// requester waiting on one of several in-flight migrations can
    /// route the verdict (an untagged [`SchedReply::Error`] would be
    /// claimed by whichever waiter reads it first).
    MigrationFailed {
        /// The rank whose migration failed.
        rank: Rank,
        /// Typed cause (render with `Display` for the historical
        /// human-readable phrasing).
        cause: FailCause,
    },
    /// Terminal verdict of a [`SchedRequest::HostDrain`]: the gang ran
    /// to completion (possibly with per-rank aborts).
    DrainDone {
        /// The drained host.
        host: crate::ids::HostId,
        /// Aggregate verdict.
        outcome: DrainOutcome,
        /// Per-rank verdicts, capped at the request's `res_queue_size`
        /// (the outcome's counters always cover the whole gang).
        per_rank: Vec<(Rank, DrainRankResult)>,
    },
    /// A [`SchedRequest::HostDrain`] was rejected before any job ran.
    DrainFailed {
        /// The host the rejected request named.
        host: crate::ids::HostId,
        /// Why the drain was refused.
        cause: FailCause,
    },
    /// The scheduler could not satisfy a request (unknown rank, no such
    /// host, migration already in flight).
    Error {
        /// Human-readable cause.
        reason: String,
    },
}

/// Signals of the ordered signaling service (§2.3). Signals never
/// interrupt communication events; `snow-core` checks the queue only at
/// computation events and between communication events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// The scheduler orders this process to migrate (`SIGUSR1` in the
    /// prototype, Fig 5 line 1).
    Migrate,
    /// A migrating peer asks this process to coordinate disconnection
    /// (`SIGUSR2`, Fig 5 line 5 / Fig 6).
    Disconnect {
        /// The migrating peer's rank.
        from: Rank,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_net::{LinkModel, TimeScale};

    fn env(bytes: usize) -> Envelope {
        Envelope {
            src: 0,
            tag: 1,
            msg: MsgId(1),
            payload: Payload::Data(Bytes::from(vec![0u8; bytes])),
        }
    }

    #[test]
    fn wire_bytes_include_overhead() {
        assert_eq!(env(100).wire_bytes(), 100 + ENVELOPE_OVERHEAD_BYTES);
    }

    #[test]
    fn markers_are_header_only() {
        let e = Envelope {
            src: 0,
            tag: -1,
            msg: MsgId(2),
            payload: Payload::PeerMigrating,
        };
        assert_eq!(e.wire_bytes(), ENVELOPE_OVERHEAD_BYTES);
    }

    #[test]
    fn rml_batch_accumulates_sizes() {
        let batch = Payload::RmlBatch(vec![env(10), env(20)]);
        assert_eq!(batch.body_bytes(), 10 + 20 + 2 * ENVELOPE_OVERHEAD_BYTES);
    }

    #[test]
    fn ctrl_messages_have_fixed_cost() {
        let (reply, _post) =
            crate::post::Post::<Incoming>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let inc = Incoming::Ctrl(Ctrl::ConnNack {
            req_id: 1,
            target: Vmid {
                host: crate::ids::HostId(0),
                pid: 0,
            },
        });
        assert_eq!(inc.wire_bytes(), ENVELOPE_OVERHEAD_BYTES);
        drop(reply);
    }

    #[test]
    fn state_payload_sized_by_bytes() {
        let p = Payload::ExeMemState(Bytes::from(vec![0u8; 7_500_000]));
        assert_eq!(p.body_bytes(), 7_500_000);
    }
}
