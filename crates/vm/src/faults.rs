//! Fault-plan plumbing between the deterministic injectors of
//! [`snow_net::fault`] and the places this crate moves bytes.
//!
//! One [`FaultLayer`] lives in the shared environment. Installing a
//! [`FaultPlan`] arms it; every *subsequently created* logical data
//! connection ([`crate::process::ProcessCell::data_sender_to_me`])
//! gets a [`FaultHook`] for its direction, and every daemon queries its
//! datagram injector lazily per routed message — so a plan installed
//! before any traffic flows governs the whole run, and hosts added
//! later are covered too.
//!
//! The layer also assigns *incarnation numbers*: each new logical
//! connection over the same `(src, dst)` host pair draws an independent
//! fault sequence, so an injected reset does not deterministically
//! re-fire on the reconnect that recovers from it.

use crate::ids::HostId;
use parking_lot::{Mutex, RwLock};
use snow_net::fault::{DatagramVerdict, FaultInjector, FaultPlan, FrameClass, StreamVerdict};
use snow_trace::{EventKind, Tracer};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-environment fault state: the installed plan plus the bookkeeping
/// that hands out injectors deterministically.
#[derive(Default)]
pub struct FaultLayer {
    plan: RwLock<Option<Arc<FaultPlan>>>,
    /// Next incarnation per directed host pair.
    incarnations: Mutex<HashMap<(u32, u32), u64>>,
    /// Cached per-host daemon injectors (one counter stream per daemon
    /// for the lifetime of a plan).
    daemons: Mutex<HashMap<u32, Arc<FaultInjector>>>,
}

impl std::fmt::Debug for FaultLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultLayer")
            .field("active", &self.is_active())
            .finish_non_exhaustive()
    }
}

impl FaultLayer {
    /// A disarmed layer (no faults anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the fault plan. Resets incarnation counters
    /// and daemon injectors so the new plan starts from frame zero.
    pub fn install(&self, plan: FaultPlan) {
        *self.plan.write() = Some(Arc::new(plan));
        self.incarnations.lock().clear();
        self.daemons.lock().clear();
    }

    /// Disarm the layer.
    pub fn clear(&self) {
        *self.plan.write() = None;
        self.incarnations.lock().clear();
        self.daemons.lock().clear();
    }

    /// Is a plan installed?
    pub fn is_active(&self) -> bool {
        self.plan.read().is_some()
    }

    /// The installed plan, if any.
    pub fn plan(&self) -> Option<Arc<FaultPlan>> {
        self.plan.read().clone()
    }

    /// Fault hook for a *new* logical stream carrying frames `src → dst`
    /// (attach to the [`crate::post::PostSender`] the `src`-side peer
    /// will hold). Draws the next incarnation for the pair; `None` when
    /// no plan is installed or no rule covers the link.
    pub fn stream_hook(
        &self,
        src: HostId,
        dst: HostId,
        tracer: &Arc<Tracer>,
    ) -> Option<Arc<FaultHook>> {
        let plan = self.plan.read().clone()?;
        let incarnation = {
            let mut inc = self.incarnations.lock();
            let n = inc.entry((src.0, dst.0)).or_insert(0);
            let i = *n;
            *n += 1;
            i
        };
        plan.stream_injector(src.0, dst.0, incarnation).map(|inj| {
            Arc::new(FaultHook {
                injector: inj,
                tracer: Arc::clone(tracer),
                who: format!("link:{src}->{dst}"),
            })
        })
    }

    /// The datagram verdict for one message routed through `host`'s
    /// daemon on `lane` (one lane per requester rank).
    pub fn daemon_verdict(&self, host: HostId, lane: u64) -> DatagramVerdict {
        match self.daemon_injector(host) {
            Some(inj) => inj.on_datagram(lane),
            None => DatagramVerdict::Deliver,
        }
    }

    fn daemon_injector(&self, host: HostId) -> Option<Arc<FaultInjector>> {
        if let Some(inj) = self.daemons.lock().get(&host.0) {
            return Some(Arc::clone(inj));
        }
        let plan = self.plan.read().clone()?;
        let inj = Arc::new(plan.datagram_injector(host.0)?);
        self.daemons
            .lock()
            .entry(host.0)
            .or_insert(inj)
            .clone()
            .into()
    }
}

/// A per-connection fault decision point that also records what it did:
/// every injected delay/reset lands in the trace (glyphs `j`/`f`) and
/// the metrics fault counters, so audits can correlate injected faults
/// with observed retries and aborts.
pub struct FaultHook {
    injector: FaultInjector,
    tracer: Arc<Tracer>,
    who: String,
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHook")
            .field("who", &self.who)
            .finish_non_exhaustive()
    }
}

impl FaultHook {
    /// Build a hook around an injector (tests / custom wiring).
    pub fn new(injector: FaultInjector, tracer: Arc<Tracer>, who: String) -> Self {
        FaultHook {
            injector,
            tracer,
            who,
        }
    }

    /// Verdict for the next outbound frame, recorded as it is drawn.
    pub fn on_frame(&self, class: FrameClass) -> StreamVerdict {
        let v = self.injector.on_frame(class);
        if v.reset {
            self.tracer.record(&self.who, EventKind::FaultReset);
            self.tracer.metrics().record_fault("reset");
        } else if v.extra_delay_s > 0.0 {
            self.tracer.record(
                &self.who,
                EventKind::FaultDelay {
                    extra_ns: (v.extra_delay_s * 1e9) as u64,
                },
            );
            self.tracer.metrics().record_fault("delay");
        }
        v
    }

    /// Has this hook's connection been reset?
    pub fn is_dead(&self) -> bool {
        self.injector.is_dead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_net::fault::{FaultSpec, LinkSel};

    fn plan() -> FaultPlan {
        FaultPlan::new(42).rule(
            LinkSel::Any,
            FaultSpec::none().jitter(1.0, 1.0).resets(1.0, 0).drops(1.0),
        )
    }

    #[test]
    fn disarmed_layer_hands_out_nothing() {
        let layer = FaultLayer::new();
        let tracer = Tracer::disabled();
        assert!(!layer.is_active());
        assert!(layer.stream_hook(HostId(0), HostId(1), &tracer).is_none());
        assert_eq!(layer.daemon_verdict(HostId(0), 0), DatagramVerdict::Deliver);
    }

    #[test]
    fn incarnations_advance_per_directed_pair() {
        let layer = FaultLayer::new();
        layer.install(FaultPlan::new(7).rule(LinkSel::Any, FaultSpec::none().jitter(0.5, 1.0)));
        let tracer = Tracer::disabled();
        let seq = |hook: &Arc<FaultHook>| {
            (0..16)
                .map(|_| hook.on_frame(FrameClass::Data).extra_delay_s)
                .collect::<Vec<_>>()
        };
        let a = layer.stream_hook(HostId(0), HostId(1), &tracer).unwrap();
        let b = layer.stream_hook(HostId(0), HostId(1), &tracer).unwrap();
        let (sa, sb) = (seq(&a), seq(&b));
        assert_ne!(sa, sb, "each connection draws independently");
        // Re-installing the plan resets the incarnation counters: the
        // first connection repeats its sequence.
        layer.install(FaultPlan::new(7).rule(LinkSel::Any, FaultSpec::none().jitter(0.5, 1.0)));
        let a2 = layer.stream_hook(HostId(0), HostId(1), &tracer).unwrap();
        assert_eq!(sa, seq(&a2));
    }

    #[test]
    fn hook_records_trace_events_and_metrics() {
        let layer = FaultLayer::new();
        layer.install(plan());
        let tracer = Tracer::new();
        let hook = layer.stream_hook(HostId(0), HostId(1), &tracer).unwrap();
        let v = hook.on_frame(FrameClass::Data);
        assert!(v.reset, "reset_prob 1.0 fires immediately");
        assert!(hook.is_dead());
        let snap = tracer.snapshot();
        assert!(snap
            .iter()
            .any(|e| matches!(e.kind, EventKind::FaultReset) && e.who.contains("link:h0->h1")));
        assert_eq!(tracer.metrics().fault_counts(), vec![("reset".into(), 1)]);
    }

    #[test]
    fn daemon_injectors_are_cached_until_reinstall() {
        let layer = FaultLayer::new();
        layer.install(plan());
        // Same per-lane counter across calls: drop_prob 1.0 always drops.
        assert_eq!(layer.daemon_verdict(HostId(3), 0), DatagramVerdict::Drop);
        assert_eq!(layer.daemon_verdict(HostId(3), 0), DatagramVerdict::Drop);
        layer.clear();
        assert_eq!(layer.daemon_verdict(HostId(3), 0), DatagramVerdict::Deliver);
    }
}
