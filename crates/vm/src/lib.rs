//! # snow-vm — the virtual machine substrate
//!
//! The paper's environment (§2) is "a collection of software and hardware
//! to support the distributed computations": a network of workstations, a
//! set of per-host daemons forming a *virtual machine*, and a scheduler.
//! This crate builds that environment for SNOW processes implemented as
//! OS threads:
//!
//! * [`host`] — host descriptions: simulated architecture
//!   ([`snow_codec::HostArch`]), relative CPU speed, and uplink
//!   [`snow_net::LinkModel`]. Hosts can join and leave dynamically.
//! * [`ids`] — the two-level naming of §2.1: application-level *ranks*
//!   and virtual-machine-level [`ids::Vmid`]s (host id + per-host process
//!   id).
//! * [`post`] — the per-process *inbox*: a FIFO mailbox carrying both
//!   data envelopes and control messages, with modeled link delays
//!   applied per logical connection. This mirrors PVM, where
//!   `pvm_recv` surfaces data and connection-control traffic through one
//!   interface (§5.1).
//! * [`wire`] — the wire types: data [`wire::Envelope`]s (payload,
//!   `peer_migrating`, `end_of_messages`, state transfer), control
//!   messages (`conn_req`/grant/nack, scheduler requests/replies) and
//!   [`wire::Signal`]s.
//! * [`daemon`] — one daemon thread per host. Daemons route connection
//!   requests to local processes, keep *pending-request records*, and
//!   send `conn_nack` when the target process is gone, the host left, or
//!   the target registered a reject-all flag (the paper's §3.1 extension
//!   of the PVM daemon).
//! * [`process`] — [`process::ProcessCell`], everything a running SNOW
//!   process borrows from the environment (inbox, signal queue, registry
//!   access, tracing).
//! * [`vm`] — [`vm::VirtualMachine`]: membership, process spawning,
//!   vmid allocation, the signal service.
//! * [`transport`] — the pluggable backend seam for the §2.3 services:
//!   the default in-process substrate and a framed localhost-TCP
//!   backend, both behind [`transport::Transport`].
//!
//! The protocol algorithms themselves (send/recv/connect/migrate/
//! initialize) live in `snow-core`; the scheduler logic in `snow-sched`.

#![warn(missing_docs)]

pub mod daemon;
pub mod faults;
pub mod host;
pub mod ids;
pub mod post;
pub mod process;
pub mod shard;
pub mod transport;
pub mod vm;
pub mod wire;

pub use faults::{FaultHook, FaultLayer};
pub use host::HostSpec;
pub use ids::{HostId, Rank, Tag, Vmid};
pub use post::{Post, PostSender, RemoteTx};
pub use process::ProcessCell;
pub use transport::{InProcTransport, NodeId, SendError, TcpTransport, Transport};
pub use vm::VirtualMachine;
pub use wire::{Ctrl, Envelope, Incoming, Payload, SchedReply, SchedRequest, Signal};
