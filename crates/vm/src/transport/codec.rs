//! Canonical encoding of the wire types for socket transports.
//!
//! Everything that crosses a socket is written with `snow-codec`'s
//! canonical big-endian form — the same machine-independent
//! representation the state-transfer layer already uses — so the frame
//! bodies are plain data with no deserialize-a-closure surface.
//!
//! The one genuinely hard case is a [`PostSender`] embedded in a
//! message (conn_req reply addresses, grant data-ends, scheduler reply
//! handles): a live queue handle cannot cross a socket. It is
//! *virtualized* instead, through a [`SenderVault`]: encoding a local
//! sender parks it in the sending node's expose table and writes its
//! `(home_node, expose_id)` wire name; encoding a sender that is
//! already remote just writes the name it carries. Decoding resolves a
//! name back to the real handle when it is local, or to a
//! [`crate::post::RemoteTx`]-backed sender that routes frames to the
//! home node otherwise.

use crate::ids::{Rank, Vmid};
use crate::post::PostSender;
use crate::wire::{
    ConnReqMsg, Ctrl, DrainOutcome, DrainPoolConfig, DrainRankResult, Envelope, ExeStatus,
    FailCause, Incoming, Payload, SchedReply, SchedRequest, Signal,
};
use bytes::Bytes;
use snow_codec::{CodecError, WireReader, WireWriter};
use snow_trace::MsgId;
use std::time::Duration;

/// Virtualizes [`PostSender`] handles across a socket boundary.
pub(crate) trait SenderVault {
    /// Wire name for `s`: `(home_node, expose_id)`.
    fn expose(&self, s: &PostSender<Incoming>) -> (u32, u64);
    /// The sender a received wire name stands for.
    fn resolve(&self, home: u32, id: u64) -> PostSender<Incoming>;
}

type Result<T> = std::result::Result<T, CodecError>;

fn put_sender(w: &mut WireWriter, v: &dyn SenderVault, s: &PostSender<Incoming>) {
    let (home, id) = v.expose(s);
    w.put_u32(home);
    w.put_u64(id);
}

fn get_sender(r: &mut WireReader, v: &dyn SenderVault) -> Result<PostSender<Incoming>> {
    let home = r.get_u32()?;
    let id = r.get_u64()?;
    Ok(v.resolve(home, id))
}

fn put_vmid(w: &mut WireWriter, vmid: Vmid) {
    w.put_u32(vmid.host.0);
    w.put_u32(vmid.pid);
}

fn get_vmid(r: &mut WireReader) -> Result<Vmid> {
    Ok(Vmid {
        host: crate::ids::HostId(r.get_u32()?),
        pid: r.get_u32()?,
    })
}

fn put_rank(w: &mut WireWriter, rank: Rank) {
    w.put_uvarint(rank as u64);
}

fn get_rank(r: &mut WireReader) -> Result<Rank> {
    Ok(r.get_uvarint()? as Rank)
}

fn put_payload(w: &mut WireWriter, v: &dyn SenderVault, p: &Payload) {
    match p {
        Payload::Data(b) => {
            w.put_u8(0);
            w.put_bytes(b);
        }
        Payload::PeerMigrating => w.put_u8(1),
        Payload::EndOfMessages => w.put_u8(2),
        Payload::RmlBatch(list) => {
            w.put_u8(3);
            w.put_uvarint(list.len() as u64);
            for e in list {
                put_envelope(w, v, e);
            }
        }
        Payload::ExeMemState(b) => {
            w.put_u8(4);
            w.put_bytes(b);
        }
        Payload::ExeMemStateChunk {
            seq,
            checksum,
            bytes,
        } => {
            w.put_u8(5);
            w.put_u32(*seq);
            w.put_u64(*checksum);
            w.put_bytes(bytes);
        }
        Payload::ExeMemStateDigest {
            digest,
            chunks,
            total_bytes,
        } => {
            w.put_u8(6);
            w.put_u64(*digest);
            w.put_u32(*chunks);
            w.put_u64(*total_bytes);
        }
        Payload::MigrationAborted => w.put_u8(7),
        Payload::StateAck { ok, from, detail } => {
            w.put_u8(8);
            w.put_u8(*ok as u8);
            put_vmid(w, *from);
            w.put_str(detail);
        }
    }
}

fn get_payload(r: &mut WireReader, v: &dyn SenderVault) -> Result<Payload> {
    Ok(match r.get_u8()? {
        0 => Payload::Data(Bytes::copy_from_slice(r.get_bytes()?)),
        1 => Payload::PeerMigrating,
        2 => Payload::EndOfMessages,
        3 => {
            let n = r.get_uvarint()?;
            let mut list = Vec::with_capacity(n.min(4096) as usize);
            for _ in 0..n {
                list.push(get_envelope(r, v)?);
            }
            Payload::RmlBatch(list)
        }
        4 => Payload::ExeMemState(Bytes::copy_from_slice(r.get_bytes()?)),
        5 => Payload::ExeMemStateChunk {
            seq: r.get_u32()?,
            checksum: r.get_u64()?,
            bytes: Bytes::copy_from_slice(r.get_bytes()?),
        },
        6 => Payload::ExeMemStateDigest {
            digest: r.get_u64()?,
            chunks: r.get_u32()?,
            total_bytes: r.get_u64()?,
        },
        7 => Payload::MigrationAborted,
        8 => Payload::StateAck {
            ok: r.get_u8()? != 0,
            from: get_vmid(r)?,
            detail: r.get_str()?.to_string(),
        },
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_envelope(w: &mut WireWriter, v: &dyn SenderVault, e: &Envelope) {
    put_rank(w, e.src);
    w.put_ivarint(e.tag as i64);
    w.put_u64(e.msg.0);
    put_payload(w, v, &e.payload);
}

fn get_envelope(r: &mut WireReader, v: &dyn SenderVault) -> Result<Envelope> {
    Ok(Envelope {
        src: get_rank(r)?,
        tag: r.get_ivarint()? as i32,
        msg: MsgId(r.get_u64()?),
        payload: get_payload(r, v)?,
    })
}

/// Encode a conn_req datagram body.
pub(crate) fn encode_conn_req(v: &dyn SenderVault, req: &ConnReqMsg) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_conn_req(&mut w, v, req);
    w.into_bytes()
}

/// Decode a conn_req datagram body.
pub(crate) fn decode_conn_req(v: &dyn SenderVault, body: &[u8]) -> Result<ConnReqMsg> {
    let mut r = WireReader::new(body);
    let req = get_conn_req(&mut r, v)?;
    r.finish()?;
    Ok(req)
}

fn put_conn_req(w: &mut WireWriter, v: &dyn SenderVault, req: &ConnReqMsg) {
    w.put_u64(req.req_id);
    put_rank(w, req.from_rank);
    put_vmid(w, req.from_vmid);
    put_vmid(w, req.target);
    put_sender(w, v, &req.reply);
    put_sender(w, v, &req.data_to_requester);
}

fn get_conn_req(r: &mut WireReader, v: &dyn SenderVault) -> Result<ConnReqMsg> {
    Ok(ConnReqMsg {
        req_id: r.get_u64()?,
        from_rank: get_rank(r)?,
        from_vmid: get_vmid(r)?,
        target: get_vmid(r)?,
        reply: get_sender(r, v)?,
        data_to_requester: get_sender(r, v)?,
    })
}

fn put_pool(w: &mut WireWriter, pool: &DrainPoolConfig) {
    w.put_uvarint(pool.max_workers as u64);
    w.put_uvarint(pool.job_queue_size as u64);
    w.put_uvarint(pool.res_queue_size as u64);
    w.put_u64(pool.progress_log_period.as_secs());
    w.put_u32(pool.progress_log_period.subsec_nanos());
}

fn get_pool(r: &mut WireReader) -> Result<DrainPoolConfig> {
    Ok(DrainPoolConfig {
        max_workers: r.get_uvarint()? as usize,
        job_queue_size: r.get_uvarint()? as usize,
        res_queue_size: r.get_uvarint()? as usize,
        progress_log_period: Duration::new(r.get_u64()?, r.get_u32()?),
    })
}

fn put_sched_request(w: &mut WireWriter, v: &dyn SenderVault, req: &SchedRequest) {
    match req {
        SchedRequest::Lookup { about, reply } => {
            w.put_u8(0);
            put_rank(w, *about);
            put_sender(w, v, reply);
        }
        SchedRequest::Migrate {
            rank,
            to_host,
            reply,
        } => {
            w.put_u8(1);
            put_rank(w, *rank);
            w.put_u32(to_host.0);
            put_sender(w, v, reply);
        }
        SchedRequest::MigrationStart { rank, reply } => {
            w.put_u8(2);
            put_rank(w, *rank);
            put_sender(w, v, reply);
        }
        SchedRequest::RestoreComplete {
            rank,
            new_vmid,
            reply,
        } => {
            w.put_u8(3);
            put_rank(w, *rank);
            put_vmid(w, *new_vmid);
            put_sender(w, v, reply);
        }
        SchedRequest::MigrationCommit { rank } => {
            w.put_u8(4);
            put_rank(w, *rank);
        }
        SchedRequest::MigrationAbort {
            rank,
            reason,
            reply,
        } => {
            w.put_u8(5);
            put_rank(w, *rank);
            w.put_str(reason);
            put_sender(w, v, reply);
        }
        SchedRequest::HostDrain { host, pool, reply } => {
            w.put_u8(6);
            w.put_u32(host.0);
            put_pool(w, pool);
            put_sender(w, v, reply);
        }
        SchedRequest::Terminated { rank } => {
            w.put_u8(7);
            put_rank(w, *rank);
        }
        SchedRequest::Register { rank, vmid } => {
            w.put_u8(8);
            put_rank(w, *rank);
            put_vmid(w, *vmid);
        }
        SchedRequest::Shutdown => w.put_u8(9),
    }
}

fn get_sched_request(r: &mut WireReader, v: &dyn SenderVault) -> Result<SchedRequest> {
    use crate::ids::HostId;
    Ok(match r.get_u8()? {
        0 => SchedRequest::Lookup {
            about: get_rank(r)?,
            reply: get_sender(r, v)?,
        },
        1 => SchedRequest::Migrate {
            rank: get_rank(r)?,
            to_host: HostId(r.get_u32()?),
            reply: get_sender(r, v)?,
        },
        2 => SchedRequest::MigrationStart {
            rank: get_rank(r)?,
            reply: get_sender(r, v)?,
        },
        3 => SchedRequest::RestoreComplete {
            rank: get_rank(r)?,
            new_vmid: get_vmid(r)?,
            reply: get_sender(r, v)?,
        },
        4 => SchedRequest::MigrationCommit { rank: get_rank(r)? },
        5 => SchedRequest::MigrationAbort {
            rank: get_rank(r)?,
            reason: r.get_str()?.to_string(),
            reply: get_sender(r, v)?,
        },
        6 => SchedRequest::HostDrain {
            host: HostId(r.get_u32()?),
            pool: get_pool(r)?,
            reply: get_sender(r, v)?,
        },
        7 => SchedRequest::Terminated { rank: get_rank(r)? },
        8 => SchedRequest::Register {
            rank: get_rank(r)?,
            vmid: get_vmid(r)?,
        },
        9 => SchedRequest::Shutdown,
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_exe_status(w: &mut WireWriter, s: ExeStatus) {
    w.put_u8(match s {
        ExeStatus::Running => 0,
        ExeStatus::Migrated => 1,
        ExeStatus::Terminated => 2,
    });
}

fn get_exe_status(r: &mut WireReader) -> Result<ExeStatus> {
    Ok(match r.get_u8()? {
        0 => ExeStatus::Running,
        1 => ExeStatus::Migrated,
        2 => ExeStatus::Terminated,
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_fail_cause(w: &mut WireWriter, c: &FailCause) {
    match c {
        FailCause::UnknownRank => w.put_u8(0),
        FailCause::NotRunning(s) => {
            w.put_u8(1);
            put_exe_status(w, *s);
        }
        FailCause::AlreadyMigrating => w.put_u8(2),
        FailCause::HostNotMember(h) => {
            w.put_u8(3);
            w.put_u32(h.0);
        }
        FailCause::HostDraining(h) => {
            w.put_u8(4);
            w.put_u32(h.0);
        }
        FailCause::SourceTerminated => w.put_u8(5),
        FailCause::DrainOverflow { ranks, capacity } => {
            w.put_u8(6);
            w.put_uvarint(*ranks as u64);
            w.put_uvarint(*capacity as u64);
        }
        FailCause::NoDestination => w.put_u8(7),
        FailCause::Aborted { attempts, reason } => {
            w.put_u8(8);
            w.put_u32(*attempts);
            w.put_str(reason);
        }
    }
}

fn get_fail_cause(r: &mut WireReader) -> Result<FailCause> {
    use crate::ids::HostId;
    Ok(match r.get_u8()? {
        0 => FailCause::UnknownRank,
        1 => FailCause::NotRunning(get_exe_status(r)?),
        2 => FailCause::AlreadyMigrating,
        3 => FailCause::HostNotMember(HostId(r.get_u32()?)),
        4 => FailCause::HostDraining(HostId(r.get_u32()?)),
        5 => FailCause::SourceTerminated,
        6 => FailCause::DrainOverflow {
            ranks: r.get_uvarint()? as usize,
            capacity: r.get_uvarint()? as usize,
        },
        7 => FailCause::NoDestination,
        8 => FailCause::Aborted {
            attempts: r.get_u32()?,
            reason: r.get_str()?.to_string(),
        },
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_sched_reply(w: &mut WireWriter, reply: &SchedReply) {
    match reply {
        SchedReply::Location {
            about,
            status,
            vmid,
        } => {
            w.put_u8(0);
            put_rank(w, *about);
            put_exe_status(w, *status);
            match vmid {
                Some(v) => {
                    w.put_u8(1);
                    put_vmid(w, *v);
                }
                None => w.put_u8(0),
            }
        }
        SchedReply::NewVmid { new_vmid } => {
            w.put_u8(1);
            put_vmid(w, *new_vmid);
        }
        SchedReply::PlTable { entries, old_vmid } => {
            w.put_u8(2);
            w.put_uvarint(entries.len() as u64);
            for (rank, vmid) in entries {
                put_rank(w, *rank);
                put_vmid(w, *vmid);
            }
            put_vmid(w, *old_vmid);
        }
        SchedReply::MigrationDone { rank, new_vmid } => {
            w.put_u8(3);
            put_rank(w, *rank);
            put_vmid(w, *new_vmid);
        }
        SchedReply::MigrationRetry {
            new_vmid,
            attempt,
            backoff_ms,
        } => {
            w.put_u8(4);
            put_vmid(w, *new_vmid);
            w.put_u32(*attempt);
            w.put_u64(*backoff_ms);
        }
        SchedReply::MigrationAborted { rank } => {
            w.put_u8(5);
            put_rank(w, *rank);
        }
        SchedReply::MigrationAbortDenied { rank } => {
            w.put_u8(6);
            put_rank(w, *rank);
        }
        SchedReply::MigrationFailed { rank, cause } => {
            w.put_u8(7);
            put_rank(w, *rank);
            put_fail_cause(w, cause);
        }
        SchedReply::DrainDone {
            host,
            outcome,
            per_rank,
        } => {
            w.put_u8(8);
            w.put_u32(host.0);
            match outcome {
                DrainOutcome::Evacuated { completed, retried } => {
                    w.put_u8(0);
                    w.put_uvarint(*completed as u64);
                    w.put_uvarint(*retried as u64);
                }
                DrainOutcome::PartiallyEvacuated {
                    completed,
                    aborted,
                    retried,
                } => {
                    w.put_u8(1);
                    w.put_uvarint(*completed as u64);
                    w.put_uvarint(*aborted as u64);
                    w.put_uvarint(*retried as u64);
                }
            }
            w.put_uvarint(per_rank.len() as u64);
            for (rank, res) in per_rank {
                put_rank(w, *rank);
                match res {
                    DrainRankResult::Completed(v) => {
                        w.put_u8(0);
                        put_vmid(w, *v);
                    }
                    DrainRankResult::Aborted(cause) => {
                        w.put_u8(1);
                        put_fail_cause(w, cause);
                    }
                }
            }
        }
        SchedReply::DrainFailed { host, cause } => {
            w.put_u8(9);
            w.put_u32(host.0);
            put_fail_cause(w, cause);
        }
        SchedReply::Error { reason } => {
            w.put_u8(10);
            w.put_str(reason);
        }
    }
}

fn get_sched_reply(r: &mut WireReader) -> Result<SchedReply> {
    use crate::ids::HostId;
    Ok(match r.get_u8()? {
        0 => SchedReply::Location {
            about: get_rank(r)?,
            status: get_exe_status(r)?,
            vmid: match r.get_u8()? {
                0 => None,
                1 => Some(get_vmid(r)?),
                t => return Err(CodecError::BadTag(t)),
            },
        },
        1 => SchedReply::NewVmid {
            new_vmid: get_vmid(r)?,
        },
        2 => {
            let n = r.get_uvarint()?;
            let mut entries = Vec::with_capacity(n.min(65536) as usize);
            for _ in 0..n {
                entries.push((get_rank(r)?, get_vmid(r)?));
            }
            SchedReply::PlTable {
                entries,
                old_vmid: get_vmid(r)?,
            }
        }
        3 => SchedReply::MigrationDone {
            rank: get_rank(r)?,
            new_vmid: get_vmid(r)?,
        },
        4 => SchedReply::MigrationRetry {
            new_vmid: get_vmid(r)?,
            attempt: r.get_u32()?,
            backoff_ms: r.get_u64()?,
        },
        5 => SchedReply::MigrationAborted { rank: get_rank(r)? },
        6 => SchedReply::MigrationAbortDenied { rank: get_rank(r)? },
        7 => SchedReply::MigrationFailed {
            rank: get_rank(r)?,
            cause: get_fail_cause(r)?,
        },
        8 => {
            let host = HostId(r.get_u32()?);
            let outcome = match r.get_u8()? {
                0 => DrainOutcome::Evacuated {
                    completed: r.get_uvarint()? as usize,
                    retried: r.get_uvarint()? as usize,
                },
                1 => DrainOutcome::PartiallyEvacuated {
                    completed: r.get_uvarint()? as usize,
                    aborted: r.get_uvarint()? as usize,
                    retried: r.get_uvarint()? as usize,
                },
                t => return Err(CodecError::BadTag(t)),
            };
            let n = r.get_uvarint()?;
            let mut per_rank = Vec::with_capacity(n.min(65536) as usize);
            for _ in 0..n {
                let rank = get_rank(r)?;
                let res = match r.get_u8()? {
                    0 => DrainRankResult::Completed(get_vmid(r)?),
                    1 => DrainRankResult::Aborted(get_fail_cause(r)?),
                    t => return Err(CodecError::BadTag(t)),
                };
                per_rank.push((rank, res));
            }
            SchedReply::DrainDone {
                host,
                outcome,
                per_rank,
            }
        }
        9 => SchedReply::DrainFailed {
            host: HostId(r.get_u32()?),
            cause: get_fail_cause(r)?,
        },
        10 => SchedReply::Error {
            reason: r.get_str()?.to_string(),
        },
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_ctrl(w: &mut WireWriter, v: &dyn SenderVault, c: &Ctrl) {
    match c {
        Ctrl::ConnReq(req) => {
            w.put_u8(0);
            put_conn_req(w, v, req);
        }
        Ctrl::ConnGrant {
            req_id,
            peer_rank,
            peer_vmid,
            data_to_granter,
        } => {
            w.put_u8(1);
            w.put_u64(*req_id);
            put_rank(w, *peer_rank);
            put_vmid(w, *peer_vmid);
            put_sender(w, v, data_to_granter);
        }
        Ctrl::ConnNack { req_id, target } => {
            w.put_u8(2);
            w.put_u64(*req_id);
            put_vmid(w, *target);
        }
        Ctrl::SchedRequest(req) => {
            w.put_u8(3);
            put_sched_request(w, v, req);
        }
        Ctrl::Sched(reply) => {
            w.put_u8(4);
            put_sched_reply(w, reply);
        }
    }
}

fn get_ctrl(r: &mut WireReader, v: &dyn SenderVault) -> Result<Ctrl> {
    Ok(match r.get_u8()? {
        0 => Ctrl::ConnReq(get_conn_req(r, v)?),
        1 => Ctrl::ConnGrant {
            req_id: r.get_u64()?,
            peer_rank: get_rank(r)?,
            peer_vmid: get_vmid(r)?,
            data_to_granter: get_sender(r, v)?,
        },
        2 => Ctrl::ConnNack {
            req_id: r.get_u64()?,
            target: get_vmid(r)?,
        },
        3 => Ctrl::SchedRequest(get_sched_request(r, v)?),
        4 => Ctrl::Sched(get_sched_reply(r)?),
        t => return Err(CodecError::BadTag(t)),
    })
}

/// Encode one inbox message body.
pub(crate) fn encode_incoming(v: &dyn SenderVault, msg: &Incoming) -> Vec<u8> {
    let mut w = WireWriter::new();
    match msg {
        Incoming::Data(e) => {
            w.put_u8(0);
            put_envelope(&mut w, v, e);
        }
        Incoming::Ctrl(c) => {
            w.put_u8(1);
            put_ctrl(&mut w, v, c);
        }
    }
    w.into_bytes()
}

/// Decode one inbox message body.
pub(crate) fn decode_incoming(v: &dyn SenderVault, body: &[u8]) -> Result<Incoming> {
    let mut r = WireReader::new(body);
    let msg = match r.get_u8()? {
        0 => Incoming::Data(get_envelope(&mut r, v)?),
        1 => Incoming::Ctrl(get_ctrl(&mut r, v)?),
        t => return Err(CodecError::BadTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

/// Encode a signal body.
pub(crate) fn encode_signal(sig: Signal) -> Vec<u8> {
    let mut w = WireWriter::new();
    match sig {
        Signal::Migrate => w.put_u8(0),
        Signal::Disconnect { from } => {
            w.put_u8(1);
            put_rank(&mut w, from);
        }
    }
    w.into_bytes()
}

/// Decode a signal body.
pub(crate) fn decode_signal(body: &[u8]) -> Result<Signal> {
    let mut r = WireReader::new(body);
    let sig = match r.get_u8()? {
        0 => Signal::Migrate,
        1 => Signal::Disconnect {
            from: get_rank(&mut r)?,
        },
        t => return Err(CodecError::BadTag(t)),
    };
    r.finish()?;
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::post::Post;
    use parking_lot::Mutex;
    use snow_net::{LinkModel, TimeScale};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A vault that parks exposed senders in a map, standing in for one
    /// node's expose table.
    #[derive(Default)]
    struct MapVault {
        next: AtomicU64,
        table: Mutex<HashMap<u64, PostSender<Incoming>>>,
    }

    impl SenderVault for MapVault {
        fn expose(&self, s: &PostSender<Incoming>) -> (u32, u64) {
            let id = self.next.fetch_add(1, Ordering::Relaxed);
            self.table.lock().insert(id, s.clone());
            (0, id)
        }
        fn resolve(&self, _home: u32, id: u64) -> PostSender<Incoming> {
            self.table.lock().get(&id).expect("exposed").clone()
        }
    }

    fn vmid(h: u32, p: u32) -> Vmid {
        Vmid {
            host: HostId(h),
            pid: p,
        }
    }

    fn roundtrip(msg: &Incoming) -> Incoming {
        let v = MapVault::default();
        let bytes = encode_incoming(&v, msg);
        decode_incoming(&v, &bytes).expect("decode")
    }

    #[test]
    fn data_envelope_roundtrips() {
        let msg = Incoming::Data(Envelope {
            src: 3,
            tag: -7,
            msg: MsgId(99),
            payload: Payload::Data(Bytes::from_static(b"payload")),
        });
        match roundtrip(&msg) {
            Incoming::Data(e) => {
                assert_eq!(e.src, 3);
                assert_eq!(e.tag, -7);
                assert_eq!(e.msg, MsgId(99));
                match e.payload {
                    Payload::Data(b) => assert_eq!(&b[..], b"payload"),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_marker_payloads_roundtrip() {
        for payload in [
            Payload::PeerMigrating,
            Payload::EndOfMessages,
            Payload::MigrationAborted,
            Payload::ExeMemStateDigest {
                digest: 1,
                chunks: 2,
                total_bytes: 3,
            },
            Payload::StateAck {
                ok: false,
                from: vmid(1, 2),
                detail: "checksum mismatch".into(),
            },
            Payload::ExeMemStateChunk {
                seq: 7,
                checksum: 0xdead,
                bytes: Bytes::from_static(&[1, 2, 3]),
            },
            Payload::RmlBatch(vec![Envelope {
                src: 1,
                tag: 0,
                msg: MsgId(5),
                payload: Payload::Data(Bytes::from_static(b"x")),
            }]),
        ] {
            let msg = Incoming::Data(Envelope {
                src: 0,
                tag: 0,
                msg: MsgId(1),
                payload,
            });
            let got = roundtrip(&msg);
            assert_eq!(format!("{got:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn conn_req_carries_live_senders_through_the_vault() {
        let v = MapVault::default();
        let (reply, post) = Post::<Incoming>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let req = ConnReqMsg {
            req_id: 42,
            from_rank: 1,
            from_vmid: vmid(0, 1),
            target: vmid(2, 3),
            reply: reply.clone(),
            data_to_requester: reply,
        };
        let bytes = encode_conn_req(&v, &req);
        let got = decode_conn_req(&v, &bytes).unwrap();
        assert_eq!(got.req_id, 42);
        assert_eq!(got.target, vmid(2, 3));
        // The resolved reply sender reaches the original inbox.
        got.reply
            .send(
                Incoming::Ctrl(Ctrl::ConnNack {
                    req_id: 42,
                    target: vmid(2, 3),
                }),
                8,
            )
            .unwrap();
        assert!(matches!(
            post.recv().unwrap(),
            Incoming::Ctrl(Ctrl::ConnNack { req_id: 42, .. })
        ));
    }

    #[test]
    fn sched_messages_roundtrip() {
        let (reply, _post) = Post::<Incoming>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        for req in [
            SchedRequest::Lookup {
                about: 5,
                reply: reply.clone(),
            },
            SchedRequest::Migrate {
                rank: 1,
                to_host: HostId(4),
                reply: reply.clone(),
            },
            SchedRequest::MigrationStart {
                rank: 2,
                reply: reply.clone(),
            },
            SchedRequest::RestoreComplete {
                rank: 3,
                new_vmid: vmid(1, 1),
                reply: reply.clone(),
            },
            SchedRequest::MigrationCommit { rank: 4 },
            SchedRequest::MigrationAbort {
                rank: 5,
                reason: "dest gone".into(),
                reply: reply.clone(),
            },
            SchedRequest::HostDrain {
                host: HostId(2),
                pool: DrainPoolConfig::default(),
                reply: reply.clone(),
            },
            SchedRequest::Terminated { rank: 6 },
            SchedRequest::Register {
                rank: 7,
                vmid: vmid(3, 3),
            },
            SchedRequest::Shutdown,
        ] {
            let msg = Incoming::Ctrl(Ctrl::SchedRequest(req));
            let got = roundtrip(&msg);
            // Senders print as opaque handles; compare debug shapes of
            // the sender-free projection via the discriminant-rich text.
            assert_eq!(
                std::mem::discriminant(got_req(&got)),
                std::mem::discriminant(got_req(&msg)),
            );
        }
        for reply in [
            SchedReply::Location {
                about: 1,
                status: ExeStatus::Migrated,
                vmid: Some(vmid(1, 2)),
            },
            SchedReply::NewVmid {
                new_vmid: vmid(2, 2),
            },
            SchedReply::PlTable {
                entries: vec![(0, vmid(0, 0)), (1, vmid(1, 0))],
                old_vmid: vmid(9, 9),
            },
            SchedReply::MigrationDone {
                rank: 1,
                new_vmid: vmid(1, 5),
            },
            SchedReply::MigrationRetry {
                new_vmid: vmid(2, 5),
                attempt: 2,
                backoff_ms: 40,
            },
            SchedReply::MigrationAborted { rank: 3 },
            SchedReply::MigrationAbortDenied { rank: 4 },
            SchedReply::MigrationFailed {
                rank: 5,
                cause: FailCause::Aborted {
                    attempts: 3,
                    reason: "x".into(),
                },
            },
            SchedReply::DrainDone {
                host: HostId(1),
                outcome: DrainOutcome::PartiallyEvacuated {
                    completed: 2,
                    aborted: 1,
                    retried: 4,
                },
                per_rank: vec![
                    (0, DrainRankResult::Completed(vmid(2, 0))),
                    (1, DrainRankResult::Aborted(FailCause::NoDestination)),
                ],
            },
            SchedReply::DrainFailed {
                host: HostId(3),
                cause: FailCause::DrainOverflow {
                    ranks: 100,
                    capacity: 68,
                },
            },
            SchedReply::Error {
                reason: "unknown rank".into(),
            },
        ] {
            let msg = Incoming::Ctrl(Ctrl::Sched(reply));
            let got = roundtrip(&msg);
            assert_eq!(format!("{got:?}"), format!("{msg:?}"));
        }
    }

    fn got_req(msg: &Incoming) -> &SchedRequest {
        match msg {
            Incoming::Ctrl(Ctrl::SchedRequest(r)) => r,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn signals_roundtrip() {
        for sig in [Signal::Migrate, Signal::Disconnect { from: 12 }] {
            assert_eq!(decode_signal(&encode_signal(sig)).unwrap(), sig);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let v = MapVault::default();
        let mut bytes = encode_signal(Signal::Migrate);
        bytes.push(0);
        assert!(decode_signal(&bytes).is_err());
        let mut bytes = encode_incoming(
            &v,
            &Incoming::Ctrl(Ctrl::Sched(SchedReply::Error { reason: "r".into() })),
        );
        bytes.push(0);
        assert!(decode_incoming(&v, &bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_bad_tag() {
        let v = MapVault::default();
        assert!(matches!(
            decode_incoming(&v, &[0xfe]),
            Err(CodecError::BadTag(0xfe))
        ));
    }
}
