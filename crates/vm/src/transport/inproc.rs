//! The default backend: in-process delivery through the sharded
//! registry — the exact substrate every earlier PR ran (and audited)
//! the protocol on, now behind the [`Transport`] seam.

use super::{NodeId, SendError, Transport};
use crate::daemon::{DaemonHandle, DaemonMsg};
use crate::ids::{HostId, Vmid};
use crate::vm::Registry;
use crate::wire::{ConnReqMsg, Incoming, Signal};
use parking_lot::RwLock;
use snow_net::FrameClass;
use std::collections::HashMap;

/// In-process transport: crossbeam queues, zero-clone registry borrows
/// on the hot path, deterministic timing under the modeled clock.
#[derive(Default)]
pub struct InProcTransport {
    registry: RwLock<Option<Registry>>,
    daemons: RwLock<HashMap<u32, DaemonHandle>>,
}

impl InProcTransport {
    /// An unattached transport; [`Transport::attach`] binds the
    /// registry when the virtual machine is built.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        self.registry.read().as_ref().map(f)
    }
}

impl Transport for InProcTransport {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn attach(&self, registry: Registry) {
        *self.registry.write() = Some(registry);
    }

    fn host_joined(&self, node: NodeId, daemon: Option<DaemonHandle>) {
        if let Some(d) = daemon {
            self.daemons.write().insert(node.0, d);
        }
    }

    fn host_left(&self, node: NodeId) {
        self.daemons.write().remove(&node.0);
    }

    fn send_to(
        &self,
        _from: NodeId,
        to: Vmid,
        msg: Incoming,
        bytes: usize,
        class: FrameClass,
    ) -> Result<(), SendError> {
        // Mirror the socket backends' frame cap on the modeled wire
        // size, so "fits in one frame" is a backend-independent part of
        // the send contract rather than a TCP quirk.
        if bytes > snow_net::MAX_BODY_BYTES {
            return Err(SendError::TooLarge);
        }
        // Borrow the address in place — no ProcAddr/label clone; this is
        // the scheduler-consult and bench-flood hot path.
        self.with_registry(|r| r.with_addr(to, |addr| addr.inbox.send_classed(msg, bytes, class)))
            .flatten()
            .ok_or(SendError::Unroutable)?
            .map_err(|_| SendError::Closed)
    }

    fn route_conn_req(&self, _from: NodeId, req: ConnReqMsg) -> Result<(), SendError> {
        let host: HostId = req.target.host;
        let daemon = self
            .daemons
            .read()
            .get(&host.0)
            .cloned()
            .ok_or(SendError::Unroutable)?;
        if daemon.send(DaemonMsg::RouteConnReq(req)) {
            Ok(())
        } else {
            Err(SendError::Unroutable)
        }
    }

    fn signal(&self, to: Vmid, sig: Signal) -> bool {
        self.with_registry(|r| {
            r.with_addr(to, |addr| addr.signals.send(sig).is_ok())
                .unwrap_or(false)
        })
        .unwrap_or(false)
    }
}
