//! Pluggable transport backends for the §2.3 communication services.
//!
//! The SNOW protocol state machines are written against three services
//! (§2.3): connection-oriented FIFO channels, a connectionless datagram
//! service between daemons, and an ordered best-effort signaling
//! service. [`Transport`] is that contract as a trait: everything in
//! `snow-vm`/`snow-sched` that crosses a host boundary goes through it,
//! so swapping the backend cannot change protocol behaviour — proving
//! the §4 guarantees transport-independent is the whole point.
//!
//! Two backends ship:
//!
//! * [`InProcTransport`] (the default) — crossbeam queues through the
//!   sharded registry, exactly the substrate every earlier PR ran on.
//!   Deterministic, fault-injectable, chaos-replayable.
//! * [`TcpTransport`] — real localhost sockets with the big-endian
//!   length-prefixed frames of [`snow_net::frame`] and a built-in node
//!   registry for vmid→socket resolution (no external name service).
//!
//! Only *routing* moves behind the trait. Local interactions — a
//! process answering its own daemon, an established channel's
//! [`crate::post::PostSender`] — keep their direct paths; over TCP a
//! channel sender that crossed the wire is already a virtualized
//! [`crate::post::RemoteTx`] handle, so sends through it hit the socket
//! without the router's help.

mod codec;
mod inproc;
mod tcp;

pub use inproc::InProcTransport;
pub use tcp::TcpTransport;

use crate::daemon::DaemonHandle;
use crate::ids::{HostId, Vmid};
use crate::vm::Registry;
use crate::wire::{ConnReqMsg, Incoming, Signal};
use snow_net::FrameClass;

/// A routable endpoint of the transport: one per joined host, plus
/// out-of-band endpoints like the scheduler client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The harness-side scheduler client: a sender that lives on no
    /// host. Socket backends give it a real endpoint so replies can
    /// route back; the in-process backend never needs to.
    pub const CLIENT: NodeId = NodeId(u32::MAX);
}

impl From<HostId> for NodeId {
    fn from(h: HostId) -> NodeId {
        NodeId(h.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == NodeId::CLIENT {
            write!(f, "node:client")
        } else {
            write!(f, "node:{}", self.0)
        }
    }
}

/// Why a transport send did not reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// No route: the vmid is not registered, or its node is not (or no
    /// longer) a member.
    Unroutable,
    /// The route exists but the destination inbox has closed (the
    /// process terminated).
    Closed,
    /// The message exceeds what one wire frame can carry
    /// ([`snow_net::MAX_BODY_BYTES`]). Raised at the sending call on
    /// every backend — a socket backend must not let an oversized
    /// length field desync the stream, and the in-process backend
    /// mirrors the check so protocol code sees one contract.
    TooLarge,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Unroutable => write!(f, "no route to destination"),
            SendError::Closed => write!(f, "destination inbox closed"),
            SendError::TooLarge => write!(
                f,
                "message larger than one wire frame ({} bytes)",
                snow_net::MAX_BODY_BYTES
            ),
        }
    }
}

impl std::error::Error for SendError {}

/// The §2.3 communication services, as one backend-swappable seam.
///
/// Implementations must preserve the service guarantees the protocol
/// state machines assume:
///
/// * [`Transport::send_to`] — **connection-oriented**: lossless and
///   FIFO per sender (per calling thread of one logical flow).
/// * [`Transport::route_conn_req`] — **connectionless**: delivery to
///   the target host's daemon; the *daemon* draws any fault verdict
///   (drop/duplicate), so requesters must be prepared to re-send
///   regardless of backend.
/// * [`Transport::signal`] — **signaling**: ordered, best-effort;
///   `false` means the target is known to be gone (a socket backend may
///   be optimistic — signals are best-effort by contract).
pub trait Transport: Send + Sync {
    /// Short backend name for records and bench output.
    fn name(&self) -> &'static str;

    /// Bind the environment's process registry. Called once when the
    /// virtual machine is built, before any host joins.
    fn attach(&self, registry: Registry);

    /// A node joined: `daemon` is its conn_req router, `None` for
    /// daemon-less endpoints (bench nodes, the scheduler client).
    fn host_joined(&self, node: NodeId, daemon: Option<DaemonHandle>);

    /// A node left: all routes to it become [`SendError::Unroutable`].
    fn host_left(&self, node: NodeId);

    /// Deliver `msg` to the inbox of `to` over the connection-oriented
    /// service. `bytes` is the modeled wire size for link accounting.
    fn send_to(
        &self,
        from: NodeId,
        to: Vmid,
        msg: Incoming,
        bytes: usize,
        class: FrameClass,
    ) -> Result<(), SendError>;

    /// Route a `conn_req` datagram to the daemon of `req.target.host`.
    fn route_conn_req(&self, from: NodeId, req: ConnReqMsg) -> Result<(), SendError>;

    /// Deliver `sig` to the ordered signal queue of `to`.
    fn signal(&self, to: Vmid, sig: Signal) -> bool;

    /// Release backend resources (sockets, threads). Idempotent.
    fn shutdown(&self) {}
}
