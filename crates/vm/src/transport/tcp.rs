//! Localhost TCP backend: the same protocol over real sockets.
//!
//! Every joined node gets its own `127.0.0.1:0` listener; the
//! transport's node table — node id → socket address, daemon handle and
//! expose table — is the built-in *node registry* that resolves
//! vmid→socket without an external name service (the mesh-lang STF
//! design: canonical frames, no EPMD). Frames are the big-endian
//! length-prefixed format of [`snow_net::frame`]; bodies are the
//! canonical encodings of [`super::codec`].
//!
//! Delivery guarantees, by service:
//!
//! * **Connection-oriented** ([`Transport::send_to`] and virtualized
//!   [`RemoteTx`] channel senders): all traffic to one destination node
//!   shares one pooled socket fed through a bounded FIFO queue drained
//!   by a dedicated writer thread, so enqueue order equals wire order
//!   and per-sender FIFO holds end to end. The writer coalesces bursts
//!   of queued frames into shared flushes ([`BatchWriter`]): it drains
//!   until the queue is momentarily empty (or
//!   [`snow_net::frame::BATCH_FLUSH_BYTES`] accumulate) before
//!   flushing, so a flood of small `Inbox`/`Signal` frames costs one
//!   syscall per batch instead of one per frame. The queue bound is the
//!   backpressure: senders outrunning the socket block in `send` until
//!   the writer catches up.
//! * **Connectionless** ([`Transport::route_conn_req`]): the frame is
//!   handed to the destination daemon, which draws the drop/duplicate
//!   fault verdict exactly as in-process — fault semantics are
//!   receiver-side and therefore backend-independent.
//! * **Signaling** ([`Transport::signal`]): best-effort; `true` means
//!   the target was alive when the frame was written.
//!
//! Two deliberate differences from the in-process backend, both within
//! the §2.3 contract: a send whose frame was written returns `Ok` even
//! if the destination process dies before the frame lands (a socket
//! cannot know), and senders parked in an expose table stay alive until
//! [`Transport::shutdown`] clears them — clean protocol runs terminate
//! through explicit markers (`PeerMigrating`/`EndOfMessages`), not
//! sender-drop, so only teardown notices.
//!
//! Socket wires carry real delays, so this backend runs at
//! [`TimeScale::ZERO`]: modeled link delays and socket latency must not
//! stack.

use super::codec::{
    decode_conn_req, decode_incoming, decode_signal, encode_conn_req, encode_incoming,
    encode_signal, SenderVault,
};
use super::{NodeId, SendError, Transport};
use crate::daemon::{DaemonHandle, DaemonMsg};
use crate::ids::Vmid;
use crate::post::{InboxClosed, Post, PostSender, RemoteTx};
use crate::vm::Registry;
use crate::wire::{ConnReqMsg, Incoming, Signal};
use parking_lot::{Mutex, RwLock};
use snow_codec::{WireReader, WireWriter};
use snow_net::frame::{encode_frame, read_frame, BatchWriter, FrameKind};
use snow_net::{FrameClass, LinkModel, TimeScale};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Node {
    addr: SocketAddr,
    daemon: Mutex<Option<DaemonHandle>>,
    /// Sender handles virtualized out of this node: expose_id → the
    /// live local sender a remote peer's wire name resolves back to.
    exposed: Mutex<HashMap<u64, PostSender<Incoming>>>,
}

/// Frames one pooled connection's queue may hold before senders block.
/// Small enough to bound the memory a stalled peer pins (64 MiB frames
/// × this cap worst case never materialises: floods queue ~100-byte
/// frames, state chunks are few), large enough that a flood burst keeps
/// the writer busy between wakeups.
const SEND_QUEUE_FRAMES: usize = 1024;

/// A pooled outbound connection: encoded frames go into the bounded
/// queue in call order; the dedicated writer thread drains it onto the
/// socket in the same order. The writer owns the stream — when the
/// queue's senders detect disconnection (writer died on a write error)
/// the conn is evicted and the next send re-dials.
struct Conn {
    tx: crossbeam::channel::Sender<Vec<u8>>,
}

/// Drain `rx` onto `stream`, coalescing whatever is queued into shared
/// flushes. Exits when the queue disconnects (conn evicted, node left,
/// shutdown) — after putting any still-queued frames on the wire — or
/// when a write fails, which drops the stream and lets queue senders
/// observe the disconnect on their next send.
fn writer_loop(rx: crossbeam::channel::Receiver<Vec<u8>>, stream: TcpStream) {
    let mut out = BatchWriter::new(stream);
    loop {
        // Park until there is work (or the conn is torn down).
        let frame = match rx.recv() {
            Ok(f) => f,
            Err(_) => {
                let _ = out.flush();
                return;
            }
        };
        if out.push_encoded(&frame).is_err() {
            return;
        }
        // Opportunistic drain: everything queued behind the wakeup
        // frame joins its batch. Flush on queue-momentarily-empty —
        // the latency edge of the flush policy (the byte threshold
        // inside BatchWriter is the other edge).
        loop {
            match rx.try_recv() {
                Ok(f) => {
                    if out.push_encoded(&f).is_err() {
                        return;
                    }
                }
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    let _ = out.flush();
                    return;
                }
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
}

/// How long the accept loop backs off after `err` before the next
/// accept. Per-connection failures (the peer gave up mid-handshake —
/// ECONNABORTED and kin) are normal churn and retry immediately;
/// anything else — most notably descriptor exhaustion, which surfaces
/// as an uncategorised error — backs off so the loop does not spin
/// while the condition persists. No error kind is fatal: the accept
/// thread exits only on shutdown or node removal.
fn accept_backoff(err: &io::Error) -> Duration {
    match err.kind() {
        io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::Interrupted
        | io::ErrorKind::WouldBlock => Duration::ZERO,
        _ => Duration::from_millis(10),
    }
}

struct Inner {
    registry: RwLock<Option<Registry>>,
    nodes: RwLock<HashMap<u32, Arc<Node>>>,
    /// Pooled outbound connections, one per destination node. Dials
    /// happen outside this lock (see [`Inner::conn_to`]); the map is
    /// the single point of truth for which connection frames ride, so
    /// frames of one sender never split across streams — or FIFO dies.
    conns: Mutex<HashMap<u32, Arc<Conn>>>,
    next_expose: AtomicU64,
    down: AtomicBool,
}

impl Inner {
    fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        self.registry.read().as_ref().map(f)
    }

    /// Create the node (listener + accept thread) if it does not exist;
    /// install `daemon` either way when one is supplied.
    fn ensure_node(self: &Arc<Self>, id: u32, daemon: Option<DaemonHandle>) {
        {
            let nodes = self.nodes.read();
            if let Some(node) = nodes.get(&id) {
                if daemon.is_some() {
                    *node.daemon.lock() = daemon;
                }
                return;
            }
        }
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind transport listener");
        let addr = listener.local_addr().expect("listener addr");
        let node = Arc::new(Node {
            addr,
            daemon: Mutex::new(daemon),
            exposed: Mutex::new(HashMap::new()),
        });
        let mut nodes = self.nodes.write();
        // Raced with another creator: keep theirs, drop our listener.
        if let Some(existing) = nodes.get(&id) {
            if node.daemon.lock().is_some() {
                *existing.daemon.lock() = node.daemon.lock().clone();
            }
            return;
        }
        nodes.insert(id, Arc::clone(&node));
        drop(nodes);
        let inner = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("snow-tcp-accept-{id}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.down.load(Ordering::SeqCst) || !inner.nodes.read().contains_key(&id) {
                        return;
                    }
                    // A failed accept poisons one handshake, not the
                    // listener: log, back off if it looks like resource
                    // pressure, and keep accepting. Exiting here would
                    // silently stop the node taking new connections.
                    let stream = match stream {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("snow-tcp-accept-{id}: accept error (continuing): {e}");
                            std::thread::sleep(accept_backoff(&e));
                            continue;
                        }
                    };
                    let inner = Arc::clone(&inner);
                    let node = Arc::clone(&node);
                    std::thread::Builder::new()
                        .name(format!("snow-tcp-read-{id}"))
                        .spawn(move || reader_loop(inner, id, node, stream))
                        .expect("spawn reader thread");
                }
            })
            .expect("spawn accept thread");
    }

    /// The pooled connection to `dst`, dialing a new one if none exists.
    /// The dial happens *outside* the `conns` lock — one unreachable
    /// destination must not stall senders to every other node for the
    /// connect timeout — with an insert-or-race afterwards: if another
    /// sender pooled a connection while we dialed, theirs wins and our
    /// socket is dropped before any frame touched it (frames to one
    /// node must never split across streams, or FIFO dies).
    fn conn_to(&self, dst: u32, addr: SocketAddr) -> Result<Arc<Conn>, SendError> {
        if let Some(c) = self.conns.lock().get(&dst) {
            return Ok(Arc::clone(c));
        }
        let stream = TcpStream::connect(addr).map_err(|_| SendError::Unroutable)?;
        let _ = stream.set_nodelay(true);
        let (tx, rx) = crossbeam::channel::bounded(SEND_QUEUE_FRAMES);
        let conn = Arc::new(Conn { tx });
        {
            let mut conns = self.conns.lock();
            if let Some(existing) = conns.get(&dst) {
                return Ok(Arc::clone(existing));
            }
            conns.insert(dst, Arc::clone(&conn));
        }
        std::thread::Builder::new()
            .name(format!("snow-tcp-write-{dst}"))
            .spawn(move || writer_loop(rx, stream))
            .expect("spawn writer thread");
        Ok(conn)
    }

    /// Queue one frame for `dst`'s writer, dialing (or re-dialing after
    /// the writer died on a broken socket) as needed. Blocks only when
    /// `dst`'s queue is full — backpressure from that one socket, not a
    /// global stall.
    fn send_frame(&self, dst: u32, kind: FrameKind, body: &[u8]) -> Result<(), SendError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(SendError::Unroutable);
        }
        let addr = self
            .nodes
            .read()
            .get(&dst)
            .map(|n| n.addr)
            .ok_or(SendError::Unroutable)?;
        // Encode on the sending thread so an oversized body surfaces
        // here as a typed error instead of desyncing the stream or
        // killing the connection receiver-side.
        let frame = encode_frame(kind, body).map_err(|_| SendError::TooLarge)?;
        let mut frame = Some(frame);
        for attempt in 0..2 {
            let conn = self.conn_to(dst, addr)?;
            match conn.tx.send(frame.take().expect("frame unconsumed")) {
                Ok(()) => return Ok(()),
                // Writer gone (socket died): take the frame back for
                // the retry, evict the dead conn if it is still the
                // pooled one, and re-dial once.
                Err(crossbeam::channel::SendError(f)) => frame = Some(f),
            }
            let mut conns = self.conns.lock();
            if conns.get(&dst).is_some_and(|c| Arc::ptr_eq(c, &conn)) {
                conns.remove(&dst);
            }
            if attempt == 1 {
                return Err(SendError::Unroutable);
            }
        }
        Err(SendError::Unroutable)
    }
}

/// Per-node codec vault: exposes local senders out of `local`'s table,
/// resolves wire names back to local handles or [`TcpRemoteTx`] stubs.
struct NodeVault {
    inner: Arc<Inner>,
    local: u32,
}

impl SenderVault for NodeVault {
    fn expose(&self, s: &PostSender<Incoming>) -> (u32, u64) {
        // Already virtualized: forward its existing wire name instead of
        // chaining a second hop through this node.
        if let Some((home, id)) = s.remote_addr() {
            return (home, id);
        }
        let id = self.inner.next_expose.fetch_add(1, Ordering::Relaxed);
        if let Some(node) = self.inner.nodes.read().get(&self.local) {
            node.exposed.lock().insert(id, s.clone());
        }
        (self.local, id)
    }

    fn resolve(&self, home: u32, id: u64) -> PostSender<Incoming> {
        if home == self.local {
            // A sender exposed here came back around (same-node
            // conn_req): hand back the original local handle.
            if let Some(node) = self.inner.nodes.read().get(&home) {
                if let Some(s) = node.exposed.lock().get(&id) {
                    return s.clone();
                }
            }
            // Expose record gone (node left / shutdown): a dead sender,
            // indistinguishable from the owner terminating.
            let (tx, _gone) = Post::channel(LinkModel::INSTANT, TimeScale::ZERO);
            return tx;
        }
        PostSender::remote(Arc::new(TcpRemoteTx {
            inner: Arc::clone(&self.inner),
            home,
            id,
            local: self.local,
        }))
    }
}

/// A virtualized sender living on node `home`: sends encode an `Expose`
/// frame and ride the pooled socket to the home node, which looks the
/// id up in its expose table and delivers locally.
struct TcpRemoteTx {
    inner: Arc<Inner>,
    home: u32,
    id: u64,
    /// The node this stub was decoded on — senders embedded in messages
    /// sent *through* this stub are exposed here.
    local: u32,
}

impl RemoteTx<Incoming> for TcpRemoteTx {
    fn send(&self, msg: Incoming, bytes: usize, class: FrameClass) -> Result<(), InboxClosed> {
        let vault = NodeVault {
            inner: Arc::clone(&self.inner),
            local: self.local,
        };
        let mut w = WireWriter::new();
        w.put_u64(self.id);
        w.put_u64(bytes as u64);
        w.put_u8(class_byte(class));
        w.put_bytes(&encode_incoming(&vault, &msg));
        self.inner
            .send_frame(self.home, FrameKind::Expose, w.as_slice())
            .map_err(|_| InboxClosed)
    }

    fn addr(&self) -> (u32, u64) {
        (self.home, self.id)
    }
}

fn class_byte(class: FrameClass) -> u8 {
    match class {
        FrameClass::Control => 0,
        FrameClass::Data => 1,
    }
}

fn byte_class(b: u8) -> FrameClass {
    if b == 1 {
        FrameClass::Data
    } else {
        FrameClass::Control
    }
}

fn reader_loop(inner: Arc<Inner>, node_id: u32, node: Arc<Node>, mut stream: TcpStream) {
    loop {
        let (kind, body) = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            // Clean close, torn stream or teardown: either way this
            // socket is done.
            Ok(None) | Err(_) => return,
        };
        if inner.down.load(Ordering::SeqCst) {
            return;
        }
        let vault = NodeVault {
            inner: Arc::clone(&inner),
            local: node_id,
        };
        // Dispatch must never block: every sink below is an unbounded
        // queue, so a slow process cannot back-pressure the socket into
        // deadlock. Malformed bodies are dropped like corrupt datagrams.
        match kind {
            FrameKind::Inbox => {
                let mut r = WireReader::new(&body);
                let Ok(to) = read_vmid(&mut r) else { continue };
                let (Ok(bytes), Ok(class)) = (r.get_u64(), r.get_u8()) else {
                    continue;
                };
                let Ok(raw) = r.get_bytes() else { continue };
                let Ok(msg) = decode_incoming(&vault, raw) else {
                    continue;
                };
                let _ = inner.with_registry(|reg| {
                    reg.with_addr(to, |addr| {
                        addr.inbox
                            .send_classed(msg, bytes as usize, byte_class(class))
                    })
                });
            }
            FrameKind::Expose => {
                let mut r = WireReader::new(&body);
                let (Ok(id), Ok(bytes), Ok(class)) = (r.get_u64(), r.get_u64(), r.get_u8()) else {
                    continue;
                };
                let Ok(raw) = r.get_bytes() else { continue };
                let Ok(msg) = decode_incoming(&vault, raw) else {
                    continue;
                };
                let target = node.exposed.lock().get(&id).cloned();
                if let Some(s) = target {
                    let _ = s.send_classed(msg, bytes as usize, byte_class(class));
                }
            }
            FrameKind::ConnReq => {
                let Ok(req) = decode_conn_req(&vault, &body) else {
                    continue;
                };
                if let Some(d) = node.daemon.lock().clone() {
                    d.send(DaemonMsg::RouteConnReq(req));
                }
            }
            FrameKind::Signal => {
                let mut r = WireReader::new(&body);
                let Ok(to) = read_vmid(&mut r) else { continue };
                let Ok(raw) = r.get_bytes() else { continue };
                let Ok(sig) = decode_signal(raw) else {
                    continue;
                };
                let _ = inner
                    .with_registry(|reg| reg.with_addr(to, |addr| addr.signals.send(sig).is_ok()));
            }
        }
    }
}

fn read_vmid(r: &mut WireReader) -> Result<Vmid, snow_codec::CodecError> {
    Ok(Vmid {
        host: crate::ids::HostId(r.get_u32()?),
        pid: r.get_u32()?,
    })
}

fn write_vmid(w: &mut WireWriter, vmid: Vmid) {
    w.put_u32(vmid.host.0);
    w.put_u32(vmid.pid);
}

/// The localhost-sockets backend. See the module docs for guarantees.
pub struct TcpTransport {
    inner: Arc<Inner>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// An unattached TCP transport. Nodes (listeners) are created as
    /// hosts join; the scheduler-client node appears lazily on its
    /// first send.
    pub fn new() -> Self {
        TcpTransport {
            inner: Arc::new(Inner {
                registry: RwLock::new(None),
                nodes: RwLock::new(HashMap::new()),
                conns: Mutex::new(HashMap::new()),
                next_expose: AtomicU64::new(1),
                down: AtomicBool::new(false),
            }),
        }
    }

    fn vault(&self, local: u32) -> NodeVault {
        // Sends may originate from endpoints that never joined as hosts
        // (the scheduler client, bench harness threads): give them a
        // real node on first use so exposed reply handles can route
        // back.
        self.inner.ensure_node(local, None);
        NodeVault {
            inner: Arc::clone(&self.inner),
            local,
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn attach(&self, registry: Registry) {
        *self.inner.registry.write() = Some(registry);
    }

    fn host_joined(&self, node: NodeId, daemon: Option<DaemonHandle>) {
        self.inner.ensure_node(node.0, daemon);
    }

    fn host_left(&self, node: NodeId) {
        let removed = self.inner.nodes.write().remove(&node.0);
        self.inner.conns.lock().remove(&node.0);
        if let Some(n) = removed {
            // Wake the accept loop so it observes the removal and exits.
            let _ = TcpStream::connect(n.addr);
            n.exposed.lock().clear();
        }
    }

    fn send_to(
        &self,
        from: NodeId,
        to: Vmid,
        msg: Incoming,
        bytes: usize,
        class: FrameClass,
    ) -> Result<(), SendError> {
        // The modeled wire size obeys the same frame cap as the real
        // encoding (checked again in send_frame), keeping the
        // "fits in one frame" contract backend-independent.
        if bytes > snow_net::MAX_BODY_BYTES {
            return Err(SendError::TooLarge);
        }
        let vault = self.vault(from.0);
        let mut w = WireWriter::new();
        write_vmid(&mut w, to);
        w.put_u64(bytes as u64);
        w.put_u8(class_byte(class));
        w.put_bytes(&encode_incoming(&vault, &msg));
        self.inner
            .send_frame(to.host.0, FrameKind::Inbox, w.as_slice())
    }

    fn route_conn_req(&self, from: NodeId, req: ConnReqMsg) -> Result<(), SendError> {
        let dst = req.target.host.0;
        let vault = self.vault(from.0);
        let body = encode_conn_req(&vault, &req);
        self.inner.send_frame(dst, FrameKind::ConnReq, &body)
    }

    fn signal(&self, to: Vmid, sig: Signal) -> bool {
        // Best-effort with a local liveness answer: the frame rides the
        // socket, the boolean reflects whether the target was still
        // registered when it was written.
        let alive = self
            .inner
            .with_registry(|reg| reg.with_addr(to, |_| true).unwrap_or(false))
            .unwrap_or(false);
        if !alive {
            return false;
        }
        let mut w = WireWriter::new();
        write_vmid(&mut w, to);
        w.put_bytes(&encode_signal(sig));
        self.inner
            .send_frame(to.host.0, FrameKind::Signal, w.as_slice())
            .is_ok()
    }

    fn shutdown(&self) {
        if self.inner.down.swap(true, Ordering::SeqCst) {
            return;
        }
        let nodes: Vec<Arc<Node>> = self.inner.nodes.write().drain().map(|(_, n)| n).collect();
        // Close pooled sockets (readers on the far end see EOF) …
        self.inner.conns.lock().clear();
        for n in &nodes {
            // … wake each accept loop so it observes `down` and exits …
            let _ = TcpStream::connect(n.addr);
            // … and drop parked senders so blocked receivers see
            // InboxClosed instead of waiting on a handle nobody holds.
            n.exposed.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::vm::ProcAddr;
    use crate::wire::{Ctrl, Envelope, Payload};
    use bytes::Bytes;
    use snow_trace::MsgId;
    use std::time::Duration;

    fn register_proc(
        reg: &Registry,
        vmid: Vmid,
    ) -> (Post<Incoming>, crossbeam::channel::Receiver<Signal>) {
        let (tx, post) = Post::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let (sig_tx, sig_rx) = crossbeam::channel::unbounded();
        reg.register(
            vmid,
            ProcAddr {
                inbox: tx,
                signals: sig_tx,
                host: vmid.host,
                label: "t".into(),
            },
        );
        (post, sig_rx)
    }

    #[test]
    fn inbox_frames_cross_the_socket_in_order() {
        let t = TcpTransport::new();
        let reg = Registry::new();
        t.attach(reg.clone());
        t.host_joined(NodeId(0), None);
        t.host_joined(NodeId(1), None);
        let dst = Vmid {
            host: HostId(1),
            pid: 0,
        };
        let (post, _sigs) = register_proc(&reg, dst);
        for i in 0..200u64 {
            let msg = Incoming::Data(Envelope {
                src: 0,
                tag: 0,
                msg: MsgId(i),
                payload: Payload::Data(Bytes::from(i.to_be_bytes().to_vec())),
            });
            t.send_to(NodeId(0), dst, msg, 64, FrameClass::Data)
                .unwrap();
        }
        for i in 0..200u64 {
            match post.recv_timeout(Duration::from_secs(5)).unwrap() {
                Some(Incoming::Data(e)) => assert_eq!(e.msg, MsgId(i)),
                other => panic!("expected data, got {other:?}"),
            }
        }
        t.shutdown();
    }

    #[test]
    fn accept_backoff_classifies_churn_vs_pressure() {
        // Handshake churn retries immediately …
        for kind in [
            std::io::ErrorKind::ConnectionAborted,
            std::io::ErrorKind::ConnectionReset,
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::WouldBlock,
        ] {
            assert_eq!(
                accept_backoff(&std::io::Error::from(kind)),
                Duration::ZERO,
                "{kind:?}"
            );
        }
        // … resource pressure (EMFILE surfaces uncategorised) backs off.
        let emfile = std::io::Error::from_raw_os_error(24); // EMFILE
        assert!(accept_backoff(&emfile) > Duration::ZERO);
    }

    #[test]
    fn accept_loop_survives_connection_churn() {
        // Torn handshakes (the churn that produces ECONNABORTED under
        // load) must not kill the node: after a burst of connect+drop,
        // real frames still flow.
        let t = TcpTransport::new();
        let reg = Registry::new();
        t.attach(reg.clone());
        t.host_joined(NodeId(0), None);
        t.host_joined(NodeId(1), None);
        let dst = Vmid {
            host: HostId(1),
            pid: 0,
        };
        let (post, _sigs) = register_proc(&reg, dst);
        let addr = t.inner.nodes.read().get(&1).unwrap().addr;
        for _ in 0..50 {
            drop(std::net::TcpStream::connect(addr).unwrap());
        }
        let msg = Incoming::Data(Envelope {
            src: 0,
            tag: 0,
            msg: MsgId(7),
            payload: Payload::Data(Bytes::from_static(b"alive")),
        });
        t.send_to(NodeId(0), dst, msg, 64, FrameClass::Data)
            .unwrap();
        match post.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Incoming::Data(e)) => assert_eq!(e.msg, MsgId(7)),
            other => panic!("node stopped accepting after churn: {other:?}"),
        }
        t.shutdown();
    }

    #[test]
    fn oversized_modeled_send_is_too_large() {
        let t = TcpTransport::new();
        let reg = Registry::new();
        t.attach(reg.clone());
        t.host_joined(NodeId(0), None);
        t.host_joined(NodeId(1), None);
        let dst = Vmid {
            host: HostId(1),
            pid: 0,
        };
        let (_post, _sigs) = register_proc(&reg, dst);
        let msg = Incoming::Data(Envelope {
            src: 0,
            tag: 0,
            msg: MsgId(1),
            payload: Payload::Data(Bytes::from_static(b"small body, huge claim")),
        });
        assert_eq!(
            t.send_to(
                NodeId(0),
                dst,
                msg,
                snow_net::MAX_BODY_BYTES + 1,
                FrameClass::Data
            ),
            Err(SendError::TooLarge)
        );
        t.shutdown();
    }

    #[test]
    fn unknown_node_is_unroutable() {
        let t = TcpTransport::new();
        t.attach(Registry::new());
        t.host_joined(NodeId(0), None);
        let dst = Vmid {
            host: HostId(9),
            pid: 0,
        };
        let msg = Incoming::Ctrl(Ctrl::ConnNack {
            req_id: 1,
            target: dst,
        });
        assert_eq!(
            t.send_to(NodeId(0), dst, msg, 64, FrameClass::Control),
            Err(SendError::Unroutable)
        );
    }

    #[test]
    fn host_left_cuts_the_route() {
        let t = TcpTransport::new();
        let reg = Registry::new();
        t.attach(reg.clone());
        t.host_joined(NodeId(0), None);
        t.host_joined(NodeId(1), None);
        let dst = Vmid {
            host: HostId(1),
            pid: 0,
        };
        let (_post, _sigs) = register_proc(&reg, dst);
        let msg = || {
            Incoming::Ctrl(Ctrl::ConnNack {
                req_id: 1,
                target: dst,
            })
        };
        t.send_to(NodeId(0), dst, msg(), 64, FrameClass::Control)
            .unwrap();
        t.host_left(NodeId(1));
        assert_eq!(
            t.send_to(NodeId(0), dst, msg(), 64, FrameClass::Control),
            Err(SendError::Unroutable)
        );
        t.shutdown();
    }

    #[test]
    fn signals_ride_the_socket() {
        let t = TcpTransport::new();
        let reg = Registry::new();
        t.attach(reg.clone());
        t.host_joined(NodeId(0), None);
        let dst = Vmid {
            host: HostId(0),
            pid: 0,
        };
        let (_post, sigs) = register_proc(&reg, dst);
        assert!(t.signal(dst, Signal::Disconnect { from: 3 }));
        assert_eq!(
            sigs.recv_timeout(Duration::from_secs(5)).unwrap(),
            Signal::Disconnect { from: 3 }
        );
        // Unknown process: reported dead without a socket write.
        assert!(!t.signal(
            Vmid {
                host: HostId(0),
                pid: 99,
            },
            Signal::Migrate
        ));
        t.shutdown();
    }

    #[test]
    fn exposed_sender_routes_back_to_origin_node() {
        // A reply handle embedded in a message exposed on node 0 must be
        // usable from node 1 — the virtualized-handle path that makes
        // conn_req/grant handshakes work over sockets.
        let t = TcpTransport::new();
        let reg = Registry::new();
        t.attach(reg.clone());
        t.host_joined(NodeId(0), None);
        t.host_joined(NodeId(1), None);
        let sched = Vmid {
            host: HostId(1),
            pid: 0,
        };
        let (sched_post, _sigs) = register_proc(&reg, sched);
        // "Process" on node 0: a raw post whose sender goes out as a
        // reply handle inside a Lookup request.
        let (reply_tx, reply_post) = Post::<Incoming>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let req = Incoming::Ctrl(Ctrl::SchedRequest(crate::wire::SchedRequest::Lookup {
            about: 5,
            reply: reply_tx,
        }));
        t.send_to(NodeId(0), sched, req, 64, FrameClass::Control)
            .unwrap();
        let got_reply = match sched_post.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Incoming::Ctrl(Ctrl::SchedRequest(crate::wire::SchedRequest::Lookup {
                about: 5,
                reply,
            }))) => reply,
            other => panic!("expected lookup, got {other:?}"),
        };
        // The decoded handle is remote (it lives on node 0) …
        assert_eq!(got_reply.remote_addr().map(|(h, _)| h), Some(0));
        // … and sending through it lands in the original post.
        got_reply
            .send(
                Incoming::Ctrl(Ctrl::Sched(crate::wire::SchedReply::Location {
                    about: 5,
                    status: crate::wire::ExeStatus::Running,
                    vmid: None,
                })),
                64,
            )
            .unwrap();
        match reply_post.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Incoming::Ctrl(Ctrl::Sched(crate::wire::SchedReply::Location {
                about: 5,
                ..
            }))) => {}
            other => panic!("expected location reply, got {other:?}"),
        }
        t.shutdown();
    }
}
