//! The environment handle held by a running SNOW process.

use crate::daemon::DaemonMsg;
use crate::host::HostSpec;
use crate::ids::{HostId, Rank, Vmid};
use crate::post::{InboxClosed, Post, PostSender};
use crate::vm::VmShared;
use crate::wire::{ConnReqMsg, Ctrl, Incoming, SchedRequest, Signal, ENVELOPE_OVERHEAD_BYTES};
use crossbeam::channel::Receiver;
use snow_net::TimeScale;
use snow_trace::Tracer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static NEXT_REQ_ID: AtomicU64 = AtomicU64::new(1);

/// Errors a process can hit talking to the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The target host has left the virtual machine (requester-side
    /// daemon rejection, §3.1).
    HostGone(HostId),
    /// No scheduler has been installed.
    NoScheduler,
    /// The scheduler terminated.
    SchedulerGone,
    /// This process's own inbox was closed (environment torn down).
    InboxClosed,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::HostGone(h) => write!(f, "host {h} has left the virtual machine"),
            EnvError::NoScheduler => write!(f, "no scheduler installed"),
            EnvError::SchedulerGone => write!(f, "scheduler terminated"),
            EnvError::InboxClosed => write!(f, "process inbox closed"),
        }
    }
}

impl std::error::Error for EnvError {}

/// Everything a running process borrows from the virtual machine.
pub struct ProcessCell {
    vmid: Vmid,
    label: String,
    inbox: Post<Incoming>,
    inbox_proto: PostSender<Incoming>,
    signals: Receiver<Signal>,
    shared: Arc<VmShared>,
}

impl ProcessCell {
    /// Assemble a cell (called by [`crate::vm::VirtualMachine::spawn`]).
    pub fn new(
        vmid: Vmid,
        label: String,
        inbox: Post<Incoming>,
        inbox_proto: PostSender<Incoming>,
        signals: Receiver<Signal>,
        shared: Arc<VmShared>,
    ) -> Self {
        ProcessCell {
            vmid,
            label,
            inbox,
            inbox_proto,
            signals,
            shared,
        }
    }

    /// This process's vmid.
    pub fn vmid(&self) -> Vmid {
        self.vmid
    }

    /// Trace label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.vmid.host
    }

    /// This host's spec (architecture, speed, uplink). `None` if the
    /// host has left while the process still runs.
    pub fn host_spec(&self) -> Option<HostSpec> {
        self.shared.host_spec(self.vmid.host)
    }

    /// The shared environment.
    pub fn shared(&self) -> &Arc<VmShared> {
        &self.shared
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Arc<Tracer> {
        self.shared.tracer()
    }

    /// The modeled-time scale of this environment.
    pub fn time_scale(&self) -> TimeScale {
        self.shared.time_scale()
    }

    /// Allocate a unique connection-request id.
    pub fn next_req_id(&self) -> u64 {
        NEXT_REQ_ID.fetch_add(1, Ordering::Relaxed)
    }

    // --- inbox ----------------------------------------------------------

    /// Blocking receive of the next data/control message.
    pub fn recv_incoming(&self) -> Result<Incoming, EnvError> {
        self.inbox
            .recv()
            .map_err(|InboxClosed| EnvError::InboxClosed)
    }

    /// Timed receive.
    pub fn recv_incoming_timeout(&self, d: Duration) -> Result<Option<Incoming>, EnvError> {
        self.inbox
            .recv_timeout(d)
            .map_err(|InboxClosed| EnvError::InboxClosed)
    }

    /// Non-blocking receive.
    pub fn try_recv_incoming(&self) -> Result<Option<Incoming>, EnvError> {
        self.inbox
            .try_recv()
            .map_err(|InboxClosed| EnvError::InboxClosed)
    }

    /// Frames currently staged in the inbox (posted but not yet past
    /// their modeled delivery time). Observability hook for the
    /// per-migration queue-depth metrics.
    pub fn inbox_backlog(&self) -> usize {
        self.inbox.backlog()
    }

    /// Peak staged depth the inbox has ever reached.
    pub fn inbox_staged_high_water(&self) -> usize {
        self.inbox.staged_high_water()
    }

    /// A control-grade sender into this process's own inbox (reply
    /// address for scheduler/daemon handshakes).
    pub fn reply_sender(&self) -> PostSender<Incoming> {
        self.inbox_proto.clone()
    }

    /// A *data* sender into this process's own inbox, provisioned with
    /// the path model from `peer_host`. Handed to peers during
    /// connection establishment. If the environment's fault plan covers
    /// the `peer_host → here` direction, the sender carries a fault hook
    /// for a fresh incarnation of that link.
    pub fn data_sender_to_me(&self, peer_host: HostId) -> PostSender<Incoming> {
        let link = self.shared.path(peer_host, self.vmid.host);
        let sender = self.inbox_proto.with_link(link, self.shared.time_scale());
        match self
            .shared
            .faults()
            .stream_hook(peer_host, self.vmid.host, self.shared.tracer())
        {
            Some(hook) => sender.with_fault(hook),
            None => sender,
        }
    }

    // --- signals ----------------------------------------------------------

    /// Non-blocking signal poll. Only call at computation-event
    /// boundaries (§2.3: signals never interrupt communication events).
    pub fn poll_signal(&self) -> Option<Signal> {
        self.signals.try_recv().ok()
    }

    /// Block up to `d` for a signal.
    pub fn wait_signal(&self, d: Duration) -> Option<Signal> {
        self.signals.recv_timeout(d).ok()
    }

    /// Deliver a signal to another process.
    pub fn send_signal(&self, to: Vmid, sig: Signal) -> bool {
        self.shared.signal(to, sig)
    }

    // --- connectionless service -----------------------------------------

    /// Route a `conn_req` toward `target` through the transport's
    /// connectionless service (the target host's daemon). Errors with
    /// [`EnvError::HostGone`] when no route exists — the paper's
    /// "requestor's daemon sends the rejection message back" case,
    /// which callers treat as a nack.
    pub fn route_conn_req(&self, req: ConnReqMsg) -> Result<(), EnvError> {
        let host = req.target.host;
        self.shared
            .transport()
            .route_conn_req(self.vmid.host.into(), req)
            .map_err(|_| EnvError::HostGone(host))
    }

    /// Answer a previously received `conn_req` through the local daemon
    /// so its pending record is deleted (§3.1). `ctrl` must be a
    /// [`Ctrl::ConnGrant`] or [`Ctrl::ConnNack`].
    pub fn answer_conn_req(&self, req_id: u64, ctrl: Ctrl) {
        if let Some(d) = self.shared.daemon(self.vmid.host) {
            d.send(DaemonMsg::ConnReply { req_id, ctrl });
        }
    }

    /// Set/clear this process's reject-all flag at its local daemon
    /// (Fig 5 line 4).
    pub fn set_reject_all(&self, on: bool) {
        if let Some(d) = self.shared.daemon(self.vmid.host) {
            d.send(DaemonMsg::SetReject {
                vmid: self.vmid,
                on,
            });
        }
    }

    // --- scheduler --------------------------------------------------------

    /// Fire-and-forget request to the scheduler over the
    /// connection-oriented service.
    pub fn sched_send(&self, req: SchedRequest) -> Result<(), EnvError> {
        let sched = self.shared.scheduler_vmid().ok_or(EnvError::NoScheduler)?;
        self.shared
            .transport()
            .send_to(
                self.vmid.host.into(),
                sched,
                Incoming::Ctrl(Ctrl::SchedRequest(req)),
                ENVELOPE_OVERHEAD_BYTES,
                snow_net::FrameClass::Control,
            )
            .map_err(|_| EnvError::SchedulerGone)
    }

    /// Trace-record an event attributed to this process.
    pub fn trace(&self, kind: snow_trace::EventKind) {
        self.tracer().record(&self.label, kind);
    }

    /// Trace with a timestamp captured *before* the traced action (via
    /// `tracer().now_ns()`). Keeps cause before effect in the sorted
    /// log when another thread can react to the action — and trace its
    /// reaction — before we reach our own record call.
    pub fn trace_at(&self, t_ns: u64, kind: snow_trace::EventKind) {
        self.tracer().record_at(t_ns, &self.label, kind);
    }

    /// Convenience: rank-labelled tracing for application processes.
    pub fn trace_as(&self, rank: Rank, kind: snow_trace::EventKind) {
        let _ = rank;
        self.trace(kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::vm::VirtualMachine;

    #[test]
    fn req_ids_are_unique() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (_v, handle) = vm
            .spawn(h, "p", |cell| {
                let a = cell.next_req_id();
                let b = cell.next_req_id();
                assert_ne!(a, b);
            })
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn route_to_missing_host_is_host_gone() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (_v, handle) = vm
            .spawn(h, "p", move |cell| {
                let (reply, _post) =
                    crate::post::Post::channel(snow_net::LinkModel::INSTANT, TimeScale::ZERO);
                let bad_host = HostId(55);
                let req = ConnReqMsg {
                    req_id: cell.next_req_id(),
                    from_rank: 0,
                    from_vmid: cell.vmid(),
                    target: Vmid {
                        host: bad_host,
                        pid: 0,
                    },
                    reply: reply.clone(),
                    data_to_requester: reply,
                };
                assert_eq!(cell.route_conn_req(req), Err(EnvError::HostGone(bad_host)));
            })
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sched_send_without_scheduler_errors() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (_v, handle) = vm
            .spawn(h, "p", move |cell| {
                let err = cell
                    .sched_send(SchedRequest::Terminated { rank: 0 })
                    .unwrap_err();
                assert_eq!(err, EnvError::NoScheduler);
            })
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn reply_sender_loops_back() {
        let vm = VirtualMachine::ideal();
        let h = vm.add_host(HostSpec::ideal());
        let (_v, handle) = vm
            .spawn(h, "p", move |cell| {
                let tx = cell.reply_sender();
                tx.send(
                    Incoming::Ctrl(Ctrl::ConnNack {
                        req_id: 1,
                        target: cell.vmid(),
                    }),
                    10,
                )
                .unwrap();
                match cell.recv_incoming().unwrap() {
                    Incoming::Ctrl(Ctrl::ConnNack { req_id: 1, .. }) => {}
                    other => panic!("unexpected {other:?}"),
                }
            })
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn data_sender_uses_path_model() {
        let vm = VirtualMachine::ideal();
        let fast = vm.add_host(HostSpec::ultra5());
        let slow = vm.add_host(HostSpec::dec5000());
        let (_v, handle) = vm
            .spawn(fast, "p", move |cell| {
                let s = cell.data_sender_to_me(slow);
                assert_eq!(
                    s.link().bandwidth_bps,
                    HostSpec::dec5000().uplink.bandwidth_bps
                );
            })
            .unwrap();
        handle.join().unwrap();
    }
}
