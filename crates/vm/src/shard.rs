//! N-way sharded concurrent maps for the hot routing paths.
//!
//! The registry (vmid → address) and the daemon routing tables sit on
//! every message send, route and signal. A single `RwLock<HashMap>`
//! serialises all of them behind one cache line once a few hundred
//! ranks are live; sharding the table N ways makes lookups on distinct
//! keys proceed in parallel and confines writer stalls to 1/N of the
//! key space.
//!
//! Shard choice is a pure function of the key's hash, so a given key
//! always lands in the same shard — per-key linearizability is exactly
//! what a single-lock map gave us, and cross-key ordering was never
//! promised by the old table either (readers raced writers for the one
//! lock). Per-sender FIFO of the post office is untouched: sharding
//! only covers *address lookup*; delivery order is owned by
//! [`crate::post`].

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Default shard count for the routing tables. Enough to spread a few
/// thousand ranks over independent locks without bloating tiny
/// environments; must be a power of two (shard index is a mask).
pub const DEFAULT_SHARDS: usize = 16;

/// A hash map split across `N` independently locked shards.
///
/// Each key maps to exactly one shard (stable hash → mask), so all
/// operations on one key serialise through one `RwLock` exactly as in
/// the single-lock design, while operations on different keys contend
/// only 1/N of the time.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V>>]>,
    mask: usize,
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        // DefaultHasher::new() uses fixed keys, so the shard choice is
        // stable for a key across calls and threads.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    /// Remove a key; returns the value if it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().remove(key)
    }

    /// Clone the value under `key` (read lock on one shard only).
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).read().get(key).cloned()
    }

    /// Run `f` over a borrowed value without cloning it. Holds one
    /// shard's read lock only for the duration of `f` — the zero-copy
    /// lookup for hot routing paths.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.shard(key).read().get(key).map(f)
    }

    /// Is `key` present?
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Remove every entry matching `pred`; returns the removed keys.
    /// Locks shards one at a time (no global freeze), which is fine for
    /// the membership paths that use it: they already serialise behind
    /// the membership mutex.
    pub fn remove_if(&self, mut pred: impl FnMut(&K, &V) -> bool) -> Vec<K>
    where
        K: Clone,
    {
        let mut removed = Vec::new();
        for shard in &self.shards {
            let mut table = shard.write();
            let doomed: Vec<K> = table
                .iter()
                .filter(|(k, v)| pred(k, v))
                .map(|(k, _)| k.clone())
                .collect();
            for k in &doomed {
                table.remove(k);
            }
            removed.extend(doomed);
        }
        removed
    }

    /// Visit every entry (shard by shard, read locks).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }

    /// Total entries across all shards. Not a snapshot — concurrent
    /// writers may move the true count while the shards are summed.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Number of shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        assert_eq!(ShardedMap::<u32, u32>::new(0).shard_count(), 1);
        assert_eq!(ShardedMap::<u32, u32>::new(1).shard_count(), 1);
        assert_eq!(ShardedMap::<u32, u32>::new(9).shard_count(), 16);
        assert_eq!(
            ShardedMap::<u32, u32>::default().shard_count(),
            DEFAULT_SHARDS
        );
    }

    #[test]
    fn insert_lookup_remove() {
        let m = ShardedMap::default();
        assert!(m.is_empty());
        for i in 0..1000u32 {
            assert_eq!(m.insert(i, i * 2), None);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get_cloned(&7), Some(14));
        assert_eq!(m.with(&7, |v| *v + 1), Some(15));
        assert!(m.contains_key(&999));
        assert_eq!(m.remove(&7), Some(14));
        assert_eq!(m.get_cloned(&7), None);
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn remove_if_returns_matching_keys() {
        let m = ShardedMap::new(4);
        for i in 0..100u32 {
            m.insert(i, i % 3);
        }
        let mut gone = m.remove_if(|_, v| *v == 0);
        gone.sort_unstable();
        assert_eq!(gone.len(), 34); // 0, 3, 6, … 99
        assert!(gone.iter().all(|k| k % 3 == 0));
        assert_eq!(m.len(), 66);
        m.for_each(|k, _| assert!(k % 3 != 0));
    }

    #[test]
    fn concurrent_writers_on_distinct_keys() {
        let m = Arc::new(ShardedMap::new(8));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for i in 0..500u32 {
                        let k = t * 1000 + i;
                        m.insert(k, k);
                        assert_eq!(m.get_cloned(&k), Some(k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 4000);
    }

    #[test]
    fn same_key_always_same_shard() {
        // Stability check: with() after insert() must find the value —
        // i.e. the shard function is a pure function of the key.
        let m = ShardedMap::new(16);
        for i in 0..10_000u64 {
            m.insert(i, ());
            assert!(m.contains_key(&i), "key {i} landed in a different shard");
        }
    }
}
