//! The per-process inbox with modeled delivery delays.
//!
//! Every SNOW process owns one [`Post`]: a FIFO mailbox into which both
//! data envelopes and control messages are delivered — exactly how PVM
//! surfaces data and connection-control traffic through `pvm_recv`
//! (§5.1 of the paper). A logical communication channel is a
//! [`PostSender`] clone held by the peer: per-sender FIFO order is
//! guaranteed by the underlying queue, which is the paper's FIFO channel
//! assumption (§2.3).
//!
//! Each `PostSender` carries its own *wire state* so back-to-back frames
//! on one logical connection serialise behind each other under a modeled
//! [`LinkModel`]; delivery is delayed on the receive side so senders stay
//! non-blocking (buffered-mode send semantics, §2.3).
//!
//! The receive side orders deliverable frames by modeled delivery time
//! (earliest `deliver_at` first, arrival order breaking ties), so a slow
//! sender's large frame never head-of-line blocks a small frame from a
//! faster link. Per-sender FIFO — the property the protocol relies on —
//! is preserved: each sender's wire serialises its frames, so its
//! delivery times are non-decreasing, and ties fall back to arrival
//! order, which the underlying queue keeps FIFO per sender.

use crate::faults::FaultHook;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use snow_net::{FrameClass, LinkModel, TimeScale};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned when the inbox owner has terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InboxClosed;

impl std::fmt::Display for InboxClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inbox owner terminated")
    }
}

impl std::error::Error for InboxClosed {}

struct Timed<T> {
    /// Modeled delivery time; `None` marks an *immediate* frame (no
    /// modeled delay — `TimeScale::ZERO`), which skips both the
    /// `Instant::now()` stamp on the send side and the staging heap on
    /// the receive side when nothing is staged ahead of it.
    deliver_at: Option<Instant>,
    msg: T,
}

/// The remote half of a virtualized sender handle: a [`PostSender`]
/// whose inbox lives on another node, reached through a transport
/// backend instead of a process-local queue. The transport owns the
/// encoding and the socket; this trait is only the seam `post` needs so
/// it can stay ignorant of frame formats.
pub trait RemoteTx<T>: Send + Sync {
    /// Deliver `msg` to the remote inbox. The wire is real, so there is
    /// no modeled delivery time; errors map to [`InboxClosed`] exactly
    /// like a local owner terminating.
    fn send(&self, msg: T, bytes: usize, class: FrameClass) -> Result<(), InboxClosed>;

    /// Stable wire name of the remote inbox: `(home_node, expose_id)`.
    /// Re-encoding this sender (a handle forwarded inside a message)
    /// writes this address instead of re-exposing.
    fn addr(&self) -> (u32, u64);
}

enum Tx<T> {
    Local(Sender<Timed<T>>),
    Remote(Arc<dyn RemoteTx<T>>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Tx::Local(tx) => Tx::Local(tx.clone()),
            Tx::Remote(r) => Tx::Remote(Arc::clone(r)),
        }
    }
}

/// Sending half of an inbox, bound to one logical connection.
pub struct PostSender<T> {
    tx: Tx<T>,
    wire_free_at: Arc<Mutex<Instant>>,
    link: LinkModel,
    scale: TimeScale,
    /// Fault decision point for this logical connection, if the
    /// environment armed one.
    fault: Option<Arc<FaultHook>>,
}

impl<T> Clone for PostSender<T> {
    fn clone(&self) -> Self {
        // A clone shares the wire (and its fault state): it is the same
        // logical connection.
        PostSender {
            tx: self.tx.clone(),
            wire_free_at: Arc::clone(&self.wire_free_at),
            link: self.link,
            scale: self.scale,
            fault: self.fault.clone(),
        }
    }
}

impl<T> std::fmt::Debug for PostSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PostSender")
            .field("link", &self.link)
            .finish_non_exhaustive()
    }
}

impl<T> PostSender<T> {
    /// Wrap a transport-backed remote inbox as a sender handle. The
    /// wire is real (sockets), so the link is instant and unmodeled;
    /// the transport accounts for actual transfer time.
    pub fn remote(remote: Arc<dyn RemoteTx<T>>) -> PostSender<T> {
        PostSender {
            tx: Tx::Remote(remote),
            wire_free_at: Arc::new(Mutex::new(Instant::now())),
            link: LinkModel::INSTANT,
            scale: TimeScale::ZERO,
            fault: None,
        }
    }

    /// The `(home_node, expose_id)` wire address if this sender is a
    /// virtualized remote handle, `None` for a process-local queue.
    pub fn remote_addr(&self) -> Option<(u32, u64)> {
        match &self.tx {
            Tx::Local(_) => None,
            Tx::Remote(r) => Some(r.addr()),
        }
    }

    /// Derive a sender to the same inbox over a *different* logical
    /// connection (fresh wire, possibly different link model). Used when
    /// a connection is established between two hosts: the path model is
    /// the bottleneck of their uplinks.
    pub fn with_link(&self, link: LinkModel, scale: TimeScale) -> PostSender<T> {
        PostSender {
            tx: self.tx.clone(),
            wire_free_at: Arc::new(Mutex::new(Instant::now())),
            link,
            scale,
            // A fresh logical connection does not inherit the old wire's
            // fault state; the environment attaches a new hook if the
            // link is covered by the plan.
            fault: None,
        }
    }

    /// Attach a fault hook to this logical connection.
    pub fn with_fault(mut self, hook: Arc<FaultHook>) -> PostSender<T> {
        self.fault = Some(hook);
        self
    }

    /// The link model of this logical connection.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Modeled seconds to move `bytes` over this connection.
    pub fn modeled_transfer_seconds(&self, bytes: usize) -> f64 {
        self.link.transfer_seconds(bytes)
    }

    /// Post a message of `bytes` payload size. Never blocks for the
    /// transfer time (buffered-mode semantics); returns `Err` if the
    /// owner terminated.
    pub fn send(&self, msg: T, bytes: usize) -> Result<(), InboxClosed> {
        // Control class by default: handshakes, protocol markers and
        // scheduler traffic ride the reliable signaling plane (§2.3) and
        // are never reset away. Data envelopes and state-transfer frames
        // go through [`PostSender::send_classed`] with
        // [`FrameClass::Data`].
        self.send_classed(msg, bytes, FrameClass::Control)
    }

    /// [`PostSender::send`] with an explicit frame class. Data frames on
    /// a connection the fault plan reset fail with [`InboxClosed`] —
    /// indistinguishable from the owner terminating, which is exactly
    /// the failure the protocol's recovery machinery handles.
    pub fn send_classed(&self, msg: T, bytes: usize, class: FrameClass) -> Result<(), InboxClosed> {
        let mut extra_s = 0.0;
        if let Some(hook) = &self.fault {
            let verdict = hook.on_frame(class);
            if verdict.reset {
                return Err(InboxClosed);
            }
            extra_s = verdict.extra_delay_s;
        }
        let tx = match &self.tx {
            Tx::Local(tx) => tx,
            // A remote inbox rides a real wire: no modeled delivery
            // time, and injected jitter has no modeled window to extend
            // (resets above still apply — they are the fault class the
            // protocol recovers from).
            Tx::Remote(r) => return r.send(msg, bytes, class),
        };
        let deliver_at = if self.scale.0 > 0.0 {
            let now = Instant::now();
            let ser = self.scale.real(self.link.serialize_seconds(bytes));
            let lat = self.scale.real(self.link.latency_s);
            // Injected delay extends the wire-busy window like extra
            // serialization: later frames queue behind it, keeping
            // per-sender delivery times non-decreasing (FIFO holds).
            let extra = self.scale.real(extra_s);
            let mut free = self.wire_free_at.lock();
            let start = (*free).max(now);
            *free = start + ser + extra;
            Some(*free + lat)
        } else {
            // Unmodeled wire: the frame is deliverable the moment it is
            // queued. No clock read, no wire-state lock — this is the
            // scale-bench hot path.
            None
        };
        tx.send(Timed { deliver_at, msg }).map_err(|_| InboxClosed)
    }
}

/// A frame staged on the receive side, ordered by modeled delivery time
/// with arrival order breaking ties.
struct Staged<T> {
    deliver_at: Instant,
    /// Arrival position at the inbox (assigned when the frame is pulled
    /// off the queue). The queue is FIFO per sender, and each sender's
    /// delivery times are non-decreasing, so this tie-break preserves
    /// per-sender order.
    arrival: u64,
    msg: T,
}

impl<T> PartialEq for Staged<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.arrival == other.arrival
    }
}
impl<T> Eq for Staged<T> {}
impl<T> PartialOrd for Staged<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Staged<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.arrival).cmp(&(other.deliver_at, other.arrival))
    }
}

/// Upper bound on one blind nap while waiting out a staged frame's
/// modeled delay with no live sender left to interrupt the wait. Bounding
/// the nap keeps the receive loops re-checking the stage instead of
/// sleeping uninterruptibly until the original `deliver_at` estimate.
const NAP_SLICE: Duration = Duration::from_millis(5);

struct Stage<T> {
    heap: BinaryHeap<Reverse<Staged<T>>>,
    next_arrival: u64,
    high_water: usize,
}

impl<T> Stage<T> {
    fn push(&mut self, f: Timed<T>) {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.heap.push(Reverse(Staged {
            // An immediate frame staged behind modeled traffic is
            // deliverable right now; stamping it on entry keeps the heap
            // total-ordered without the send side paying for the clock.
            deliver_at: f.deliver_at.unwrap_or_else(Instant::now),
            arrival,
            msg: f.msg,
        }));
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Pull everything already queued into the stage so the earliest
    /// deliverable frame becomes visible. Returns `true` when every
    /// sender is gone.
    fn drain(&mut self, rx: &Receiver<Timed<T>>) -> bool {
        loop {
            match rx.try_recv() {
                Ok(f) => self.push(f),
                Err(TryRecvError::Empty) => return false,
                Err(TryRecvError::Disconnected) => return true,
            }
        }
    }

    fn min_deliver_at(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse(f)| f.deliver_at)
    }

    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|Reverse(f)| f.msg)
    }
}

/// Receiving half: the process's inbox.
pub struct Post<T> {
    rx: Receiver<Timed<T>>,
    stage: Mutex<Stage<T>>,
}

impl<T> std::fmt::Debug for Post<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Post").finish_non_exhaustive()
    }
}

impl<T> Post<T> {
    /// Create an inbox plus its prototype sender. The prototype uses the
    /// given (usually instant/control) link; data connections derive
    /// their own senders with [`PostSender::with_link`].
    pub fn channel(link: LinkModel, scale: TimeScale) -> (PostSender<T>, Post<T>) {
        let (tx, rx) = channel::unbounded();
        (
            PostSender {
                tx: Tx::Local(tx),
                wire_free_at: Arc::new(Mutex::new(Instant::now())),
                link,
                scale,
                fault: None,
            },
            Post {
                rx,
                stage: Mutex::new(Stage {
                    heap: BinaryHeap::new(),
                    next_arrival: 0,
                    high_water: 0,
                }),
            },
        )
    }

    /// Blocking receive: the staged frame with the earliest modeled
    /// delivery time, waiting out its remaining delay. A frame arriving
    /// meanwhile with an even earlier delivery time (a fast link
    /// overtaking a slow one in the model) is delivered first.
    pub fn recv(&self) -> Result<T, InboxClosed> {
        loop {
            let mut stage = self.stage.lock();
            // Fast path: nothing staged and the queue head is an
            // immediate frame — deliver it without a heap round-trip or
            // a clock read. The head is the earliest-arriving frame and
            // immediate frames are deliverable on arrival, so this is
            // the same frame the heap would have popped.
            if stage.heap.is_empty() {
                match self.rx.try_recv() {
                    Ok(f) => match f.deliver_at {
                        None => return Ok(f.msg),
                        Some(_) => stage.push(f),
                    },
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => return Err(InboxClosed),
                }
            }
            let disconnected = stage.drain(&self.rx);
            match stage.min_deliver_at() {
                None => {
                    if disconnected {
                        return Err(InboxClosed);
                    }
                    drop(stage);
                    match self.rx.recv() {
                        Ok(f) => {
                            let mut stage = self.stage.lock();
                            if f.deliver_at.is_none() && stage.heap.is_empty() {
                                return Ok(f.msg);
                            }
                            stage.push(f);
                        }
                        Err(_) => return Err(InboxClosed),
                    }
                }
                Some(at) => {
                    if at <= Instant::now() {
                        return Ok(stage.pop().expect("peeked frame"));
                    }
                    drop(stage);
                    match self.rx.recv_deadline(at) {
                        // A new frame may deliver earlier: re-evaluate.
                        Ok(f) => self.stage.lock().push(f),
                        // The staged minimum is now deliverable.
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            // No live sender remains to wake us; nap in
                            // bounded slices and loop so the stage is
                            // re-checked instead of sleeping blind until
                            // the original estimate.
                            let now = Instant::now();
                            if at > now {
                                std::thread::sleep((at - now).min(NAP_SLICE));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Receive with a real-time deadline. A frame whose modeled delivery
    /// time lies beyond the deadline is left staged, preserving order.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<T>, InboxClosed> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut stage = self.stage.lock();
            // Same immediate-frame fast path as [`Post::recv`].
            if stage.heap.is_empty() {
                match self.rx.try_recv() {
                    Ok(f) => match f.deliver_at {
                        None => return Ok(Some(f.msg)),
                        Some(_) => stage.push(f),
                    },
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => return Err(InboxClosed),
                }
            }
            let disconnected = stage.drain(&self.rx);
            match stage.min_deliver_at() {
                None => {
                    if disconnected {
                        return Err(InboxClosed);
                    }
                    drop(stage);
                    match self.rx.recv_deadline(deadline) {
                        Ok(f) => {
                            let mut stage = self.stage.lock();
                            if f.deliver_at.is_none() && stage.heap.is_empty() {
                                return Ok(Some(f.msg));
                            }
                            stage.push(f);
                        }
                        Err(RecvTimeoutError::Timeout) => return Ok(None),
                        Err(RecvTimeoutError::Disconnected) => return Err(InboxClosed),
                    }
                }
                Some(at) => {
                    if at > deadline {
                        // Undeliverable within the deadline: park it.
                        return Ok(None);
                    }
                    let now = Instant::now();
                    if at <= now {
                        return Ok(Some(stage.pop().expect("peeked frame")));
                    }
                    drop(stage);
                    match self.rx.recv_deadline(at) {
                        Ok(f) => self.stage.lock().push(f),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            let now = Instant::now();
                            if at > now {
                                std::thread::sleep((at - now).min(NAP_SLICE));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Non-blocking receive of an already-deliverable frame.
    pub fn try_recv(&self) -> Result<Option<T>, InboxClosed> {
        let mut stage = self.stage.lock();
        // Same immediate-frame fast path as [`Post::recv`].
        if stage.heap.is_empty() {
            match self.rx.try_recv() {
                Ok(f) => match f.deliver_at {
                    None => return Ok(Some(f.msg)),
                    Some(_) => stage.push(f),
                },
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(InboxClosed),
            }
        }
        let disconnected = stage.drain(&self.rx);
        match stage.min_deliver_at() {
            None if disconnected => Err(InboxClosed),
            None => Ok(None),
            Some(at) => {
                if at <= Instant::now() {
                    Ok(Some(stage.pop().expect("peeked frame")))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Frames queued (including staged ones awaiting their modeled
    /// delivery time).
    pub fn backlog(&self) -> usize {
        self.rx.len() + self.stage.lock().heap.len()
    }

    /// High-water mark of the staged queue: the deepest the modeled-
    /// delivery backlog has ever been. Feeds the per-link queue-depth
    /// metrics.
    pub fn staged_high_water(&self) -> usize {
        self.stage.lock().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_per_sender() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        for i in 0..100 {
            tx.send(i, 4).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn clones_share_a_wire_new_links_do_not() {
        let (tx, _rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let c = tx.clone();
        assert!(Arc::ptr_eq(&tx.wire_free_at, &c.wire_free_at));
        let fresh = tx.with_link(LinkModel::ETHERNET_100M, TimeScale::MILLI);
        assert!(!Arc::ptr_eq(&tx.wire_free_at, &fresh.wire_free_at));
        assert_eq!(fresh.link(), LinkModel::ETHERNET_100M);
    }

    #[test]
    fn closed_inbox_reported_to_sender() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        drop(rx);
        assert_eq!(tx.send(1, 4), Err(InboxClosed));
    }

    #[test]
    fn closed_senders_reported_to_receiver() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        tx.send(1, 4).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(InboxClosed));
    }

    #[test]
    fn timeout_parks_undeliverable_frame() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        tx.send(9, 5_000_000).unwrap(); // ~5 ms modeled-at-milli delivery
        assert_eq!(rx.recv_timeout(Duration::ZERO).unwrap(), None);
        assert_eq!(rx.backlog(), 1);
        assert_eq!(rx.recv().unwrap(), 9);
    }

    #[test]
    fn sender_is_never_blocked_by_link() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let t0 = Instant::now();
        for i in 0..5 {
            tx.send(i, 1_000_000).unwrap();
        }
        assert!(t0.elapsed() < Duration::from_millis(2));
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        // Five 1 MB frames serialised over one wire at milli scale
        // (1 MB over 8 Mb/s = 1 modeled second = 1 ms real each).
        assert!(
            t0.elapsed() >= Duration::from_millis(4),
            "{:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn multi_sender_delivery_complete() {
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let tx = proto.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(s * 1000 + i, 4).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = (0..400).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn fast_frame_overtakes_slow_senders_frame() {
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::MILLI);
        let slow = proto.with_link(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let fast = proto.with_link(LinkModel::ETHERNET_100M, TimeScale::MILLI);
        // The slow sender's 5 MB frame arrives at the inbox first but
        // models ~4 s (→ 4 ms real) of transfer; the fast sender's tiny
        // frame models well under a millisecond. Delivery must follow
        // modeled time, not arrival order.
        slow.send(1, 5_000_000).unwrap();
        fast.send(2, 1_000).unwrap();
        assert_eq!(rx.recv().unwrap(), 2, "fast link overtakes slow frame");
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn overtaking_preserves_per_sender_order() {
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::MILLI);
        let slow = proto.with_link(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let fast = proto.with_link(LinkModel::ETHERNET_100M, TimeScale::MILLI);
        slow.send(10, 2_000_000).unwrap();
        slow.send(11, 2_000_000).unwrap();
        fast.send(20, 1_000).unwrap();
        fast.send(21, 1_000).unwrap();
        let got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        let slow_pos: Vec<usize> = [10, 11]
            .iter()
            .map(|v| got.iter().position(|g| g == v).unwrap())
            .collect();
        let fast_pos: Vec<usize> = [20, 21]
            .iter()
            .map(|v| got.iter().position(|g| g == v).unwrap())
            .collect();
        assert!(slow_pos[0] < slow_pos[1], "{got:?}");
        assert!(fast_pos[0] < fast_pos[1], "{got:?}");
        assert_eq!(got[0], 20, "fast frames deliver first: {got:?}");
    }

    #[test]
    fn late_fast_frame_preempts_a_long_nap() {
        // The receiver blocks on a frame whose modeled delivery is far
        // out (~50 modeled s → 50 ms real); while it naps, a fast-link
        // frame with a near-immediate deadline is posted. The nap must be
        // preempted and the short-latency frame delivered first — the
        // receive loop may not wait out the long frame's full delay.
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::MILLI);
        let slow = proto.with_link(
            LinkModel {
                bandwidth_bps: 8_000_000.0,
                latency_s: 50.0,
            },
            TimeScale::MILLI,
        );
        let fast = proto.with_link(LinkModel::ETHERNET_100M, TimeScale::MILLI);
        slow.send(1, 8).unwrap();
        let poster = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            fast.send(2, 8).unwrap();
        });
        let t0 = Instant::now();
        assert_eq!(rx.recv().unwrap(), 2, "late fast frame must preempt");
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "nap was not preempted: {:?}",
            t0.elapsed()
        );
        poster.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn disconnected_nap_is_bounded_not_blind() {
        // All senders gone with one staged frame still in modeled
        // flight: the receiver must still deliver it (in bounded naps),
        // and recv_timeout must honour its own deadline meanwhile.
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::MILLI);
        let slow = proto.with_link(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        slow.send(7, 20_000_000).unwrap(); // ~16 modeled s → 16 ms real
        drop(slow);
        drop(proto);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)).unwrap(), None);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(InboxClosed));
    }

    #[test]
    fn staged_high_water_tracks_peak_depth() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        assert_eq!(rx.staged_high_water(), 0);
        for i in 0..6 {
            tx.send(i, 1_000_000).unwrap();
        }
        // Stage everything (frames still in modeled flight stay parked).
        let _ = rx.recv_timeout(Duration::ZERO).unwrap();
        assert_eq!(rx.staged_high_water(), 6);
        for i in 0..6 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        // Draining does not lower the high-water mark.
        assert_eq!(rx.staged_high_water(), 6);
    }

    #[test]
    fn immediate_traffic_never_stages() {
        // Unmodeled frames ride the fast path: they are counted in the
        // backlog while queued but never touch the staging heap, so the
        // staged high-water mark stays zero — the PR 3 queue-depth
        // metric measures *modeled-delivery* backlog only.
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        for i in 0..50 {
            tx.send(i, 4).unwrap();
        }
        assert_eq!(rx.backlog(), 50);
        for i in 0..50 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.staged_high_water(), 0, "fast path must bypass the stage");
        assert_eq!(rx.backlog(), 0);
    }

    #[test]
    fn immediate_frame_stages_behind_modeled_traffic() {
        // A mixed inbox (one modeled connection, one unmodeled) must
        // still deliver everything and keep per-sender FIFO; the
        // immediate frame arriving while modeled frames are staged goes
        // through the heap (stamped on entry) instead of overtaking
        // arbitrarily.
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::MILLI);
        let modeled = proto.with_link(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let instant = proto.with_link(LinkModel::INSTANT, TimeScale::ZERO);
        modeled.send(1, 2_000_000).unwrap(); // ~1.6 modeled s → 1.6 ms real
        modeled.send(2, 2_000_000).unwrap();
        // Park the modeled frames in the stage first.
        let _ = rx.recv_timeout(Duration::ZERO).unwrap();
        instant.send(10, 4).unwrap();
        instant.send(11, 4).unwrap();
        let got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        let pos = |v: u32| got.iter().position(|g| *g == v).unwrap();
        assert!(pos(1) < pos(2), "modeled sender FIFO: {got:?}");
        assert!(pos(10) < pos(11), "immediate sender FIFO: {got:?}");
        assert!(rx.staged_high_water() >= 2);
    }

    #[test]
    fn faulted_sender_resets_data_not_control() {
        use snow_net::fault::{FaultInjector, FaultSpec};
        use snow_trace::Tracer;
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let hook = Arc::new(crate::faults::FaultHook::new(
            FaultInjector::new(1, FaultSpec::none().resets(1.0, 0)),
            Tracer::disabled(),
            "link:test".into(),
        ));
        let tx = proto
            .with_link(LinkModel::INSTANT, TimeScale::ZERO)
            .with_fault(hook);
        assert_eq!(tx.send_classed(1, 4, FrameClass::Data), Err(InboxClosed));
        // Control frames (the default class) still flow on the dead wire.
        assert_eq!(tx.send(2, 4), Ok(()));
        assert_eq!(rx.recv().unwrap(), 2);
        // Clones share the dead wire …
        assert_eq!(
            tx.clone().send_classed(3, 4, FrameClass::Data),
            Err(InboxClosed)
        );
        // … but a fresh logical connection does not inherit the hook.
        assert_eq!(
            tx.with_link(LinkModel::INSTANT, TimeScale::ZERO)
                .send_classed(4, 4, FrameClass::Data),
            Ok(())
        );
        assert_eq!(rx.recv().unwrap(), 4);
    }

    #[test]
    fn faulted_sender_jitter_keeps_fifo() {
        use snow_net::fault::{FaultInjector, FaultSpec};
        use snow_trace::Tracer;
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::MILLI);
        let hook = Arc::new(crate::faults::FaultHook::new(
            FaultInjector::new(3, FaultSpec::none().jitter(1.0, 1.0)),
            Tracer::disabled(),
            "link:test".into(),
        ));
        let tx = proto
            .with_link(LinkModel::ETHERNET_100M, TimeScale::MILLI)
            .with_fault(hook);
        for i in 0..10 {
            tx.send_classed(i, 1_000, FrameClass::Data).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i, "per-sender FIFO under jitter");
        }
    }

    #[test]
    fn remote_sender_routes_through_the_trait() {
        struct Chan(Sender<u32>);
        impl RemoteTx<u32> for Chan {
            fn send(&self, msg: u32, _bytes: usize, _class: FrameClass) -> Result<(), InboxClosed> {
                self.0.send(msg).map_err(|_| InboxClosed)
            }
            fn addr(&self) -> (u32, u64) {
                (7, 42)
            }
        }
        let (tx, rx) = channel::unbounded();
        let sender = PostSender::remote(Arc::new(Chan(tx)));
        assert_eq!(sender.remote_addr(), Some((7, 42)));
        sender.send(1, 4).unwrap();
        // Clones and re-linked derivations stay bound to the remote.
        sender.clone().send(2, 4).unwrap();
        sender
            .with_link(LinkModel::ETHERNET_10M, TimeScale::MILLI)
            .send(3, 4)
            .unwrap();
        assert_eq!(
            (0..3).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        drop(rx);
        assert_eq!(sender.send(4, 4), Err(InboxClosed));
        // Local senders have no wire address.
        let (local, _p) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        assert_eq!(local.remote_addr(), None);
    }

    #[test]
    fn try_recv_and_backlog() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        assert_eq!(rx.try_recv().unwrap(), None);
        tx.send(5, 4).unwrap();
        assert_eq!(rx.backlog(), 1);
        assert_eq!(rx.try_recv().unwrap(), Some(5));
        assert_eq!(rx.backlog(), 0);
    }
}
