//! The per-process inbox with modeled delivery delays.
//!
//! Every SNOW process owns one [`Post`]: a FIFO mailbox into which both
//! data envelopes and control messages are delivered — exactly how PVM
//! surfaces data and connection-control traffic through `pvm_recv`
//! (§5.1 of the paper). A logical communication channel is a
//! [`PostSender`] clone held by the peer: per-sender FIFO order is
//! guaranteed by the underlying queue, which is the paper's FIFO channel
//! assumption (§2.3).
//!
//! Each `PostSender` carries its own *wire state* so back-to-back frames
//! on one logical connection serialise behind each other under a modeled
//! [`LinkModel`]; delivery is delayed on the receive side so senders stay
//! non-blocking (buffered-mode send semantics, §2.3).
//!
//! Modeled-delay caveat: the mailbox pops frames in arrival order, so a
//! frame with a later modeled delivery time can momentarily head-of-line
//! block one from a faster sender. Per-sender ordering — the property the
//! protocol relies on — is unaffected.

use parking_lot::Mutex;
use snow_net::{LinkModel, TimeScale};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned when the inbox owner has terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InboxClosed;

impl std::fmt::Display for InboxClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inbox owner terminated")
    }
}

impl std::error::Error for InboxClosed {}

struct Timed<T> {
    deliver_at: Instant,
    msg: T,
}

/// Sending half of an inbox, bound to one logical connection.
pub struct PostSender<T> {
    tx: Sender<Timed<T>>,
    wire_free_at: Arc<Mutex<Instant>>,
    link: LinkModel,
    scale: TimeScale,
}

impl<T> Clone for PostSender<T> {
    fn clone(&self) -> Self {
        // A clone shares the wire: it is the same logical connection.
        PostSender {
            tx: self.tx.clone(),
            wire_free_at: Arc::clone(&self.wire_free_at),
            link: self.link,
            scale: self.scale,
        }
    }
}

impl<T> std::fmt::Debug for PostSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PostSender")
            .field("link", &self.link)
            .finish_non_exhaustive()
    }
}

impl<T> PostSender<T> {
    /// Derive a sender to the same inbox over a *different* logical
    /// connection (fresh wire, possibly different link model). Used when
    /// a connection is established between two hosts: the path model is
    /// the bottleneck of their uplinks.
    pub fn with_link(&self, link: LinkModel, scale: TimeScale) -> PostSender<T> {
        PostSender {
            tx: self.tx.clone(),
            wire_free_at: Arc::new(Mutex::new(Instant::now())),
            link,
            scale,
        }
    }

    /// The link model of this logical connection.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Modeled seconds to move `bytes` over this connection.
    pub fn modeled_transfer_seconds(&self, bytes: usize) -> f64 {
        self.link.transfer_seconds(bytes)
    }

    /// Post a message of `bytes` payload size. Never blocks for the
    /// transfer time (buffered-mode semantics); returns `Err` if the
    /// owner terminated.
    pub fn send(&self, msg: T, bytes: usize) -> Result<(), InboxClosed> {
        let now = Instant::now();
        let deliver_at = if self.scale.0 > 0.0 {
            let ser = self.scale.real(self.link.serialize_seconds(bytes));
            let lat = self.scale.real(self.link.latency_s);
            let mut free = self.wire_free_at.lock();
            let start = (*free).max(now);
            *free = start + ser;
            *free + lat
        } else {
            now
        };
        self.tx
            .send(Timed { deliver_at, msg })
            .map_err(|_| InboxClosed)
    }

}

/// Receiving half: the process's inbox.
pub struct Post<T> {
    rx: Receiver<Timed<T>>,
    pending: Mutex<Option<Timed<T>>>,
}

impl<T> std::fmt::Debug for Post<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Post").finish_non_exhaustive()
    }
}

impl<T> Post<T> {
    /// Create an inbox plus its prototype sender. The prototype uses the
    /// given (usually instant/control) link; data connections derive
    /// their own senders with [`PostSender::with_link`].
    pub fn channel(link: LinkModel, scale: TimeScale) -> (PostSender<T>, Post<T>) {
        let (tx, rx) = channel::unbounded();
        (
            PostSender {
                tx,
                wire_free_at: Arc::new(Mutex::new(Instant::now())),
                link,
                scale,
            },
            Post {
                rx,
                pending: Mutex::new(None),
            },
        )
    }

    fn deliver(&self, frame: Timed<T>) -> T {
        let now = Instant::now();
        if frame.deliver_at > now {
            std::thread::sleep(frame.deliver_at - now);
        }
        frame.msg
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<T, InboxClosed> {
        if let Some(f) = self.pending.lock().take() {
            return Ok(self.deliver(f));
        }
        match self.rx.recv() {
            Ok(f) => Ok(self.deliver(f)),
            Err(_) => Err(InboxClosed),
        }
    }

    /// Receive with a real-time deadline. A frame whose modeled delivery
    /// time lies beyond the deadline is parked, preserving order.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<T>, InboxClosed> {
        let deadline = Instant::now() + timeout;
        let frame = {
            let mut pending = self.pending.lock();
            match pending.take() {
                Some(f) => f,
                None => match self.rx.recv_deadline(deadline) {
                    Ok(f) => f,
                    Err(RecvTimeoutError::Timeout) => return Ok(None),
                    Err(RecvTimeoutError::Disconnected) => return Err(InboxClosed),
                },
            }
        };
        if frame.deliver_at > deadline {
            *self.pending.lock() = Some(frame);
            return Ok(None);
        }
        Ok(Some(self.deliver(frame)))
    }

    /// Non-blocking receive of an already-deliverable frame.
    pub fn try_recv(&self) -> Result<Option<T>, InboxClosed> {
        let mut pending = self.pending.lock();
        let frame = match pending.take() {
            Some(f) => f,
            None => match self.rx.try_recv() {
                Ok(f) => f,
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(InboxClosed),
            },
        };
        if frame.deliver_at > Instant::now() {
            *pending = Some(frame);
            return Ok(None);
        }
        drop(pending);
        Ok(Some(self.deliver(frame)))
    }

    /// Frames queued (including a parked one).
    pub fn backlog(&self) -> usize {
        self.rx.len() + usize::from(self.pending.lock().is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_per_sender() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        for i in 0..100 {
            tx.send(i, 4).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn clones_share_a_wire_new_links_do_not() {
        let (tx, _rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let c = tx.clone();
        assert!(Arc::ptr_eq(&tx.wire_free_at, &c.wire_free_at));
        let fresh = tx.with_link(LinkModel::ETHERNET_100M, TimeScale::MILLI);
        assert!(!Arc::ptr_eq(&tx.wire_free_at, &fresh.wire_free_at));
        assert_eq!(fresh.link(), LinkModel::ETHERNET_100M);
    }

    #[test]
    fn closed_inbox_reported_to_sender() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        drop(rx);
        assert_eq!(tx.send(1, 4), Err(InboxClosed));
    }

    #[test]
    fn closed_senders_reported_to_receiver() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        tx.send(1, 4).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(InboxClosed));
    }

    #[test]
    fn timeout_parks_undeliverable_frame() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        tx.send(9, 5_000_000).unwrap(); // ~5 ms modeled-at-milli delivery
        assert_eq!(rx.recv_timeout(Duration::ZERO).unwrap(), None);
        assert_eq!(rx.backlog(), 1);
        assert_eq!(rx.recv().unwrap(), 9);
    }

    #[test]
    fn sender_is_never_blocked_by_link() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::ETHERNET_10M, TimeScale::MILLI);
        let t0 = Instant::now();
        for i in 0..5 {
            tx.send(i, 1_000_000).unwrap();
        }
        assert!(t0.elapsed() < Duration::from_millis(2));
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        // Five 1 MB frames serialised over one wire at milli scale
        // (1 MB over 8 Mb/s = 1 modeled second = 1 ms real each).
        assert!(t0.elapsed() >= Duration::from_millis(4), "{:?}", t0.elapsed());
    }

    #[test]
    fn multi_sender_delivery_complete() {
        let (proto, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let tx = proto.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(s * 1000 + i, 4).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = (0..400).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn try_recv_and_backlog() {
        let (tx, rx) = Post::<u32>::channel(LinkModel::INSTANT, TimeScale::ZERO);
        assert_eq!(rx.try_recv().unwrap(), None);
        tx.send(5, 4).unwrap();
        assert_eq!(rx.backlog(), 1);
        assert_eq!(rx.try_recv().unwrap(), Some(5));
        assert_eq!(rx.backlog(), 0);
    }
}
