//! Property tests: canonical encoding round-trips arbitrary value trees,
//! and decoding never panics on arbitrary byte soup.

use proptest::prelude::*;
use snow_codec::{Value, WireReader, WireWriter};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        any::<f64>().prop_map(Value::F64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<f64>(), 0..32).prop_map(Value::F64Array),
        proptest::collection::vec(any::<i64>(), 0..32).prop_map(Value::I64Array),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(Value::Record),
        ]
    })
}

/// Structural equality that treats NaN bit patterns as equal when the bits
/// match (Value's PartialEq uses f64 ==, under which NaN != NaN).
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::F64Array(x), Value::F64Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| bits_eq(p, q))
        }
        (Value::Record(x), Value::Record(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((nx, p), (ny, q))| nx == ny && bits_eq(p, q))
        }
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn value_roundtrip(v in arb_value()) {
        let bytes = v.encode();
        let back = Value::decode(&bytes).unwrap();
        prop_assert!(bits_eq(&v, &back), "{v:?} != {back:?}");
    }

    #[test]
    fn encoding_deterministic(v in arb_value()) {
        prop_assert_eq!(v.encode(), v.encode());
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Hostile/corrupt migration payloads must produce errors, not UB
        // or panics.
        let _ = Value::decode(&bytes);
    }

    #[test]
    fn uvarint_roundtrip(v in any::<u64>()) {
        let mut w = WireWriter::new();
        w.put_uvarint(v);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.get_uvarint().unwrap(), v);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn ivarint_roundtrip(v in any::<i64>()) {
        let mut w = WireWriter::new();
        w.put_ivarint(v);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.get_ivarint().unwrap(), v);
    }
}
