//! Simulated host architecture model.
//!
//! The paper's testbed mixed big-endian Sun Ultra 5 (SPARC/Solaris) and
//! little-endian-era DEC 5000/120 (MIPS/Ultrix) machines. The protocol's
//! heterogeneity story is that all state crossing machines is converted to
//! a canonical machine-independent form. This module models the *native*
//! representation of a host so tests and examples can demonstrate that a
//! value written natively on one architecture decodes identically on
//! another after passing through the canonical form.

use crate::wire::{WireReader, WireWriter};
use crate::Result;

/// Byte order of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Most-significant byte first (e.g. SPARC — the paper's Sun Ultra 5).
    Big,
    /// Least-significant byte first (e.g. MIPS/DECstation, x86).
    Little,
}

/// A simulated host architecture: byte order plus native word size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostArch {
    /// Native integer byte order.
    pub order: ByteOrder,
    /// Native word size in bytes (4 for the paper-era machines, 8 today).
    pub word_bytes: u8,
    /// Short human-readable label used in traces ("ultra5", "dec5000").
    pub label: &'static str,
}

impl HostArch {
    /// The paper's fast host: big-endian Sun Ultra 5 under Solaris 2.6.
    pub const SUN_ULTRA5: HostArch = HostArch {
        order: ByteOrder::Big,
        word_bytes: 4,
        label: "ultra5",
    };

    /// The paper's slow host: DEC 5000/120 under Ultrix (little-endian MIPS).
    pub const DEC_5000: HostArch = HostArch {
        order: ByteOrder::Little,
        word_bytes: 4,
        label: "dec5000",
    };

    /// A modern 64-bit little-endian host (the machine running the tests).
    pub const X86_64: HostArch = HostArch {
        order: ByteOrder::Little,
        word_bytes: 8,
        label: "x86_64",
    };

    /// Write `v` in this host's *native* byte order — the representation
    /// that lives in the process memory image before conversion.
    pub fn native_u64(&self, v: u64) -> [u8; 8] {
        match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        }
    }

    /// Read a native-order u64 back (source-side step of conversion).
    pub fn read_native_u64(&self, b: [u8; 8]) -> u64 {
        match self.order {
            ByteOrder::Big => u64::from_be_bytes(b),
            ByteOrder::Little => u64::from_le_bytes(b),
        }
    }

    /// Convert a native in-memory u64 into canonical bytes: the
    /// "collect" half of heterogeneous state transfer.
    pub fn to_canonical_u64(&self, native: [u8; 8], w: &mut WireWriter) {
        w.put_u64(self.read_native_u64(native));
    }

    /// Materialise a canonical u64 into this host's native representation:
    /// the "restore" half of heterogeneous state transfer.
    pub fn from_canonical_u64(&self, r: &mut WireReader<'_>) -> Result<[u8; 8]> {
        Ok(self.native_u64(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_orders_differ() {
        let v = 0x0102_0304_0506_0708u64;
        assert_eq!(HostArch::SUN_ULTRA5.native_u64(v)[0], 0x01);
        assert_eq!(HostArch::DEC_5000.native_u64(v)[0], 0x08);
    }

    #[test]
    fn cross_architecture_roundtrip() {
        // Value lives natively on the DEC, is canonicalised, and is
        // restored natively on the Sun — exactly the Table 2 scenario.
        let v = 0xfeed_face_cafe_beefu64;
        let native_dec = HostArch::DEC_5000.native_u64(v);
        let mut w = WireWriter::new();
        HostArch::DEC_5000.to_canonical_u64(native_dec, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let native_sun = HostArch::SUN_ULTRA5.from_canonical_u64(&mut r).unwrap();
        assert_eq!(HostArch::SUN_ULTRA5.read_native_u64(native_sun), v);
    }

    #[test]
    fn canonical_form_is_host_independent() {
        let v = 0x1122_3344_5566_7788u64;
        let mut w1 = WireWriter::new();
        HostArch::DEC_5000.to_canonical_u64(HostArch::DEC_5000.native_u64(v), &mut w1);
        let mut w2 = WireWriter::new();
        HostArch::SUN_ULTRA5.to_canonical_u64(HostArch::SUN_ULTRA5.native_u64(v), &mut w2);
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn same_host_is_identity() {
        let v = 42u64;
        let h = HostArch::X86_64;
        let n = h.native_u64(v);
        assert_eq!(h.read_native_u64(n), v);
    }
}
