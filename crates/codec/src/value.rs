//! Self-describing machine-independent value model.
//!
//! [`Value`] is the interchange representation for execution-state
//! snapshots: every datum a migrating process needs to carry (loop
//! counters, locals, partition descriptors, flattened arrays) is expressed
//! as a `Value` tree and encoded to the canonical wire form.
//!
//! The encoding is tag-prefixed so the destination machine can decode
//! without out-of-band schema — the property that makes migration work
//! between program versions compiled for different architectures.

use crate::error::CodecError;
use crate::wire::{WireReader, WireWriter, MAX_DEPTH};
use crate::Result;

/// Type tags of the canonical encoding. Kept `#[repr(u8)]`-style stable:
/// changing a tag value breaks cross-version migration.
mod tag {
    pub const UNIT: u8 = 0x00;
    pub const BOOL: u8 = 0x01;
    pub const I64: u8 = 0x02;
    pub const U64: u8 = 0x03;
    pub const F64: u8 = 0x04;
    pub const BYTES: u8 = 0x05;
    pub const STR: u8 = 0x06;
    pub const LIST: u8 = 0x07;
    pub const RECORD: u8 = 0x08;
    pub const F64ARRAY: u8 = 0x09;
    pub const I64ARRAY: u8 = 0x0a;
}

/// A machine-independent value.
///
/// Numeric types are normalised to their widest representation (`i64`,
/// `u64`, `f64`) — the canonical form carries *values*, not native widths;
/// the restoring side narrows as its program requires. Dense numeric
/// arrays get dedicated variants so multigrid-sized payloads encode
/// without per-element tags.
#[derive(Debug, Clone)]
pub enum Value {
    /// The empty value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer (zig-zag varint encoded).
    I64(i64),
    /// An unsigned integer (varint encoded).
    U64(u64),
    /// An IEEE-754 double (bit pattern preserved, NaNs included).
    F64(f64),
    /// An opaque byte string.
    Bytes(Vec<u8>),
    /// A UTF-8 string.
    Str(String),
    /// A heterogeneous ordered sequence.
    List(Vec<Value>),
    /// Named fields in a fixed order (struct-like).
    Record(Vec<(String, Value)>),
    /// A dense array of doubles (grid data, vectors).
    F64Array(Vec<f64>),
    /// A dense array of signed integers.
    I64Array(Vec<i64>),
}

/// Equality matches the canonical encoding: two values are equal iff
/// their encodings are byte-identical. Doubles therefore compare by
/// bit pattern (NaN == NaN with the same bits; 0.0 != -0.0), unlike
/// IEEE `==`.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Record(a), Value::Record(b)) => a == b,
            (Value::F64Array(a), Value::F64Array(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (Value::I64Array(a), Value::I64Array(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Value {
    /// Encode into an existing writer.
    pub fn encode_into(&self, w: &mut WireWriter) {
        match self {
            Value::Unit => w.put_u8(tag::UNIT),
            Value::Bool(b) => {
                w.put_u8(tag::BOOL);
                w.put_u8(u8::from(*b));
            }
            Value::I64(v) => {
                w.put_u8(tag::I64);
                w.put_ivarint(*v);
            }
            Value::U64(v) => {
                w.put_u8(tag::U64);
                w.put_uvarint(*v);
            }
            Value::F64(v) => {
                w.put_u8(tag::F64);
                w.put_f64(*v);
            }
            Value::Bytes(b) => {
                w.put_u8(tag::BYTES);
                w.put_bytes(b);
            }
            Value::Str(s) => {
                w.put_u8(tag::STR);
                w.put_str(s);
            }
            Value::List(items) => {
                w.put_u8(tag::LIST);
                w.put_uvarint(items.len() as u64);
                for it in items {
                    it.encode_into(w);
                }
            }
            Value::Record(fields) => {
                w.put_u8(tag::RECORD);
                w.put_uvarint(fields.len() as u64);
                for (name, v) in fields {
                    w.put_str(name);
                    v.encode_into(w);
                }
            }
            Value::F64Array(a) => {
                w.put_u8(tag::F64ARRAY);
                w.put_uvarint(a.len() as u64);
                for v in a {
                    w.put_f64(*v);
                }
            }
            Value::I64Array(a) => {
                w.put_u8(tag::I64ARRAY);
                w.put_uvarint(a.len() as u64);
                for v in a {
                    w.put_ivarint(*v);
                }
            }
        }
    }

    /// Encode to a fresh canonical byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.encoded_size_hint());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Cheap upper-bound size estimate used to pre-reserve buffers.
    pub fn encoded_size_hint(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 2,
            Value::I64(_) | Value::U64(_) => 11,
            Value::F64(_) => 9,
            Value::Bytes(b) => 11 + b.len(),
            Value::Str(s) => 11 + s.len(),
            Value::List(items) => 11 + items.iter().map(Value::encoded_size_hint).sum::<usize>(),
            Value::Record(fields) => {
                11 + fields
                    .iter()
                    .map(|(n, v)| 11 + n.len() + v.encoded_size_hint())
                    .sum::<usize>()
            }
            Value::F64Array(a) => 11 + a.len() * 8,
            Value::I64Array(a) => 11 + a.len() * 10,
        }
    }

    /// Decode a value from a reader.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Value> {
        Self::decode_at_depth(r, 0)
    }

    /// Decode exactly one value from `bytes`, rejecting trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Value> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    fn decode_at_depth(r: &mut WireReader<'_>, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(CodecError::DepthExceeded);
        }
        let t = r.get_u8()?;
        Ok(match t {
            tag::UNIT => Value::Unit,
            tag::BOOL => Value::Bool(r.get_u8()? != 0),
            tag::I64 => Value::I64(r.get_ivarint()?),
            tag::U64 => Value::U64(r.get_uvarint()?),
            tag::F64 => Value::F64(r.get_f64()?),
            tag::BYTES => Value::Bytes(r.get_bytes()?.to_vec()),
            tag::STR => Value::Str(r.get_str()?.to_string()),
            tag::LIST => {
                let n = checked_len(r, 1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Self::decode_at_depth(r, depth + 1)?);
                }
                Value::List(items)
            }
            tag::RECORD => {
                let n = checked_len(r, 2)?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.get_str()?.to_string();
                    fields.push((name, Self::decode_at_depth(r, depth + 1)?));
                }
                Value::Record(fields)
            }
            tag::F64ARRAY => {
                let n = checked_len(r, 8)?;
                let mut a = Vec::with_capacity(n);
                for _ in 0..n {
                    a.push(r.get_f64()?);
                }
                Value::F64Array(a)
            }
            tag::I64ARRAY => {
                let n = checked_len(r, 1)?;
                let mut a = Vec::with_capacity(n);
                for _ in 0..n {
                    a.push(r.get_ivarint()?);
                }
                Value::I64Array(a)
            }
            other => return Err(CodecError::BadTag(other)),
        })
    }

    /// Fetch a field from a [`Value::Record`] by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Interpret as `i64` if the variant allows.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Interpret as `u64` if the variant allows.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Interpret as `f64` if the variant allows.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as `&str` if the variant allows.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Read a declared element count and sanity-check it against the bytes
/// remaining (each element needs at least `min_elem_bytes`).
fn checked_len(r: &mut WireReader<'_>, min_elem_bytes: usize) -> Result<usize> {
    let n = r.get_uvarint()?;
    let need = n.saturating_mul(min_elem_bytes as u64);
    if need > r.remaining() as u64 {
        return Err(CodecError::LengthOverflow {
            declared: n,
            remaining: r.remaining(),
        });
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let bytes = v.encode();
        let back = Value::decode(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Unit);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::I64(i64::MIN));
        roundtrip(&Value::U64(u64::MAX));
        roundtrip(&Value::F64(std::f64::consts::PI));
        roundtrip(&Value::Str("grid".into()));
        roundtrip(&Value::Bytes(vec![0, 255, 128]));
    }

    #[test]
    fn nested_structures_roundtrip() {
        roundtrip(&Value::Record(vec![
            ("rank".into(), Value::U64(3)),
            ("iteration".into(), Value::I64(2)),
            (
                "halo".into(),
                Value::List(vec![Value::F64Array(vec![1.0, 2.0]), Value::Unit]),
            ),
        ]));
    }

    #[test]
    fn dense_arrays_roundtrip() {
        roundtrip(&Value::F64Array(
            (0..1000).map(|i| i as f64 * 0.5).collect(),
        ));
        roundtrip(&Value::I64Array((-500..500).collect()));
    }

    #[test]
    fn f64_array_is_compact() {
        let a = Value::F64Array(vec![0.0; 1024]);
        // tag + varint + 8 bytes/elem, no per-element tags.
        assert!(a.encode().len() <= 1 + 3 + 1024 * 8);
    }

    #[test]
    fn record_field_lookup() {
        let v = Value::Record(vec![
            ("a".into(), Value::I64(1)),
            ("b".into(), Value::I64(2)),
        ]);
        assert_eq!(v.field("b").and_then(Value::as_i64), Some(2));
        assert_eq!(v.field("missing"), None);
        assert_eq!(Value::Unit.field("a"), None);
    }

    #[test]
    fn accessors_cross_variant() {
        assert_eq!(Value::U64(7).as_i64(), Some(7));
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(Value::decode(&[0x7f]), Err(CodecError::BadTag(0x7f)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Value::I64(5).encode();
        bytes.push(0);
        assert_eq!(Value::decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = Value::F64Array(vec![1.0; 16]).encode();
        for cut in 1..bytes.len() {
            assert!(
                Value::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        // LIST claiming u64::MAX elements with a 2-byte body.
        let mut w = WireWriter::new();
        w.put_u8(0x07);
        w.put_uvarint(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Value::decode(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn deep_nesting_rejected() {
        // MAX_DEPTH+2 nested single-element lists.
        let mut bytes = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            bytes.push(0x07); // LIST
            bytes.push(0x01); // len 1
        }
        bytes.push(0x00); // innermost UNIT
        assert_eq!(Value::decode(&bytes), Err(CodecError::DepthExceeded));
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = Value::Record(vec![
            ("x".into(), Value::F64Array(vec![1.5, -2.5])),
            ("y".into(), Value::Str("abc".into())),
        ]);
        assert_eq!(v.encode(), v.encode());
    }

    #[test]
    fn size_hint_is_upper_bound() {
        let vals = [
            Value::Unit,
            Value::I64(-123456),
            Value::Str("hello world".into()),
            Value::F64Array(vec![1.0; 100]),
            Value::Record(vec![("k".into(), Value::List(vec![Value::Bool(true)]))]),
        ];
        for v in &vals {
            assert!(v.encode().len() <= v.encoded_size_hint(), "{v:?}");
        }
    }
}
