//! # snow-codec — machine-independent data representation
//!
//! Heterogeneous process migration moves execution and memory state between
//! machines with different word sizes, byte orders and data layouts. The
//! SNOW system (Chanchio & Sun, ICPP 2001, and the memory-state companion
//! work) solves this by transforming process data into a *machine
//! independent* canonical form on the source machine and re-materialising
//! it on the destination.
//!
//! This crate provides that canonical form:
//!
//! * [`wire`] — a low-level canonical wire format: fixed-width big-endian
//!   primitives (XDR-flavoured) plus LEB128/zig-zag variable-length
//!   integers for compact counts.
//! * [`value`] — a self-describing [`value::Value`] model (scalars, byte
//!   strings, lists, records) with canonical encode/decode. This is the
//!   interchange type used for execution-state snapshots.
//! * [`host`] — a simulated *host architecture* description (byte order,
//!   word size). Encoding always produces the canonical big-endian form
//!   regardless of the simulated host, which is exactly what makes the
//!   state portable; the host model exists so tests can prove that a
//!   little-endian "DEC" host and a big-endian "Sun" host round-trip each
//!   other's state.
//!
//! The memory-graph layer (pointers, cycles, relocation) lives one level
//! up in `snow-state`; it serialises node payloads through this crate.

#![warn(missing_docs)]

pub mod error;
pub mod host;
pub mod value;
pub mod wire;

pub use error::CodecError;
pub use host::{ByteOrder, HostArch};
pub use value::Value;
pub use wire::{WireReader, WireWriter};

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;
