//! Low-level canonical wire format.
//!
//! All multi-byte primitives are written big-endian ("network order"),
//! matching the XDR convention PVM used for heterogeneous transfers.
//! Counts and lengths use unsigned LEB128 varints; signed integers that
//! are typically small use zig-zag + LEB128.
//!
//! The format is *canonical*: a given value has exactly one encoding, so
//! encoded state can be compared byte-wise and hashed for integrity
//! checks during migration.

use crate::error::CodecError;
use crate::Result;

/// Maximum nesting depth accepted by decoders of structured values.
pub const MAX_DEPTH: usize = 64;

/// Maximum LEB128 continuation bytes for a u64 (ceil(64/7)).
const MAX_VARINT_BYTES: usize = 10;

/// Append-only writer producing canonical bytes.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create a writer with pre-reserved capacity (a hot path during
    /// migration state collection — see perf notes in the repo docs).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the canonical bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Take the bytes written so far, leaving the writer empty but
    /// usable. The hot chunked-collection path hands off each chunk
    /// with this instead of constructing a fresh writer per chunk.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Discard everything written so far, keeping the allocation for
    /// reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Write a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write an IEEE-754 f32, big-endian bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Write an IEEE-754 f64, big-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Write an unsigned LEB128 varint.
    pub fn put_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a signed integer with zig-zag + LEB128.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(zigzag_encode(v));
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_uvarint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write raw bytes with no length prefix (caller manages framing).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Zig-zag-encode a signed integer so small magnitudes stay small.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cursor-style reader over canonical bytes.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a big-endian i64.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a big-endian IEEE-754 f32.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a big-endian IEEE-754 f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an unsigned LEB128 varint.
    pub fn get_uvarint(&mut self) -> Result<u64> {
        let mut shift = 0u32;
        let mut out = 0u64;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.get_u8()?;
            let low = (byte & 0x7f) as u64;
            // The 10th byte may only contribute a single bit.
            if i == MAX_VARINT_BYTES - 1 && low > 1 {
                return Err(CodecError::VarintOverflow);
            }
            out |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
        Err(CodecError::VarintOverflow)
    }

    /// Read a zig-zag + LEB128 signed integer.
    pub fn get_ivarint(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.get_uvarint()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_uvarint()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::LengthOverflow {
                declared: len,
                remaining: self.remaining(),
            });
        }
        self.take(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Error unless the buffer is fully consumed; used by top-level
    /// decoders to reject trailing garbage.
    pub fn finish(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(-42);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        r.finish().unwrap();
    }

    #[test]
    fn take_bytes_and_clear_reuse_the_writer() {
        let mut w = WireWriter::with_capacity(64);
        w.put_str("first");
        let a = w.take_bytes();
        assert!(w.is_empty());
        w.put_str("second");
        let cap_before = {
            w.clear();
            assert!(w.is_empty());
            w.put_str("third");
            w.as_slice().len()
        };
        assert!(cap_before > 0);
        let mut r = WireReader::new(&a);
        assert_eq!(r.get_str().unwrap(), "first");
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(r.get_str().unwrap(), "third");
    }

    #[test]
    fn big_endian_layout_is_canonical() {
        let mut w = WireWriter::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut w = WireWriter::new();
            w.put_uvarint(v);
            let mut r = WireReader::new(w.as_slice());
            assert_eq!(r.get_uvarint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn ivarint_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            let mut w = WireWriter::new();
            w.put_ivarint(v);
            let mut r = WireReader::new(w.as_slice());
            assert_eq!(r.get_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in -1000..1000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes is never valid.
        let bytes = [0xff; 11];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_uvarint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn varint_final_byte_overflow_detected() {
        // 10 bytes whose last contributes >1 bit encodes more than 64 bits.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_uvarint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn eof_reports_needed_and_remaining() {
        let mut r = WireReader::new(&[1, 2]);
        match r.get_u32() {
            Err(CodecError::UnexpectedEof { needed, remaining }) => {
                assert_eq!((needed, remaining), (4, 2));
            }
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn length_overflow_guard() {
        // Declared length 1000 but only a few bytes follow.
        let mut w = WireWriter::new();
        w.put_uvarint(1000);
        w.put_raw(&[0; 4]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_bytes(),
            Err(CodecError::LengthOverflow { declared: 1000, .. })
        ));
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut w = WireWriter::new();
        w.put_bytes(b"hello");
        w.put_str("w\u{00f6}rld");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "w\u{00f6}rld");
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let r = WireReader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(2)));
    }

    #[test]
    fn nan_bit_pattern_preserved() {
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = WireWriter::new();
        w.put_f64(nan);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap().to_bits(), nan.to_bits());
    }
}
