//! Error type for canonical encoding and decoding.

use std::fmt;

/// Errors produced while encoding to or decoding from the canonical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-value.
    UnexpectedEof {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A type tag byte did not correspond to any known `Value` variant.
    BadTag(u8),
    /// A variable-length integer exceeded the maximum encodable width.
    VarintOverflow,
    /// A declared length was implausibly large for the remaining input
    /// (corruption guard).
    LengthOverflow {
        /// Declared element/byte count.
        declared: u64,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A byte string declared as UTF-8 text failed validation.
    InvalidUtf8,
    /// Nesting depth exceeded [`crate::wire::MAX_DEPTH`]; guards against
    /// stack exhaustion on hostile input.
    DepthExceeded,
    /// Trailing garbage followed a complete top-level value.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::BadTag(t) => write!(f, "unknown type tag 0x{t:02x}"),
            CodecError::VarintOverflow => write!(f, "variable-length integer overflow"),
            CodecError::LengthOverflow {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining input {remaining}"
            ),
            CodecError::InvalidUtf8 => write!(f, "byte string is not valid UTF-8"),
            CodecError::DepthExceeded => write!(f, "value nesting too deep"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        let s = e.to_string();
        assert!(s.contains("8"), "{s}");
        assert!(s.contains("3"), "{s}");
        assert!(CodecError::BadTag(0xfe).to_string().contains("0xfe"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
    }
}
