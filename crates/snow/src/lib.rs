//! # snow — communication state transfer for process migration
//!
//! A Rust reproduction of Chanchio & Sun, *"Communication State Transfer
//! for the Mobility of Concurrent Heterogeneous Computing"* (ICPP 2001):
//! data-communication and process-migration protocols that move a
//! running process between hosts of a dynamic, heterogeneous virtual
//! machine **without losing or reordering messages and without
//! deadlock** — while its peers keep computing and communicating.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `snow-core` | the protocols: send/recv/connect, received-message-list, `migrate()`, `initialize()`, [`core::Computation`] launcher |
//! | [`vm`] | `snow-vm` | the virtual machine substrate: hosts, daemons, vmids, signals |
//! | [`sched`] | `snow-sched` | the scheduler: PL table, lookup service, migration choreography |
//! | [`state`] | `snow-state` | heterogeneous execution + memory state capture/restore |
//! | [`codec`] | `snow-codec` | machine-independent canonical encoding |
//! | [`net`] | `snow-net` | FIFO channels, datagram routing, link cost models |
//! | [`trace`] | `snow-trace` | event tracing, space-time diagrams, timing reports |
//! | [`mg`] | `snow-mg` | the kernel MG workload of the paper's evaluation |
//! | [`baselines`] | `snow-baselines` | §7 comparators: forwarding, broadcast, coordinated checkpointing |
//!
//! ## Example
//!
//! ```no_run
//! use snow::prelude::*;
//! use bytes::Bytes;
//!
//! let comp = Computation::builder().hosts(HostSpec::ideal(), 3).build();
//! let handles = comp.launch(2, |mut p, start| {
//!     if matches!(start, Start::Fresh) && p.rank() == 0 {
//!         p.send(1, 1, Bytes::from_static(b"hi")).unwrap();
//!     } else if matches!(start, Start::Fresh) {
//!         let _ = p.recv(Some(0), Some(1)).unwrap();
//!     }
//!     p.finish();
//! });
//! // Migrate rank 0 to the third host while it runs:
//! // comp.migrate(0, comp.hosts()[2]).unwrap();
//! for h in handles { h.join().unwrap(); }
//! ```

#![warn(missing_docs)]

pub use snow_baselines as baselines;
pub use snow_codec as codec;
pub use snow_core as core;
pub use snow_mg as mg;
pub use snow_net as net;
pub use snow_sched as sched;
pub use snow_state as state;
pub use snow_trace as trace;
pub use snow_vm as vm;

/// The common imports for applications.
pub mod prelude {
    pub use snow_core::{
        Computation, MigrationOutcome, MigrationTimings, PipelineConfig, ProtoError, RetryPolicy,
        SnowProcess, Start,
    };
    pub use snow_net::{FaultPlan, FaultSpec, FrameClass, LinkModel, LinkSel, TimeScale};
    pub use snow_state::{ExecState, MemoryGraph, ProcessState, StateCostModel};
    pub use snow_trace::{SpaceTime, Tracer};
    pub use snow_vm::{
        HostId, HostSpec, InProcTransport, NodeId, Rank, Tag, TcpTransport, Transport, Vmid,
    };
}
