use bytes::Bytes;
use snow::prelude::*;
use std::time::Duration;

fn await_migration(p: &mut SnowProcess) {
    while !p.poll_point().unwrap() {
        std::thread::sleep(Duration::from_millis(1));
    }
}
fn seq_payload(i: u64) -> Bytes { Bytes::copy_from_slice(&i.to_be_bytes()) }
fn seq_of(b: &[u8]) -> u64 { u64::from_be_bytes(b[..8].try_into().unwrap()) }

#[test]
fn dbg_sim() {
    const HALF: u64 = 3;
    let tracer = Tracer::new();
    let comp = Computation::builder().hosts(HostSpec::ideal(), 4).tracer(tracer.clone()).build();
    let (d0, d1) = (comp.hosts()[2], comp.hosts()[3]);
    let phase = move |p: &mut SnowProcess, from: u64, to: u64| {
        let other = 1 - p.rank();
        for i in from..to { p.send(other, 5, seq_payload(i)).unwrap(); }
        for i in from..to {
            let (_s, _t, b) = p.recv(Some(other), Some(5)).unwrap();
            assert_eq!(seq_of(&b), i);
        }
    };
    let handles = comp.launch(2, move |mut p, start| match start {
        Start::Fresh => { phase(&mut p, 0, HALF); await_migration(&mut p); p.migrate(&ProcessState::empty()).unwrap().expect_completed(); }
        Start::Resumed(_) => { phase(&mut p, HALF, 2 * HALF); p.finish(); }
    });
    comp.migrate_async(0, d0).unwrap();
    comp.migrate_async(1, d1).unwrap();
    comp.wait_migration_done(0).unwrap();
    comp.wait_migration_done(1).unwrap();
    for h in handles { h.join().unwrap(); }
    let st = SpaceTime::build(tracer.snapshot());
    for ev in st.events() {
        eprintln!("{:>9} {:<8} {:?}", ev.t_ns/1000, ev.who, ev.kind);
    }
    eprintln!("undelivered: {:?}", st.undelivered());
    assert!(st.undelivered().is_empty());
}
