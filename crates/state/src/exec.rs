//! Execution state at a poll point.
//!
//! The SNOW compiler annotates source programs with *poll points* —
//! locations where migration is safe — and records, at migration time,
//! the chain of active function calls plus the live variables needed to
//! resume (§2.2, §6: "we force process 0 to migrate when a function call
//! sequence main → kernelMG is made and two iterations ... are
//! performed"). `ExecState` is that record in machine-independent form.

use snow_codec::{CodecError, Value};

/// Machine-independent execution state.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecState {
    /// Active call chain, outermost first (e.g. `["main", "kernelMG"]`).
    pub call_path: Vec<String>,
    /// Identifier of the poll point within the innermost function.
    pub poll_point: u32,
    /// Live locals, named; values are machine-independent.
    pub locals: Vec<(String, Value)>,
}

impl ExecState {
    /// Empty state at the program entry.
    pub fn at_entry() -> Self {
        ExecState {
            call_path: vec!["main".to_string()],
            poll_point: 0,
            locals: Vec::new(),
        }
    }

    /// Push a callee onto the call path (builder-style).
    pub fn enter(mut self, func: &str) -> Self {
        self.call_path.push(func.to_string());
        self
    }

    /// Set the poll point (builder-style).
    pub fn at_poll(mut self, pp: u32) -> Self {
        self.poll_point = pp;
        self
    }

    /// Record a live local (builder-style).
    pub fn with_local(mut self, name: &str, v: Value) -> Self {
        self.locals.push((name.to_string(), v));
        self
    }

    /// Fetch a local by name.
    pub fn local(&self, name: &str) -> Option<&Value> {
        self.locals.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convert to the canonical value form.
    pub fn to_value(&self) -> Value {
        Value::Record(vec![
            (
                "call_path".to_string(),
                Value::List(
                    self.call_path
                        .iter()
                        .map(|s| Value::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("poll_point".to_string(), Value::U64(self.poll_point as u64)),
            ("locals".to_string(), Value::Record(self.locals.clone())),
        ])
    }

    /// Rebuild from the canonical value form.
    pub fn from_value(v: &Value) -> Result<Self, CodecError> {
        let bad = || CodecError::BadTag(0xff);
        let call_path = match v.field("call_path").ok_or_else(bad)? {
            Value::List(items) => items
                .iter()
                .map(|i| i.as_str().map(str::to_string).ok_or_else(bad))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad()),
        };
        let poll_point = v
            .field("poll_point")
            .and_then(Value::as_u64)
            .ok_or_else(bad)? as u32;
        let locals = match v.field("locals").ok_or_else(bad)? {
            Value::Record(fields) => fields.clone(),
            _ => return Err(bad()),
        };
        Ok(ExecState {
            call_path,
            poll_point,
            locals,
        })
    }

    /// Canonical encoded bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_value().encode()
    }

    /// Decode canonical bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::from_value(&Value::decode(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mg_like_state() -> ExecState {
        ExecState::at_entry()
            .enter("kernelMG")
            .at_poll(2)
            .with_local("iteration", Value::U64(2))
            .with_local("residual", Value::F64(1.25e-7))
            .with_local("halo", Value::F64Array(vec![0.5; 64]))
    }

    #[test]
    fn roundtrip() {
        let s = mg_like_state();
        let back = ExecState::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn call_path_matches_paper_scenario() {
        let s = mg_like_state();
        assert_eq!(s.call_path, vec!["main", "kernelMG"]);
        assert_eq!(s.poll_point, 2);
    }

    #[test]
    fn local_lookup() {
        let s = mg_like_state();
        assert_eq!(s.local("iteration").and_then(Value::as_u64), Some(2));
        assert_eq!(s.local("nope"), None);
    }

    #[test]
    fn decode_rejects_wrong_shape() {
        let not_exec = Value::I64(5).encode();
        assert!(ExecState::decode(&not_exec).is_err());
        let missing_fields = Value::Record(vec![]).encode();
        assert!(ExecState::decode(&missing_fields).is_err());
    }

    #[test]
    fn entry_state_is_minimal() {
        let s = ExecState::at_entry();
        assert_eq!(s.call_path, vec!["main"]);
        assert_eq!(s.poll_point, 0);
        assert!(s.locals.is_empty());
    }
}
