//! Graph-based memory state.
//!
//! The SNOW memory-state work models a process's data structures as a
//! graph: nodes are memory blocks, edges are the pointers connecting
//! them. Transforming the graph into machine-independent information
//! means (a) encoding node contents canonically and (b) replacing raw
//! pointers with node identities so the destination machine can rebuild
//! the structure at whatever addresses its allocator chooses.
//!
//! `MemoryGraph` supports arbitrary shapes — lists, trees, cycles,
//! shared substructure — and round-trips through the canonical encoding
//! with isomorphism preserved.

use snow_codec::{CodecError, Value, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Identity of a memory block within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One memory block: a machine-independent payload plus outgoing
/// pointer slots.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    payload: Value,
    /// slot index → target node. Slots model pointer-valued fields.
    edges: BTreeMap<u32, NodeId>,
}

/// A process's heap as a pointer graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryGraph {
    nodes: BTreeMap<NodeId, Node>,
    next: u32,
}

impl MemoryGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a block with `payload`.
    pub fn add_node(&mut self, payload: Value) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        self.nodes.insert(
            id,
            Node {
                payload,
                edges: BTreeMap::new(),
            },
        );
        id
    }

    /// Set pointer slot `slot` of `from` to point at `to`. Panics if
    /// either node does not exist (a construction bug, not a runtime
    /// input).
    pub fn add_edge(&mut self, from: NodeId, slot: u32, to: NodeId) {
        assert!(self.nodes.contains_key(&to), "dangling edge target");
        self.nodes
            .get_mut(&from)
            .expect("edge source exists")
            .edges
            .insert(slot, to);
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A block's payload.
    pub fn payload(&self, id: NodeId) -> Option<&Value> {
        self.nodes.get(&id).map(|n| &n.payload)
    }

    /// Follow pointer slot `slot` out of `id`.
    pub fn follow(&self, id: NodeId, slot: u32) -> Option<NodeId> {
        self.nodes.get(&id)?.edges.get(&slot).copied()
    }

    /// Total payload bytes (canonical form) — the size the migration
    /// cost model charges for.
    pub fn payload_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|n| n.payload.encoded_size_hint())
            .sum()
    }

    /// Encode to canonical machine-independent bytes. Node identities
    /// are compacted to dense indices in id order (relocation step).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.payload_bytes() + 16 * self.len() + 8);
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encode into an existing writer — same canonical bytes as
    /// [`MemoryGraph::encode`].
    pub fn encode_into(&self, w: &mut WireWriter) {
        let index = self.relocation_index();
        w.put_uvarint(self.nodes.len() as u64);
        self.encode_node_range(&index, 0..self.nodes.len(), w);
    }

    /// Dense relocation map: each node's position in id order. Shared by
    /// the chunked encoder so every worker relocates pointers
    /// identically.
    pub(crate) fn relocation_index(&self) -> BTreeMap<NodeId, u64> {
        self.nodes
            .keys()
            .enumerate()
            .map(|(i, id)| (*id, i as u64))
            .collect()
    }

    /// Estimated encoded size of each node in id order (payload hint plus
    /// edge framing) — the chunk partitioner's input.
    pub(crate) fn node_size_hints(&self) -> Vec<usize> {
        self.nodes
            .values()
            .map(|n| n.payload.encoded_size_hint() + 2 + 12 * n.edges.len())
            .collect()
    }

    /// Encode nodes `range` (positions in id order) into `w`. The
    /// concatenation of consecutive ranges covering `0..len` reproduces
    /// the node section of [`MemoryGraph::encode`] byte for byte.
    pub(crate) fn encode_node_range(
        &self,
        index: &BTreeMap<NodeId, u64>,
        range: std::ops::Range<usize>,
        w: &mut WireWriter,
    ) {
        for node in self.nodes.values().skip(range.start).take(range.len()) {
            node.payload.encode_into(w);
            w.put_uvarint(node.edges.len() as u64);
            for (slot, target) in &node.edges {
                w.put_uvarint(*slot as u64);
                w.put_uvarint(index[target]);
            }
        }
    }

    /// Decode canonical bytes. The rebuilt graph is isomorphic to the
    /// source graph, with node ids re-assigned densely from zero —
    /// mirroring the destination machine allocating fresh blocks.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = WireReader::new(bytes);
        let n = r.get_uvarint()?;
        if n > bytes.len() as u64 {
            return Err(CodecError::LengthOverflow {
                declared: n,
                remaining: bytes.len(),
            });
        }
        let n = n as usize;
        let mut g = MemoryGraph::new();
        let mut pending_edges: Vec<(NodeId, u32, u64)> = Vec::new();
        for _ in 0..n {
            let payload = Value::decode_from(&mut r)?;
            let id = g.add_node(payload);
            let e = r.get_uvarint()? as usize;
            for _ in 0..e {
                let slot = r.get_uvarint()? as u32;
                let target = r.get_uvarint()?;
                if target >= n as u64 {
                    return Err(CodecError::LengthOverflow {
                        declared: target,
                        remaining: n,
                    });
                }
                pending_edges.push((id, slot, target));
            }
        }
        r.finish()?;
        let ids: Vec<NodeId> = g.nodes.keys().copied().collect();
        for (from, slot, target) in pending_edges {
            g.add_edge(from, slot, ids[target as usize]);
        }
        Ok(g)
    }

    /// Structural equality up to node renaming (graph isomorphism along
    /// the dense-index relocation): payloads and edge shapes must match
    /// in id order.
    pub fn isomorphic(&self, other: &MemoryGraph) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let ia: BTreeMap<NodeId, usize> = self
            .nodes
            .keys()
            .enumerate()
            .map(|(i, id)| (*id, i))
            .collect();
        let ib: BTreeMap<NodeId, usize> = other
            .nodes
            .keys()
            .enumerate()
            .map(|(i, id)| (*id, i))
            .collect();
        self.nodes.values().zip(other.nodes.values()).all(|(a, b)| {
            a.payload == b.payload
                && a.edges.len() == b.edges.len()
                && a.edges
                    .iter()
                    .zip(b.edges.iter())
                    .all(|((sa, ta), (sb, tb))| sa == sb && ia[ta] == ib[tb])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roundtrip(g: &MemoryGraph) {
        let bytes = g.encode();
        let back = MemoryGraph::decode(&bytes).unwrap();
        assert!(g.isomorphic(&back), "roundtrip lost structure");
    }

    #[test]
    fn empty_graph() {
        let g = MemoryGraph::new();
        assert!(g.is_empty());
        assert_roundtrip(&g);
    }

    #[test]
    fn linked_list_roundtrip() {
        let mut g = MemoryGraph::new();
        let ids: Vec<NodeId> = (0..10).map(|i| g.add_node(Value::I64(i))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], 0, w[1]);
        }
        assert_roundtrip(&g);
        assert_eq!(g.follow(ids[0], 0), Some(ids[1]));
        assert_eq!(g.follow(ids[9], 0), None);
    }

    #[test]
    fn cycle_roundtrip() {
        let mut g = MemoryGraph::new();
        let a = g.add_node(Value::Str("a".into()));
        let b = g.add_node(Value::Str("b".into()));
        g.add_edge(a, 0, b);
        g.add_edge(b, 0, a); // cycle
        g.add_edge(a, 1, a); // self-loop
        assert_roundtrip(&g);
    }

    #[test]
    fn shared_substructure_roundtrip() {
        let mut g = MemoryGraph::new();
        let shared = g.add_node(Value::F64Array(vec![1.0, 2.0, 3.0]));
        let x = g.add_node(Value::Str("x".into()));
        let y = g.add_node(Value::Str("y".into()));
        g.add_edge(x, 0, shared);
        g.add_edge(y, 0, shared);
        let back = MemoryGraph::decode(&g.encode()).unwrap();
        assert!(g.isomorphic(&back));
        // Sharing preserved: both decoded parents point at the same node.
        let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
        assert_eq!(back.follow(ids[1], 0), back.follow(ids[2], 0));
    }

    #[test]
    fn payload_bytes_scales() {
        let mut g = MemoryGraph::new();
        g.add_node(Value::F64Array(vec![0.0; 1000]));
        assert!(g.payload_bytes() >= 8000);
    }

    #[test]
    fn decode_rejects_out_of_range_edge() {
        let mut g = MemoryGraph::new();
        let a = g.add_node(Value::Unit);
        let b = g.add_node(Value::Unit);
        g.add_edge(a, 0, b);
        let mut bytes = g.encode();
        // Corrupt the final byte (the edge target index) to 9.
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert!(MemoryGraph::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut g = MemoryGraph::new();
        let a = g.add_node(Value::F64Array(vec![1.0; 8]));
        let b = g.add_node(Value::I64(7));
        g.add_edge(a, 0, b);
        let bytes = g.encode();
        for cut in 1..bytes.len() {
            assert!(MemoryGraph::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn isomorphic_detects_differences() {
        let mut g1 = MemoryGraph::new();
        let a1 = g1.add_node(Value::I64(1));
        let b1 = g1.add_node(Value::I64(2));
        g1.add_edge(a1, 0, b1);

        let mut g2 = g1.clone();
        assert!(g1.isomorphic(&g2));
        g2.add_edge(b1, 0, a1);
        assert!(!g1.isomorphic(&g2));

        let mut g3 = MemoryGraph::new();
        let a3 = g3.add_node(Value::I64(1));
        let b3 = g3.add_node(Value::I64(999)); // different payload
        g3.add_edge(a3, 0, b3);
        assert!(!g1.isomorphic(&g3));
    }

    #[test]
    #[should_panic(expected = "dangling edge target")]
    fn dangling_edge_panics() {
        let mut g = MemoryGraph::new();
        let a = g.add_node(Value::Unit);
        g.add_edge(a, 0, NodeId(42));
    }
}
