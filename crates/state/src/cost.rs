//! Collect/restore cost model.
//!
//! Calibrated against the paper's measurements of ~7.5 MB of exe+mem
//! state:
//!
//! | operation | Ultra 5 (speed 1.0) | DEC 5000/120 (speed ≈ 0.14) |
//! |---|---|---|
//! | collect | 0.73 s (§6.2) | 5.209 s (§6.3, Table 2) |
//! | restore | 0.6794 s (§6.2) | — (restored on an Ultra 5: 0.696 s) |
//!
//! 7.5 MB / 0.73 s ≈ 10.3 MB/s of collection throughput at speed 1.0;
//! restoration is slightly faster (≈ 11.0 MB/s). A host's `speed`
//! factor divides the throughput, so the DEC's collect of the same state
//! takes 7.5 MB / (0.14 × 10.3 MB/s) ≈ 5.2 s — matching Table 2.

/// Throughput-based cost model for state collection and restoration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateCostModel {
    /// Collection throughput at host speed 1.0, bytes per modeled second.
    pub collect_bps: f64,
    /// Restoration throughput at host speed 1.0, bytes per modeled
    /// second.
    pub restore_bps: f64,
}

impl StateCostModel {
    /// The model calibrated from the paper (see module docs).
    pub const PAPER: StateCostModel = StateCostModel {
        collect_bps: 7_500_000.0 / 0.73,
        restore_bps: 7_500_000.0 / 0.6794,
    };

    /// Modeled seconds to collect `bytes` of state on a host of relative
    /// `speed`.
    pub fn collect_seconds(&self, bytes: usize, speed: f64) -> f64 {
        assert!(speed > 0.0, "host speed must be positive");
        bytes as f64 / (self.collect_bps * speed)
    }

    /// Modeled seconds to restore `bytes` of state on a host of relative
    /// `speed`.
    pub fn restore_seconds(&self, bytes: usize, speed: f64) -> f64 {
        assert!(speed > 0.0, "host speed must be positive");
        bytes as f64 / (self.restore_bps * speed)
    }
}

impl Default for StateCostModel {
    fn default() -> Self {
        StateCostModel::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB75: usize = 7_500_000;

    #[test]
    fn calibration_matches_table1_breakdown() {
        let m = StateCostModel::PAPER;
        // §6.2: collect 0.73 s, restore 0.6794 s on Ultra 5s.
        assert!((m.collect_seconds(MB75, 1.0) - 0.73).abs() < 0.02);
        assert!((m.restore_seconds(MB75, 1.0) - 0.6794).abs() < 0.02);
    }

    #[test]
    fn calibration_matches_table2_collect() {
        let m = StateCostModel::PAPER;
        // §6.3: 5.209 s on the DEC 5000/120 (speed 0.14).
        let t = m.collect_seconds(MB75, 0.14);
        assert!((t - 5.209).abs() < 0.3, "{t}");
    }

    #[test]
    fn cost_scales_linearly_in_bytes() {
        let m = StateCostModel::PAPER;
        let t1 = m.collect_seconds(1_000_000, 1.0);
        let t2 = m.collect_seconds(2_000_000, 1.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn slower_host_costs_more() {
        let m = StateCostModel::PAPER;
        assert!(m.restore_seconds(MB75, 0.5) > m.restore_seconds(MB75, 1.0));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        StateCostModel::PAPER.collect_seconds(1, 0.0);
    }
}
