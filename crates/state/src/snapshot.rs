//! The complete exe+mem state bundle shipped during migration.

use crate::exec::ExecState;
use crate::memory::MemoryGraph;
use snow_codec::{CodecError, Value, WireReader, WireWriter};

/// Errors while packing/unpacking a state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The canonical payload failed to decode.
    Codec(CodecError),
    /// The integrity checksum did not match — the state was corrupted in
    /// transit.
    ChecksumMismatch {
        /// Checksum carried in the snapshot.
        expected: u64,
        /// Checksum recomputed from the payload.
        actual: u64,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Codec(e) => write!(f, "state codec error: {e}"),
            StateError::ChecksumMismatch { expected, actual } => write!(
                f,
                "state checksum mismatch: expected {expected:#x}, got {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for StateError {}

impl From<CodecError> for StateError {
    fn from(e: CodecError) -> Self {
        StateError::Codec(e)
    }
}

/// FNV-1a, enough to catch transport corruption (not adversarial).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A process's execution + memory state: the opaque payload of the
/// `ExeMemState` envelope (Fig 5 line 10 → Fig 7 line 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessState {
    /// Where to resume.
    pub exec: ExecState,
    /// The heap.
    pub memory: MemoryGraph,
}

impl ProcessState {
    /// Bundle exec and memory state.
    pub fn new(exec: ExecState, memory: MemoryGraph) -> Self {
        ProcessState { exec, memory }
    }

    /// Minimal state (entry point, empty heap).
    pub fn empty() -> Self {
        ProcessState {
            exec: ExecState::at_entry(),
            memory: MemoryGraph::new(),
        }
    }

    /// *Collect* the state into canonical bytes (the source half of the
    /// heterogeneous transfer). Layout: checksum ‖ exec ‖ memory.
    pub fn collect(&self) -> Vec<u8> {
        let exec = self.exec.encode();
        let mem = self.memory.encode();
        let mut body = WireWriter::with_capacity(exec.len() + mem.len() + 24);
        body.put_bytes(&exec);
        body.put_bytes(&mem);
        let body = body.into_bytes();
        let mut w = WireWriter::with_capacity(body.len() + 8);
        w.put_u64(fnv1a(&body));
        w.put_raw(&body);
        w.into_bytes()
    }

    /// *Restore* the state from canonical bytes (the destination half).
    pub fn restore(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = WireReader::new(bytes);
        let expected = r.get_u64()?;
        let body = r.get_raw(r.remaining())?;
        let actual = fnv1a(body);
        if actual != expected {
            return Err(StateError::ChecksumMismatch { expected, actual });
        }
        let mut br = WireReader::new(body);
        let exec_bytes = br.get_bytes()?;
        let mem_bytes = br.get_bytes()?;
        br.finish()?;
        Ok(ProcessState {
            exec: ExecState::decode(exec_bytes)?,
            memory: MemoryGraph::decode(mem_bytes)?,
        })
    }

    /// Pad the heap with an opaque block so the collected size reaches at
    /// least `target_bytes`. Used by harnesses to reproduce the paper's
    /// "over 7.5 Mbytes of execution and memory state".
    pub fn pad_to(&mut self, target_bytes: usize) {
        let current = self.collect().len();
        if current < target_bytes {
            // A Bytes block encodes with a handful of framing bytes; add
            // a small safety margin so we land at or just above target.
            let deficit = target_bytes - current + 16;
            self.memory.add_node(Value::Bytes(vec![0xa5; deficit]));
        }
    }

    /// Collected size in bytes (what the link cost model charges).
    pub fn collected_bytes(&self) -> usize {
        self.collect().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_codec::Value;

    fn sample() -> ProcessState {
        let exec = ExecState::at_entry()
            .enter("kernelMG")
            .at_poll(2)
            .with_local("iter", Value::U64(2));
        let mut mem = MemoryGraph::new();
        let grid = mem.add_node(Value::F64Array(vec![1.5; 512]));
        let hdr = mem.add_node(Value::Str("grid".into()));
        mem.add_edge(hdr, 0, grid);
        ProcessState::new(exec, mem)
    }

    #[test]
    fn collect_restore_roundtrip() {
        let s = sample();
        let bytes = s.collect();
        let back = ProcessState::restore(&bytes).unwrap();
        assert_eq!(back.exec, s.exec);
        assert!(back.memory.isomorphic(&s.memory));
    }

    #[test]
    fn corruption_detected() {
        let s = sample();
        let mut bytes = s.collect();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        match ProcessState::restore(&bytes) {
            Err(StateError::ChecksumMismatch { .. }) | Err(StateError::Codec(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let s = sample();
        let bytes = s.collect();
        assert!(ProcessState::restore(&bytes[..4]).is_err());
    }

    #[test]
    fn pad_to_reaches_target() {
        let mut s = ProcessState::empty();
        s.pad_to(7_500_000);
        let n = s.collected_bytes();
        assert!(n >= 7_500_000, "{n}");
        assert!(n < 7_600_000, "overshoot: {n}");
        // Padded state still round-trips.
        let back = ProcessState::restore(&s.collect()).unwrap();
        assert!(back.memory.isomorphic(&s.memory));
    }

    #[test]
    fn pad_to_noop_when_already_big() {
        let mut s = ProcessState::empty();
        s.pad_to(1000);
        let n1 = s.collected_bytes();
        s.pad_to(100);
        assert_eq!(s.collected_bytes(), n1);
    }

    #[test]
    fn empty_state_roundtrip() {
        let s = ProcessState::empty();
        let back = ProcessState::restore(&s.collect()).unwrap();
        assert_eq!(back.exec, s.exec);
        assert!(back.memory.is_empty());
    }
}
