//! The complete exe+mem state bundle shipped during migration.

use crate::exec::ExecState;
use crate::memory::MemoryGraph;
use snow_codec::{CodecError, Value, WireReader, WireWriter};

/// Errors while packing/unpacking a state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The canonical payload failed to decode.
    Codec(CodecError),
    /// The integrity checksum did not match — the state was corrupted in
    /// transit.
    ChecksumMismatch {
        /// Checksum carried in the snapshot.
        expected: u64,
        /// Checksum recomputed from the payload.
        actual: u64,
    },
    /// A state chunk arrived out of sequence (frames are FIFO per
    /// channel, so this means chunks were dropped or duplicated).
    ChunkSequence {
        /// Sequence number the restorer expected next.
        expected: u32,
        /// Sequence number that actually arrived.
        got: u32,
    },
    /// The digest frame closing a chunked stream disagreed with the
    /// received chunks (whole-state digest, chunk count or byte total).
    DigestMismatch {
        /// Value carried in the digest frame.
        expected: u64,
        /// Value recomputed from the received chunks.
        actual: u64,
    },
    /// A chunked stream ended while the state was still incomplete.
    StreamIncomplete(&'static str),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Codec(e) => write!(f, "state codec error: {e}"),
            StateError::ChecksumMismatch { expected, actual } => write!(
                f,
                "state checksum mismatch: expected {expected:#x}, got {actual:#x}"
            ),
            StateError::ChunkSequence { expected, got } => write!(
                f,
                "state chunk out of sequence: expected #{expected}, got #{got}"
            ),
            StateError::DigestMismatch { expected, actual } => write!(
                f,
                "state stream digest mismatch: expected {expected:#x}, got {actual:#x}"
            ),
            StateError::StreamIncomplete(what) => {
                write!(f, "state stream ended early: {what}")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<CodecError> for StateError {
    fn from(e: CodecError) -> Self {
        StateError::Codec(e)
    }
}

/// FNV-1a offset basis (the seed of a fresh digest).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` — enough to catch transport corruption (not
/// adversarial). Identical output to the textbook byte-at-a-time loop;
/// see [`fnv1a_with_seed`] for the implementation notes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with_seed(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a digest from `seed` over `bytes`. Folding a byte
/// stream in arbitrary splits gives the same digest as hashing it whole
/// — the chunked state transfer uses this to verify the reassembled
/// stream against the monolithic checksum.
///
/// The body loads eight bytes per iteration and unrolls the fold, which
/// removes per-byte bounds checks on the multi-megabyte snapshots the
/// migration path hashes; the digest is bit-identical to the plain loop.
pub fn fnv1a_with_seed(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    let mut words = bytes.chunks_exact(8);
    for w in words.by_ref() {
        let x = u64::from_le_bytes(w.try_into().unwrap());
        h = (h ^ (x & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ ((x >> 8) & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ ((x >> 16) & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ ((x >> 24) & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ ((x >> 32) & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ ((x >> 40) & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ ((x >> 48) & 0xff)).wrapping_mul(FNV_PRIME);
        h = (h ^ (x >> 56)).wrapping_mul(FNV_PRIME);
    }
    for &b in words.remainder() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A process's execution + memory state: the opaque payload of the
/// `ExeMemState` envelope (Fig 5 line 10 → Fig 7 line 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessState {
    /// Where to resume.
    pub exec: ExecState,
    /// The heap.
    pub memory: MemoryGraph,
}

impl ProcessState {
    /// Bundle exec and memory state.
    pub fn new(exec: ExecState, memory: MemoryGraph) -> Self {
        ProcessState { exec, memory }
    }

    /// Minimal state (entry point, empty heap).
    pub fn empty() -> Self {
        ProcessState {
            exec: ExecState::at_entry(),
            memory: MemoryGraph::new(),
        }
    }

    /// Canonical *body* bytes, without the leading checksum. Layout:
    /// `uvarint(len(exec)) ‖ exec ‖ memory`, where the memory section
    /// runs to the end of the body with no length prefix — so it can be
    /// produced and consumed as a stream of node chunks (see
    /// [`crate::pipeline`]) without knowing its total size up front.
    pub fn collect_body(&self) -> Vec<u8> {
        let exec = self.exec.encode();
        let mut w = WireWriter::with_capacity(
            exec.len() + self.memory.payload_bytes() + 16 * self.memory.len() + 24,
        );
        w.put_bytes(&exec);
        self.memory.encode_into(&mut w);
        w.into_bytes()
    }

    /// *Collect* the state into canonical bytes (the source half of the
    /// heterogeneous transfer). Layout: checksum ‖ body (see
    /// [`ProcessState::collect_body`]).
    pub fn collect(&self) -> Vec<u8> {
        let body = self.collect_body();
        let mut w = WireWriter::with_capacity(body.len() + 8);
        w.put_u64(fnv1a(&body));
        w.put_raw(&body);
        w.into_bytes()
    }

    /// Decode canonical *body* bytes (no checksum prefix) — the inverse
    /// of [`ProcessState::collect_body`].
    pub fn restore_body(body: &[u8]) -> Result<Self, StateError> {
        let mut br = WireReader::new(body);
        let exec_bytes = br.get_bytes()?;
        let mem_bytes = br.get_raw(br.remaining())?;
        Ok(ProcessState {
            exec: ExecState::decode(exec_bytes)?,
            memory: MemoryGraph::decode(mem_bytes)?,
        })
    }

    /// Check the integrity checksum of collected bytes without decoding
    /// the body. The destination of a monolithic transfer acks on this
    /// before the commit handshake; the full decode still happens after
    /// commit, as in the paper.
    pub fn verify(bytes: &[u8]) -> Result<(), StateError> {
        let mut r = WireReader::new(bytes);
        let expected = r.get_u64()?;
        let body = r.get_raw(r.remaining())?;
        let actual = fnv1a(body);
        if actual != expected {
            return Err(StateError::ChecksumMismatch { expected, actual });
        }
        Ok(())
    }

    /// *Restore* the state from canonical bytes (the destination half).
    pub fn restore(bytes: &[u8]) -> Result<Self, StateError> {
        Self::verify(bytes)?;
        let mut r = WireReader::new(bytes);
        let _checksum = r.get_u64()?;
        let body = r.get_raw(r.remaining())?;
        Self::restore_body(body)
    }

    /// Pad the heap with an opaque block so the collected size reaches at
    /// least `target_bytes`. Used by harnesses to reproduce the paper's
    /// "over 7.5 Mbytes of execution and memory state".
    pub fn pad_to(&mut self, target_bytes: usize) {
        let current = self.collect().len();
        if current < target_bytes {
            // A Bytes block encodes with a handful of framing bytes; add
            // a small safety margin so we land at or just above target.
            // Padding is split into 64 KiB blocks — real heaps are many
            // objects, and whole-node chunking can then fragment them.
            const BLOCK: usize = 64 * 1024;
            let mut deficit = target_bytes - current + 16;
            while deficit > 0 {
                let n = deficit.min(BLOCK);
                self.memory.add_node(Value::Bytes(vec![0xa5; n]));
                deficit -= n;
            }
        }
    }

    /// Collected size in bytes (what the link cost model charges).
    pub fn collected_bytes(&self) -> usize {
        self.collect().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_codec::Value;

    fn sample() -> ProcessState {
        let exec = ExecState::at_entry()
            .enter("kernelMG")
            .at_poll(2)
            .with_local("iter", Value::U64(2));
        let mut mem = MemoryGraph::new();
        let grid = mem.add_node(Value::F64Array(vec![1.5; 512]));
        let hdr = mem.add_node(Value::Str("grid".into()));
        mem.add_edge(hdr, 0, grid);
        ProcessState::new(exec, mem)
    }

    #[test]
    fn fnv1a_matches_published_vectors() {
        // Official FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a_unrolled_matches_plain_loop() {
        // Lengths around the 8-byte unroll boundary, bytes with all
        // values represented.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 255, 256, 1031] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut plain: u64 = FNV_OFFSET;
            for &b in &data {
                plain = (plain ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            assert_eq!(fnv1a(&data), plain, "len {len}");
        }
    }

    #[test]
    fn fnv1a_seeded_fold_equals_whole() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let whole = fnv1a(&data);
        for split in [0usize, 1, 7, 8, 100, 999, 1000] {
            let partial = fnv1a_with_seed(fnv1a(&data[..split]), &data[split..]);
            assert_eq!(partial, whole, "split {split}");
        }
    }

    #[test]
    fn collect_restore_roundtrip() {
        let s = sample();
        let bytes = s.collect();
        let back = ProcessState::restore(&bytes).unwrap();
        assert_eq!(back.exec, s.exec);
        assert!(back.memory.isomorphic(&s.memory));
    }

    #[test]
    fn corruption_detected() {
        let s = sample();
        let mut bytes = s.collect();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        match ProcessState::restore(&bytes) {
            Err(StateError::ChecksumMismatch { .. }) | Err(StateError::Codec(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let s = sample();
        let bytes = s.collect();
        assert!(ProcessState::restore(&bytes[..4]).is_err());
    }

    #[test]
    fn pad_to_reaches_target() {
        let mut s = ProcessState::empty();
        s.pad_to(7_500_000);
        let n = s.collected_bytes();
        assert!(n >= 7_500_000, "{n}");
        assert!(n < 7_600_000, "overshoot: {n}");
        // Padded state still round-trips.
        let back = ProcessState::restore(&s.collect()).unwrap();
        assert!(back.memory.isomorphic(&s.memory));
    }

    #[test]
    fn pad_to_noop_when_already_big() {
        let mut s = ProcessState::empty();
        s.pad_to(1000);
        let n1 = s.collected_bytes();
        s.pad_to(100);
        assert_eq!(s.collected_bytes(), n1);
    }

    #[test]
    fn empty_state_roundtrip() {
        let s = ProcessState::empty();
        let back = ProcessState::restore(&s.collect()).unwrap();
        assert_eq!(back.exec, s.exec);
        assert!(back.memory.is_empty());
    }
}
