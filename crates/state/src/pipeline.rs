//! Pipelined, chunked exe+mem state transfer.
//!
//! The monolithic path ([`ProcessState::collect`]) encodes the whole
//! state, then ships it as one frame: collect, transmit and restore run
//! strictly one after another, which is exactly the serial sum the
//! paper's Table 2 charges (Collect + Tx + Restore). This module
//! overlaps the three stages:
//!
//! * the memory graph is partitioned into size-bounded *chunks* of whole
//!   nodes ([`plan_chunks`]);
//! * a configurable worker pool encodes chunks concurrently
//!   ([`stream_chunks`]), while the caller ships each finished chunk as
//!   its own frame over the same FIFO channel — so encoding of chunk
//!   *i+1* overlaps transmission of chunk *i*;
//! * the destination feeds frames to a [`ChunkedRestorer`] that verifies
//!   and decodes incrementally, overlapping restore with transmission.
//!
//! The byte stream is *identical* to the monolithic canonical body: the
//! concatenation of all chunks equals [`ProcessState::collect_body`],
//! and the incrementally folded FNV-1a digest equals the checksum a
//! monolithic [`ProcessState::collect`] would store. Chunk order is
//! deterministic (planned before encoding starts), so the encoding stays
//! canonical regardless of worker count or scheduling.
//!
//! [`pipelined_makespan`] models the overlapped schedule so migration
//! timings can report both the old serial-sum cost and the pipelined
//! cost.

use crate::snapshot::{fnv1a, fnv1a_with_seed, ProcessState, StateError, FNV_OFFSET};
use crate::{ExecState, MemoryGraph, NodeId};
use snow_codec::{CodecError, WireReader, WireWriter};

/// Tuning knobs for the chunked transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Target encoded size of one chunk. Chunks hold whole memory nodes,
    /// so a single node larger than this becomes its own oversized
    /// chunk. `usize::MAX` puts the entire memory section in one chunk.
    pub chunk_bytes: usize,
    /// Encoder worker threads. `0` disables the pipeline entirely — the
    /// migration path falls back to the monolithic single-frame
    /// transfer.
    pub workers: usize,
    /// Bound on the job and result queues between the planner, the
    /// workers and the sender — limits how far encoding may run ahead of
    /// transmission.
    pub queue_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunk_bytes: 256 * 1024,
            workers: 4,
            queue_depth: 8,
        }
    }
}

impl PipelineConfig {
    /// The monolithic (pre-pipeline) single-frame transfer.
    pub fn monolithic() -> Self {
        PipelineConfig {
            workers: 0,
            ..PipelineConfig::default()
        }
    }

    /// True when the monolithic path should be used instead.
    pub fn is_monolithic(&self) -> bool {
        self.workers == 0
    }
}

/// One encoded chunk of the canonical state body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateChunk {
    /// Position in the stream (0 = header chunk).
    pub seq: u32,
    /// FNV-1a of `bytes` — per-chunk corruption check.
    pub checksum: u64,
    /// The chunk's slice of the canonical body.
    pub bytes: Vec<u8>,
}

/// What a completed chunk stream adds up to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkStreamSummary {
    /// Whole-body FNV-1a — equals the checksum of the monolithic
    /// [`ProcessState::collect`] encoding of the same state.
    pub digest: u64,
    /// Total body bytes across all chunks.
    pub total_bytes: usize,
    /// Number of chunks streamed (including the header chunk).
    pub chunks: u32,
}

/// Partition the memory nodes into chunk-sized ranges of whole nodes
/// (positions in id order). Deterministic in the graph and
/// `chunk_bytes` alone.
fn plan_chunks(hints: &[usize], chunk_bytes: usize) -> Vec<std::ops::Range<usize>> {
    let cap = chunk_bytes.max(1);
    let mut groups = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, h) in hints.iter().enumerate() {
        if i > start && acc + h > cap {
            groups.push(start..i);
            start = i;
            acc = 0;
        }
        acc += h;
    }
    if start < hints.len() {
        groups.push(start..hints.len());
    }
    groups
}

/// Collect `state` as a chunk stream, invoking `on_chunk` for each chunk
/// in sequence order. Chunks after the header are encoded on
/// `cfg.workers` threads; the callback runs on the calling thread and
/// naturally backpressures the pool through the bounded queues.
///
/// On callback error the remaining chunks are drained (so the pool shuts
/// down cleanly) without further callbacks, and the error is returned.
pub fn stream_chunks<E>(
    state: &ProcessState,
    cfg: &PipelineConfig,
    mut on_chunk: impl FnMut(&StateChunk) -> Result<(), E>,
) -> Result<ChunkStreamSummary, E> {
    let mem = &state.memory;
    let hints = mem.node_size_hints();
    let groups = plan_chunks(&hints, cfg.chunk_bytes);
    let index = mem.relocation_index();

    let mut digest = FNV_OFFSET;
    let mut total_bytes = 0usize;
    let mut chunks = 0u32;
    let mut emit = |chunk_bytes: Vec<u8>,
                    on_chunk: &mut dyn FnMut(&StateChunk) -> Result<(), E>|
     -> Result<(), E> {
        let chunk = StateChunk {
            seq: chunks,
            checksum: fnv1a(&chunk_bytes),
            bytes: chunk_bytes,
        };
        digest = fnv1a_with_seed(digest, &chunk.bytes);
        total_bytes += chunk.bytes.len();
        chunks += 1;
        on_chunk(&chunk)
    };

    // Chunk 0: the header — exec state plus the node count, i.e. the
    // canonical body up to the first memory node.
    let exec = state.exec.encode();
    let mut w = WireWriter::with_capacity(exec.len() + 16);
    w.put_bytes(&exec);
    w.put_uvarint(mem.len() as u64);
    emit(w.take_bytes(), &mut on_chunk)?;

    let workers = cfg.workers.max(1);
    if workers == 1 || groups.len() <= 1 {
        // Sequential path: same partition, no thread handoff.
        for g in groups {
            let cap: usize = hints[g.clone()].iter().sum();
            w.reserve(cap + 16);
            mem.encode_node_range(&index, g, &mut w);
            emit(w.take_bytes(), &mut on_chunk)?;
        }
        return Ok(ChunkStreamSummary {
            digest,
            total_bytes,
            chunks,
        });
    }

    let depth = cfg.queue_depth.max(1);
    let mut failure: Option<E> = None;
    std::thread::scope(|s| {
        let (job_tx, job_rx) = crossbeam::channel::bounded::<(u32, std::ops::Range<usize>)>(depth);
        let (res_tx, res_rx) = crossbeam::channel::bounded::<(u32, Vec<u8>)>(depth);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let index = &index;
            let hints = &hints;
            s.spawn(move || {
                while let Ok((seq, range)) = job_rx.recv() {
                    let cap: usize = hints[range.clone()].iter().sum();
                    let mut w = WireWriter::with_capacity(cap + 16);
                    mem.encode_node_range(index, range, &mut w);
                    if res_tx.send((seq, w.take_bytes())).is_err() {
                        return;
                    }
                }
            });
        }
        drop(job_rx);
        drop(res_tx);

        let n_groups = groups.len() as u32;
        let jobs: Vec<(u32, std::ops::Range<usize>)> = groups
            .into_iter()
            .enumerate()
            .map(|(i, g)| (i as u32 + 1, g))
            .collect();
        s.spawn(move || {
            for job in jobs {
                if job_tx.send(job).is_err() {
                    return;
                }
            }
        });

        // Re-sequence results: workers finish out of order, the stream
        // must not.
        let mut stash: std::collections::BTreeMap<u32, Vec<u8>> = std::collections::BTreeMap::new();
        for expected in 1..=n_groups {
            let bytes = loop {
                if let Some(b) = stash.remove(&expected) {
                    break b;
                }
                let (seq, b) = res_rx
                    .recv()
                    .expect("encoder pool exited with chunks outstanding");
                if seq == expected {
                    break b;
                }
                stash.insert(seq, b);
            };
            if failure.is_none() {
                if let Err(e) = emit(bytes, &mut on_chunk) {
                    failure = Some(e);
                }
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(ChunkStreamSummary {
            digest,
            total_bytes,
            chunks,
        }),
    }
}

/// Collect `state` into an in-memory chunk vector (test/bench helper
/// over [`stream_chunks`]).
pub fn collect_chunks(
    state: &ProcessState,
    cfg: &PipelineConfig,
) -> (Vec<StateChunk>, ChunkStreamSummary) {
    let mut out = Vec::new();
    let summary = stream_chunks(state, cfg, |c| {
        out.push(c.clone());
        Ok::<(), std::convert::Infallible>(())
    })
    .unwrap();
    (out, summary)
}

/// Is this decode error "ran out of bytes" (more chunks pending) rather
/// than corruption? Per-chunk checksums already reject corruption, so an
/// EOF-shaped error mid-stream just means the item straddles a chunk
/// boundary.
fn needs_more(e: &CodecError) -> bool {
    matches!(
        e,
        CodecError::UnexpectedEof { .. } | CodecError::LengthOverflow { .. }
    )
}

enum RestoreStage {
    /// Waiting for `uvarint(len(exec)) ‖ exec ‖ uvarint(n_nodes)`.
    Header,
    /// Decoding the node section.
    Nodes,
    /// Every node decoded, edges resolved.
    Done,
}

/// Incremental decoder for a chunk stream: verifies each chunk's
/// checksum, folds the whole-state digest, and decodes memory nodes as
/// soon as their bytes are complete — restore overlaps transmission
/// instead of waiting for the last byte.
pub struct ChunkedRestorer {
    next_seq: u32,
    digest: u64,
    total_bytes: usize,
    /// Undecoded tail of the body stream (bounded by one item's size,
    /// not the whole state).
    buf: Vec<u8>,
    stage: RestoreStage,
    exec: Option<ExecState>,
    graph: MemoryGraph,
    ids: Vec<NodeId>,
    n_nodes: u64,
    pending_edges: Vec<(NodeId, u32, u64)>,
}

impl Default for ChunkedRestorer {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkedRestorer {
    /// A restorer awaiting chunk 0.
    pub fn new() -> Self {
        ChunkedRestorer {
            next_seq: 0,
            digest: FNV_OFFSET,
            total_bytes: 0,
            buf: Vec::new(),
            stage: RestoreStage::Header,
            exec: None,
            graph: MemoryGraph::new(),
            ids: Vec::new(),
            n_nodes: 0,
            pending_edges: Vec::new(),
        }
    }

    /// Chunks accepted so far.
    pub fn chunks_received(&self) -> u32 {
        self.next_seq
    }

    /// Body bytes accepted so far.
    pub fn bytes_received(&self) -> usize {
        self.total_bytes
    }

    /// Memory nodes fully decoded so far.
    pub fn nodes_decoded(&self) -> usize {
        self.ids.len()
    }

    /// Accept the next chunk: sequence + checksum verified, digest
    /// folded, then as many complete items as possible decoded.
    pub fn push(&mut self, seq: u32, checksum: u64, bytes: &[u8]) -> Result<(), StateError> {
        if seq != self.next_seq {
            return Err(StateError::ChunkSequence {
                expected: self.next_seq,
                got: seq,
            });
        }
        let actual = fnv1a(bytes);
        if actual != checksum {
            return Err(StateError::ChecksumMismatch {
                expected: checksum,
                actual,
            });
        }
        self.next_seq += 1;
        self.digest = fnv1a_with_seed(self.digest, bytes);
        self.total_bytes += bytes.len();
        self.buf.extend_from_slice(bytes);
        self.advance()
    }

    fn advance(&mut self) -> Result<(), StateError> {
        loop {
            match self.stage {
                RestoreStage::Header => {
                    let mut r = WireReader::new(&self.buf);
                    let header = (|| -> Result<(ExecState, u64, usize), CodecError> {
                        let exec_bytes = r.get_bytes()?;
                        let exec = ExecState::decode(exec_bytes)?;
                        let n = r.get_uvarint()?;
                        Ok((exec, n, r.position()))
                    })();
                    match header {
                        Ok((exec, n, consumed)) => {
                            self.exec = Some(exec);
                            self.n_nodes = n;
                            self.buf.drain(..consumed);
                            self.stage = RestoreStage::Nodes;
                        }
                        Err(e) if needs_more(&e) => return Ok(()),
                        Err(e) => return Err(StateError::Codec(e)),
                    }
                }
                RestoreStage::Nodes => {
                    if self.ids.len() as u64 == self.n_nodes {
                        self.resolve_edges()?;
                        self.stage = RestoreStage::Done;
                        continue;
                    }
                    let mut r = WireReader::new(&self.buf);
                    let node = (|| -> Result<_, CodecError> {
                        let payload = snow_codec::Value::decode_from(&mut r)?;
                        let e = r.get_uvarint()? as usize;
                        let mut edges = Vec::with_capacity(e.min(64));
                        for _ in 0..e {
                            let slot = r.get_uvarint()? as u32;
                            let target = r.get_uvarint()?;
                            edges.push((slot, target));
                        }
                        Ok((payload, edges, r.position()))
                    })();
                    match node {
                        Ok((payload, edges, consumed)) => {
                            let id = self.graph.add_node(payload);
                            for (slot, target) in edges {
                                if target >= self.n_nodes {
                                    return Err(StateError::Codec(CodecError::LengthOverflow {
                                        declared: target,
                                        remaining: self.n_nodes as usize,
                                    }));
                                }
                                self.pending_edges.push((id, slot, target));
                            }
                            self.ids.push(id);
                            self.buf.drain(..consumed);
                        }
                        Err(e) if needs_more(&e) => return Ok(()),
                        Err(e) => return Err(StateError::Codec(e)),
                    }
                }
                RestoreStage::Done => {
                    if self.buf.is_empty() {
                        return Ok(());
                    }
                    return Err(StateError::Codec(CodecError::TrailingBytes(self.buf.len())));
                }
            }
        }
    }

    fn resolve_edges(&mut self) -> Result<(), StateError> {
        for (from, slot, target) in self.pending_edges.drain(..) {
            self.graph.add_edge(from, slot, self.ids[target as usize]);
        }
        Ok(())
    }

    /// Close the stream against the final digest frame: every count and
    /// the whole-state digest must match, and the decode must be
    /// complete.
    pub fn finish(
        self,
        digest: u64,
        chunks: u32,
        total_bytes: u64,
    ) -> Result<ProcessState, StateError> {
        if chunks != self.next_seq {
            return Err(StateError::ChunkSequence {
                expected: chunks,
                got: self.next_seq,
            });
        }
        if total_bytes != self.total_bytes as u64 {
            return Err(StateError::DigestMismatch {
                expected: total_bytes,
                actual: self.total_bytes as u64,
            });
        }
        if digest != self.digest {
            return Err(StateError::DigestMismatch {
                expected: digest,
                actual: self.digest,
            });
        }
        if !matches!(self.stage, RestoreStage::Done) || !self.buf.is_empty() {
            return Err(StateError::StreamIncomplete(
                "digest frame arrived before the state finished decoding",
            ));
        }
        let exec = self
            .exec
            .ok_or(StateError::StreamIncomplete("no header chunk"))?;
        Ok(ProcessState::new(exec, self.graph))
    }

    /// Abandon the stream, surfacing how far it got. Dropping the
    /// restorer frees the partial graph either way; this makes the
    /// teardown explicit so an aborted migration can trace what it
    /// discarded.
    pub fn abort(self) -> RestoreTeardown {
        RestoreTeardown {
            chunks_received: self.next_seq,
            bytes_received: self.total_bytes,
            nodes_decoded: self.ids.len(),
        }
    }
}

/// What a torn-down restorer had accepted before an abort discarded the
/// partial restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreTeardown {
    /// Chunks accepted before the abort.
    pub chunks_received: u32,
    /// Body bytes accepted before the abort.
    pub bytes_received: usize,
    /// Memory nodes already decoded.
    pub nodes_decoded: usize,
}

/// Modeled makespan of the overlapped pipeline, in seconds. Per-chunk
/// stage costs flow through `workers` parallel encoders, one FIFO wire,
/// and one restorer; chunk *i*'s transmission starts when both its
/// encoding and the wire are done, its restore when both its arrival and
/// the restorer are done. The serial-sum baseline this compares against
/// is simply `collect_s.sum() + tx_s.sum() + restore_s.sum()`.
pub fn pipelined_makespan(
    collect_s: &[f64],
    tx_s: &[f64],
    restore_s: &[f64],
    workers: usize,
) -> f64 {
    assert_eq!(collect_s.len(), tx_s.len());
    assert_eq!(collect_s.len(), restore_s.len());
    let workers = workers.max(1);
    let mut worker_free = vec![0.0f64; workers];
    let mut wire_free = 0.0f64;
    let mut restore_free = 0.0f64;
    for i in 0..collect_s.len() {
        let w = (0..workers)
            .min_by(|a, b| worker_free[*a].total_cmp(&worker_free[*b]))
            .unwrap();
        let encoded = worker_free[w] + collect_s[i];
        worker_free[w] = encoded;
        // FIFO wire: chunks transmit in sequence order.
        wire_free = encoded.max(wire_free) + tx_s[i];
        restore_free = wire_free.max(restore_free) + restore_s[i];
    }
    restore_free
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_codec::Value;

    fn sample_state(nodes: usize, payload: usize) -> ProcessState {
        let exec = ExecState::at_entry()
            .enter("kernelMG")
            .with_local("iter", Value::U64(7));
        let mut mem = MemoryGraph::new();
        let ids: Vec<_> = (0..nodes)
            .map(|i| mem.add_node(Value::F64Array(vec![i as f64 * 0.5; payload])))
            .collect();
        for w in ids.windows(2) {
            mem.add_edge(w[0], 0, w[1]);
        }
        if nodes > 1 {
            mem.add_edge(ids[nodes - 1], 1, ids[0]); // cycle
        }
        ProcessState::new(exec, mem)
    }

    fn restore_via_chunks(chunks: &[StateChunk], summary: &ChunkStreamSummary) -> ProcessState {
        let mut r = ChunkedRestorer::new();
        for c in chunks {
            r.push(c.seq, c.checksum, &c.bytes).unwrap();
        }
        r.finish(summary.digest, summary.chunks, summary.total_bytes as u64)
            .unwrap()
    }

    #[test]
    fn plan_respects_bounds_and_covers_all() {
        let hints = [100usize, 200, 50, 50, 50, 900, 10];
        let groups = plan_chunks(&hints, 300);
        let mut covered = 0usize;
        for g in &groups {
            assert_eq!(g.start, covered, "contiguous");
            covered = g.end;
            let sz: usize = hints[g.clone()].iter().sum();
            // Oversized single nodes are allowed; multi-node groups are
            // bounded.
            assert!(g.len() == 1 || sz <= 300, "{g:?} = {sz}");
        }
        assert_eq!(covered, hints.len());
    }

    #[test]
    fn chunk_concat_equals_monolithic_body() {
        let s = sample_state(40, 64);
        for workers in [1usize, 4] {
            for chunk_bytes in [1usize, 4096, usize::MAX] {
                let cfg = PipelineConfig {
                    chunk_bytes,
                    workers,
                    queue_depth: 2,
                };
                let (chunks, summary) = collect_chunks(&s, &cfg);
                let concat: Vec<u8> = chunks.iter().flat_map(|c| c.bytes.clone()).collect();
                assert_eq!(concat, s.collect_body(), "w={workers} cb={chunk_bytes}");
                assert_eq!(summary.digest, fnv1a(&s.collect_body()));
                assert_eq!(summary.total_bytes, concat.len());
                assert_eq!(summary.chunks as usize, chunks.len());
            }
        }
    }

    #[test]
    fn digest_matches_monolithic_checksum() {
        let s = sample_state(10, 256);
        let (_chunks, summary) = collect_chunks(&s, &PipelineConfig::default());
        let mono = s.collect();
        let stored = u64::from_be_bytes(mono[..8].try_into().unwrap());
        assert_eq!(summary.digest, stored);
    }

    #[test]
    fn chunked_roundtrip_restores_identical_state() {
        let s = sample_state(25, 100);
        for workers in [1usize, 4] {
            for chunk_bytes in [1usize, 4096, usize::MAX] {
                let cfg = PipelineConfig {
                    chunk_bytes,
                    workers,
                    queue_depth: 3,
                };
                let (chunks, summary) = collect_chunks(&s, &cfg);
                if chunk_bytes == 1 {
                    // Whole nodes per chunk: tiny bound → one node each
                    // (plus the header).
                    assert_eq!(chunks.len(), s.memory.len() + 1);
                }
                let back = restore_via_chunks(&chunks, &summary);
                assert_eq!(back.exec, s.exec);
                assert!(back.memory.isomorphic(&s.memory));
            }
        }
    }

    #[test]
    fn empty_state_streams_as_header_only() {
        let s = ProcessState::empty();
        let (chunks, summary) = collect_chunks(&s, &PipelineConfig::default());
        assert_eq!(chunks.len(), 1);
        let back = restore_via_chunks(&chunks, &summary);
        assert!(back.memory.is_empty());
    }

    #[test]
    fn corrupted_chunk_rejected_with_checksum_mismatch() {
        let s = sample_state(8, 64);
        let (mut chunks, _) = collect_chunks(
            &s,
            &PipelineConfig {
                chunk_bytes: 128,
                ..PipelineConfig::default()
            },
        );
        let victim = chunks.len() / 2;
        let mid = chunks[victim].bytes.len() / 2;
        chunks[victim].bytes[mid] ^= 0xff;
        let mut r = ChunkedRestorer::new();
        let mut result = Ok(());
        for c in &chunks {
            result = r.push(c.seq, c.checksum, &c.bytes);
            if result.is_err() {
                break;
            }
        }
        assert!(
            matches!(result, Err(StateError::ChecksumMismatch { .. })),
            "{result:?}"
        );
    }

    #[test]
    fn out_of_order_chunk_rejected() {
        let s = sample_state(8, 64);
        let (chunks, _) = collect_chunks(
            &s,
            &PipelineConfig {
                chunk_bytes: 128,
                ..PipelineConfig::default()
            },
        );
        assert!(chunks.len() > 2);
        let mut r = ChunkedRestorer::new();
        r.push(chunks[0].seq, chunks[0].checksum, &chunks[0].bytes)
            .unwrap();
        let skipped = r.push(chunks[2].seq, chunks[2].checksum, &chunks[2].bytes);
        assert_eq!(
            skipped,
            Err(StateError::ChunkSequence {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn truncated_stream_rejected_at_finish() {
        let s = sample_state(8, 64);
        let (chunks, summary) = collect_chunks(
            &s,
            &PipelineConfig {
                chunk_bytes: 128,
                ..PipelineConfig::default()
            },
        );
        let mut r = ChunkedRestorer::new();
        for c in &chunks[..chunks.len() - 1] {
            r.push(c.seq, c.checksum, &c.bytes).unwrap();
        }
        // Digest frame claiming fewer chunks than the source produced:
        // the count check alone cannot save us if an attacker also
        // rewrites counts, but then the digest mismatches.
        let err = r
            .finish(
                summary.digest,
                summary.chunks - 1,
                summary.total_bytes as u64,
            )
            .unwrap_err();
        assert!(matches!(err, StateError::DigestMismatch { .. }), "{err:?}");
    }

    #[test]
    fn callback_error_propagates_and_pool_shuts_down() {
        let s = sample_state(64, 64);
        let cfg = PipelineConfig {
            chunk_bytes: 64,
            workers: 4,
            queue_depth: 2,
        };
        let mut seen = 0u32;
        let r: Result<ChunkStreamSummary, &str> = stream_chunks(&s, &cfg, |_c| {
            seen += 1;
            if seen == 3 {
                Err("inbox closed")
            } else {
                Ok(())
            }
        });
        assert_eq!(r, Err("inbox closed"));
        assert_eq!(seen, 3, "no callbacks after the failure");
    }

    #[test]
    fn makespan_pipelined_never_exceeds_serial() {
        let collect: Vec<f64> = (1..20).map(|i| 0.01 * i as f64).collect();
        let tx: Vec<f64> = (1..20).map(|i| 0.02 * ((i * 7) % 5 + 1) as f64).collect();
        let restore: Vec<f64> = (1..20).map(|i| 0.008 * i as f64).collect();
        let serial: f64 =
            collect.iter().sum::<f64>() + tx.iter().sum::<f64>() + restore.iter().sum::<f64>();
        for workers in [1usize, 2, 4, 8] {
            let m = pipelined_makespan(&collect, &tx, &restore, workers);
            assert!(m <= serial + 1e-9, "workers={workers}: {m} vs {serial}");
        }
    }

    /// The ISSUE acceptance property: on a bandwidth-limited link the
    /// pipelined modeled total beats the serial sum with ≥4 workers.
    #[test]
    fn makespan_beats_serial_on_bandwidth_limited_link() {
        // 7.5 MB in 256 KiB chunks; paper-calibrated collect/restore
        // throughputs, 10 Mbit/s wire (Table 2's Ethernet).
        let n = 30usize;
        let chunk = 256.0 * 1024.0;
        let collect: Vec<f64> = vec![chunk / (7_500_000.0 / 0.73); n];
        let tx: Vec<f64> = vec![chunk * 8.0 / 10_000_000.0; n];
        let restore: Vec<f64> = vec![chunk / (7_500_000.0 / 0.6794); n];
        let serial: f64 =
            collect.iter().sum::<f64>() + tx.iter().sum::<f64>() + restore.iter().sum::<f64>();
        let pipelined = pipelined_makespan(&collect, &tx, &restore, 4);
        assert!(
            pipelined < serial,
            "pipelined {pipelined} should beat serial {serial}"
        );
        // Tx dominates on a slow wire; the pipeline should approach the
        // tx-bound lower bound, not just nibble at the serial sum.
        let tx_total: f64 = tx.iter().sum();
        assert!(pipelined < tx_total + collect[0] + restore.iter().sum::<f64>());
    }

    #[test]
    fn more_workers_never_slow_the_schedule() {
        let collect: Vec<f64> = vec![0.05; 16];
        let tx: Vec<f64> = vec![0.01; 16];
        let restore: Vec<f64> = vec![0.01; 16];
        let m1 = pipelined_makespan(&collect, &tx, &restore, 1);
        let m4 = pipelined_makespan(&collect, &tx, &restore, 4);
        assert!(m4 <= m1 + 1e-9);
        // Encoder-bound workload: 4 workers should give a real speedup.
        assert!(m4 < 0.5 * m1, "{m4} vs {m1}");
    }
}
