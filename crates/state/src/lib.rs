//! # snow-state — execution & memory state for heterogeneous migration
//!
//! SNOW splits process state transfer into three problem domains (§1 of
//! the paper): *computation state*, *memory state*, and *communication
//! state*. The communication state is the paper's subject (`snow-core`);
//! the other two are solved in the authors' companion work — compiler-
//! selected poll points for the execution state \[10\] and a graph
//! representation of data structures for the memory state \[11\]. The
//! communication protocol only needs them as an opaque, machine-
//! independent byte stream produced at Fig 5 line 9 and consumed at
//! Fig 7 line 8. This crate is a faithful working stand-in:
//!
//! * [`exec`] — [`exec::ExecState`]: the function-call path to the active
//!   poll point ("main → kernelMG"), the poll-point id, and the live
//!   locals, all as machine-independent values.
//! * [`memory`] — [`memory::MemoryGraph`]: typed heap blocks plus
//!   pointer edges (cycles allowed); encoding relocates pointers to
//!   canonical node indices so they can be re-materialised at different
//!   addresses on the destination machine.
//! * [`snapshot`] — [`snapshot::ProcessState`]: exec + memory bundled
//!   with an integrity checksum; this is the `ExeMemState` payload.
//! * [`cost`] — the collect/transfer/restore cost model calibrated from
//!   Tables 1–2 of the paper (Ultra 5 collects ~7.5 MB in 0.73 s, the
//!   DEC 5000/120 in 5.209 s).
//! * [`pipeline`] — chunked, worker-pool state collection and
//!   incremental restore, so collect/transmit/restore overlap instead of
//!   running strictly serially.

#![warn(missing_docs)]

pub mod cost;
pub mod exec;
pub mod memory;
pub mod pipeline;
pub mod snapshot;

pub use cost::StateCostModel;
pub use exec::ExecState;
pub use memory::{MemoryGraph, NodeId};
pub use pipeline::{
    collect_chunks, pipelined_makespan, stream_chunks, ChunkStreamSummary, ChunkedRestorer,
    PipelineConfig, RestoreTeardown, StateChunk,
};
pub use snapshot::{fnv1a, fnv1a_with_seed, ProcessState, StateError, FNV_OFFSET};
