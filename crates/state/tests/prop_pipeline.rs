//! Property tests on the chunked state-transfer pipeline: for any
//! state, any chunk size and any worker count, the chunk stream must
//! reassemble to the identical `ProcessState` and carry the identical
//! whole-state digest as the monolithic encoding.

use proptest::prelude::*;
use snow_codec::Value;
use snow_state::{
    collect_chunks, fnv1a, ChunkedRestorer, ExecState, MemoryGraph, PipelineConfig, ProcessState,
    StateError,
};

fn arb_payload() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        "[a-z]{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<f64>(), 0..16).prop_map(Value::F64Array),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ]
}

fn arb_graph() -> impl Strategy<Value = MemoryGraph> {
    (1usize..24)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(arb_payload(), n..=n),
                proptest::collection::vec((0..n, 0u32..4, 0..n), 0..3 * n),
            )
        })
        .prop_map(|(payloads, edges)| {
            let mut g = MemoryGraph::new();
            let ids: Vec<_> = payloads.into_iter().map(|p| g.add_node(p)).collect();
            for (from, slot, to) in edges {
                g.add_edge(ids[from], slot, ids[to]);
            }
            g
        })
}

fn arb_exec() -> impl Strategy<Value = ExecState> {
    (
        proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_]{0,10}", 1..5),
        any::<u32>(),
        proptest::collection::vec(("[a-z]{1,8}", arb_payload()), 0..6),
    )
        .prop_map(|(call_path, poll_point, locals)| ExecState {
            call_path,
            poll_point,
            locals,
        })
}

/// Chunk size 1 B (one node per chunk), a mid-size bound, and "whole
/// state in one chunk" — crossed with 1 and 4 workers.
const CHUNK_SIZES: [usize; 3] = [1, 4096, usize::MAX];
const WORKER_COUNTS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_roundtrip_matches_monolithic(e in arb_exec(), g in arb_graph()) {
        let s = ProcessState::new(e, g);
        let mono = s.collect();
        let mono_digest = u64::from_be_bytes(mono[..8].try_into().unwrap());
        let mono_restored = ProcessState::restore(&mono).unwrap();

        for chunk_bytes in CHUNK_SIZES {
            for workers in WORKER_COUNTS {
                let cfg = PipelineConfig { chunk_bytes, workers, queue_depth: 2 };
                let (chunks, summary) = collect_chunks(&s, &cfg);

                // The stream digest IS the monolithic checksum.
                prop_assert_eq!(
                    summary.digest, mono_digest,
                    "digest differs (cb={}, w={})", chunk_bytes, workers
                );
                // The concatenated chunks ARE the monolithic body.
                let concat: Vec<u8> =
                    chunks.iter().flat_map(|c| c.bytes.iter().copied()).collect();
                prop_assert_eq!(&concat[..], &mono[8..]);

                // Incremental restore produces the identical state.
                let mut r = ChunkedRestorer::new();
                for c in &chunks {
                    r.push(c.seq, c.checksum, &c.bytes).unwrap();
                }
                let back = r
                    .finish(summary.digest, summary.chunks, summary.total_bytes as u64)
                    .unwrap();
                prop_assert_eq!(&back.exec, &mono_restored.exec);
                prop_assert!(back.memory.isomorphic(&mono_restored.memory));
                // And re-collecting it is canonical.
                prop_assert_eq!(back.collect(), mono.clone());
            }
        }
    }

    #[test]
    fn chunk_corruption_always_detected(
        e in arb_exec(),
        g in arb_graph(),
        flip_seed in any::<u64>(),
    ) {
        let s = ProcessState::new(e, g);
        let cfg = PipelineConfig { chunk_bytes: 64, workers: 1, queue_depth: 2 };
        let (mut chunks, summary) = collect_chunks(&s, &cfg);
        let victim = (flip_seed as usize) % chunks.len();
        if chunks[victim].bytes.is_empty() {
            return Ok(());
        }
        let idx = (flip_seed as usize / 7) % chunks[victim].bytes.len();
        chunks[victim].bytes[idx] ^= 1u8 << (flip_seed % 8);

        let mut r = ChunkedRestorer::new();
        let mut outcome = Ok(());
        for c in &chunks {
            outcome = r.push(c.seq, c.checksum, &c.bytes);
            if outcome.is_err() {
                break;
            }
        }
        // The per-chunk checksum must catch the flip on the victim chunk
        // itself — never decode past it.
        prop_assert!(
            matches!(outcome, Err(StateError::ChecksumMismatch { .. })),
            "flip in chunk {} not caught: {:?}", victim, outcome
        );
        let _ = summary;
    }

    #[test]
    fn digest_frame_tampering_detected(e in arb_exec(), g in arb_graph(), delta in 1u64..u64::MAX) {
        let s = ProcessState::new(e, g);
        let cfg = PipelineConfig { chunk_bytes: 128, workers: 1, queue_depth: 2 };
        let (chunks, summary) = collect_chunks(&s, &cfg);
        let mut r = ChunkedRestorer::new();
        for c in &chunks {
            r.push(c.seq, c.checksum, &c.bytes).unwrap();
        }
        let bad = summary.digest.wrapping_add(delta);
        let err = r
            .finish(bad, summary.chunks, summary.total_bytes as u64)
            .unwrap_err();
        prop_assert!(matches!(err, StateError::DigestMismatch { .. }), "{:?}", err);
    }

    #[test]
    fn stream_digest_equals_fnv_of_body(e in arb_exec(), g in arb_graph()) {
        let s = ProcessState::new(e, g);
        let (_, summary) = collect_chunks(&s, &PipelineConfig::default());
        prop_assert_eq!(summary.digest, fnv1a(&s.collect_body()));
    }
}
