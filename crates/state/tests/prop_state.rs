//! Property tests on state capture/restore invariants.

use proptest::prelude::*;
use snow_codec::Value;
use snow_state::{ExecState, MemoryGraph, ProcessState};

fn arb_payload() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        "[a-z]{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<f64>(), 0..16).prop_map(Value::F64Array),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ]
}

/// A random graph: N nodes, then random edges among them (cycles and
/// sharing allowed by construction).
fn arb_graph() -> impl Strategy<Value = MemoryGraph> {
    (1usize..24)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(arb_payload(), n..=n),
                proptest::collection::vec((0..n, 0u32..4, 0..n), 0..3 * n),
            )
        })
        .prop_map(|(payloads, edges)| {
            let mut g = MemoryGraph::new();
            let ids: Vec<_> = payloads.into_iter().map(|p| g.add_node(p)).collect();
            for (from, slot, to) in edges {
                g.add_edge(ids[from], slot, ids[to]);
            }
            g
        })
}

fn arb_exec() -> impl Strategy<Value = ExecState> {
    (
        proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_]{0,10}", 1..5),
        any::<u32>(),
        proptest::collection::vec(("[a-z]{1,8}", arb_payload()), 0..6),
    )
        .prop_map(|(call_path, poll_point, locals)| ExecState {
            call_path,
            poll_point,
            locals,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn memory_graph_roundtrips(g in arb_graph()) {
        let back = MemoryGraph::decode(&g.encode()).unwrap();
        prop_assert!(g.isomorphic(&back));
    }

    #[test]
    fn exec_state_roundtrips(e in arb_exec()) {
        // NaN-free payloads only would be needed for eq; filter via bits:
        // encode→decode→encode must be a fixed point regardless.
        let once = e.encode();
        let back = ExecState::decode(&once).unwrap();
        prop_assert_eq!(back.encode(), once);
    }

    #[test]
    fn process_state_roundtrips(e in arb_exec(), g in arb_graph()) {
        let s = ProcessState::new(e, g);
        let bytes = s.collect();
        let back = ProcessState::restore(&bytes).unwrap();
        prop_assert!(back.memory.isomorphic(&s.memory));
        prop_assert_eq!(back.collect(), bytes, "collect is canonical");
    }

    #[test]
    fn single_bitflip_never_restores_silently(
        e in arb_exec(),
        g in arb_graph(),
        flip_seed in any::<u64>(),
    ) {
        let s = ProcessState::new(e, g);
        let mut bytes = s.collect();
        let idx = (flip_seed as usize) % bytes.len();
        let bit = 1u8 << (flip_seed % 8);
        bytes[idx] ^= bit;
        // Either an error is reported, or (for flips inside ignored
        // regions — there are none in this format) the restore equals the
        // original. Silent *different* state is the disaster case.
        match ProcessState::restore(&bytes) {
            Err(_) => {}
            Ok(back) => prop_assert!(back.memory.isomorphic(&s.memory)),
        }
    }

    #[test]
    fn restore_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ProcessState::restore(&bytes);
    }
}
