//! # snow-baselines — the §7 comparator systems
//!
//! The paper argues (qualitatively) that SNOW's communication-state
//! transfer beats the approaches used by contemporary systems. To turn
//! those arguments into measurable ablations, this crate implements the
//! three competing mechanisms as working mini-systems on the same
//! substrate primitives:
//!
//! * [`forwarding`] — **message forwarding** (Mach, tmPVM, MPVM
//!   indirect mode): the source host keeps a forwarder that relays
//!   traffic to the migrated process. Cheap migration, but every later
//!   message pays extra hops and the old host can never go away
//!   (*residual dependency*).
//! * [`broadcast`] — **broadcast + blocking** (ChaRM, Dynamite): the
//!   new location is broadcast to every process/host and senders block
//!   (buffer) traffic to the migrating process for the duration. No
//!   forwarding, but O(N) control messages per migration and sender-side
//!   stalls.
//! * [`cocheck`] — **coordinated checkpointing** (CoCheck, built on
//!   Chandy–Lamport \[28\]): snapshot *every* process, kill the migrating
//!   one, restart it from the checkpoint elsewhere. Correct, but all N
//!   processes are disturbed and O(N²) marker messages cross the mesh.
//!
//! Each module exposes a runnable demo returning a [`Metrics`] record;
//! `snow_reference_metrics` gives the corresponding analytic costs of
//! the SNOW protocol for the same scenario, so benches can print
//! side-by-side tables (experiment ids A1/A2 in DESIGN.md).

#![warn(missing_docs)]

pub mod broadcast;
pub mod cocheck;
pub mod forwarding;

/// Comparable costs of one migration under a given strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Control messages spent coordinating the migration (markers,
    /// broadcasts, acks, scheduler traffic).
    pub coordination_msgs: u64,
    /// Processes interrupted by the migration (including the migrant).
    pub processes_disturbed: u64,
    /// Extra per-message hops paid by traffic sent to the migrated
    /// process *after* migration (forwarding chains).
    pub post_migration_extra_hops: f64,
    /// Application messages delayed/buffered during the migration.
    pub blocked_messages: u64,
    /// Does correctness still depend on the source host after the
    /// migration committed?
    pub residual_dependency: bool,
    /// Bytes of process state moved (all processes for checkpointing
    /// schemes, one process for direct schemes).
    pub state_bytes_moved: u64,
}

/// One scheduled message of an offered-load trace: the open-loop
/// generator decides *when* traffic should exist independently of how
/// the system under test copes, so a stall shows up as latency instead
/// of silently thinning the load (see `snow_bench::workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offered {
    /// Scheduled emission time, nanoseconds after the run epoch.
    pub at_ns: u64,
    /// Payload size, bytes.
    pub bytes: u32,
}

/// Service-latency samples (nanoseconds) from one load run, sliced by
/// migration phase the same way `snow_bench::workload` slices its
/// histograms, so the §7 strategies are comparable point for point.
#[derive(Debug, Clone, Default)]
pub struct LoadSamples {
    /// Latencies of messages delivered before the migration window.
    pub pre: Vec<u64>,
    /// Latencies of messages delivered inside the migration window.
    pub during: Vec<u64>,
    /// Latencies of messages delivered after the migration window.
    pub post: Vec<u64>,
}

impl LoadSamples {
    /// Record one sample into the phase bucket for `now_ns`, given the
    /// migration window `[win_start, win_end]`.
    pub fn push_at(&mut self, now_ns: u64, win_start: u64, win_end: u64, latency_ns: u64) {
        if now_ns < win_start {
            self.pre.push(latency_ns);
        } else if now_ns <= win_end {
            self.during.push(latency_ns);
        } else {
            self.post.push(latency_ns);
        }
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: LoadSamples) {
        self.pre.extend(other.pre);
        self.during.extend(other.during);
        self.post.extend(other.post);
    }

    /// Total samples across all phases.
    pub fn total(&self) -> usize {
        self.pre.len() + self.during.len() + self.post.len()
    }

    /// The `q`-quantile (0..=1) of one phase's samples, microseconds.
    /// `None` when the phase is empty.
    pub fn quantile_us(samples: &[u64], q: f64) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let idx = ((q.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
        Some(v[idx] as f64 / 1_000.0)
    }
}

/// Analytic SNOW costs for a migration with `connected_peers` open
/// connections and `state_bytes` of exe+mem state (per §3: the protocol
/// coordinates *only* directly connected processes; location updates are
/// on-demand; no forwarding; no blocking).
pub fn snow_reference_metrics(connected_peers: u64, state_bytes: u64) -> Metrics {
    Metrics {
        // Per peer: disconnection signal + peer_migrating marker +
        // end_of_messages back; plus 4 scheduler handshake messages
        // (start/new-vmid, restore/PL) and the commit.
        coordination_msgs: 3 * connected_peers + 5,
        processes_disturbed: connected_peers + 1,
        post_migration_extra_hops: 0.0,
        blocked_messages: 0,
        residual_dependency: false,
        state_bytes_moved: state_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snow_scales_with_connectivity_not_world_size() {
        let sparse = snow_reference_metrics(2, 1000);
        let dense = snow_reference_metrics(7, 1000);
        assert!(sparse.coordination_msgs < dense.coordination_msgs);
        assert_eq!(sparse.processes_disturbed, 3);
        assert!(!sparse.residual_dependency);
        assert_eq!(sparse.post_migration_extra_hops, 0.0);
    }
}
