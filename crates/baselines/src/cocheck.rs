//! Coordinated checkpointing migration (CoCheck on Chandy–Lamport).
//!
//! §7: CoCheck migrates by intentionally "crashing" a process and
//! restarting it from the last *globally consistent* checkpoint, built
//! with Chandy & Lamport's snapshot algorithm \[28\]. The price the paper
//! calls out: "coordination of all processes that are directly or
//! indirectly connected to the migrating process, and blocking off
//! communication among these processes during checkpointing".
//!
//! This module is a working Chandy–Lamport snapshot over a full message
//! mesh, plus the CoCheck-style migration driver on top. Every process
//! records its state; markers flood every channel (N·(N−1) of them);
//! the migrating process is then restarted from its recorded state.

use crate::{LoadSamples, Metrics, Offered};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Traffic on a mesh channel: application payloads or snapshot markers.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Application payload.
    App(u64),
    /// Chandy–Lamport marker.
    Marker,
}

/// One process's recorded snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalSnapshot {
    /// Local state: the application counter value at recording time.
    pub state: u64,
    /// In-transit messages recorded per inbound channel.
    pub channel_state: HashMap<usize, Vec<u64>>,
    /// Markers this process received.
    pub markers_seen: u64,
}

struct Proc {
    rank: usize,
    n: usize,
    txs: Vec<Sender<(usize, Msg)>>,
    rx: Receiver<(usize, Msg)>,
    counter: u64,
    recording: bool,
    /// Channels (by source) that have delivered their marker.
    marker_from: Vec<bool>,
    snap: LocalSnapshot,
}

impl Proc {
    fn send_app(&mut self, to: usize, v: u64) {
        let _ = self.txs[to].send((self.rank, Msg::App(v)));
    }

    fn begin_snapshot(&mut self) {
        // Record local state, then flood markers on every outgoing
        // channel (the CL rule).
        self.recording = true;
        self.snap.state = self.counter;
        for to in 0..self.n {
            if to != self.rank {
                let _ = self.txs[to].send((self.rank, Msg::Marker));
            }
        }
    }

    /// Run until the snapshot is complete (a marker received on every
    /// inbound channel), processing application traffic along the way.
    fn run_until_snapshot_done(&mut self) -> LocalSnapshot {
        while !self
            .marker_from
            .iter()
            .enumerate()
            .all(|(s, done)| s == self.rank || *done)
        {
            let (from, msg) = self.rx.recv().expect("mesh peers alive");
            match msg {
                Msg::Marker => {
                    self.snap.markers_seen += 1;
                    if !self.recording {
                        self.begin_snapshot();
                    }
                    self.marker_from[from] = true;
                }
                Msg::App(v) => {
                    self.counter = self.counter.wrapping_add(v);
                    if self.recording && !self.marker_from[from] {
                        // In-transit on this channel: part of the
                        // channel state.
                        self.snap.channel_state.entry(from).or_default().push(v);
                    }
                }
            }
        }
        self.snap.clone()
    }
}

/// Result of one CoCheck-style migration.
#[derive(Debug)]
pub struct CocheckOutcome {
    /// Every process's snapshot (globally consistent cut).
    pub snapshots: Vec<LocalSnapshot>,
    /// The migrated process's restored state (== its snapshot state
    /// plus replayed channel messages).
    pub restored_state: u64,
    /// Comparable metrics.
    pub metrics: Metrics,
}

/// Run a mesh of `n` processes exchanging a burst of application
/// traffic, take a coordinated snapshot initiated by `migrant`, and
/// "restart" the migrant from its checkpoint (CoCheck migration).
/// `state_bytes` models each process's checkpoint size.
pub fn run_cocheck_migration(
    n: usize,
    traffic: u64,
    migrant: usize,
    state_bytes: u64,
) -> CocheckOutcome {
    assert!(n >= 2 && migrant < n);
    let mut txs: Vec<Sender<(usize, Msg)>> = Vec::new();
    let mut rxs: Vec<Receiver<(usize, Msg)>> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut joins = Vec::new();
    for (rank, rx) in rxs.into_iter().enumerate() {
        let txs = txs.clone();
        joins.push(thread::spawn(move || {
            let mut p = Proc {
                rank,
                n,
                txs,
                rx,
                counter: 0,
                recording: false,
                marker_from: vec![false; n],
                snap: LocalSnapshot::default(),
            };
            // A burst of app traffic to the right neighbour before the
            // snapshot starts.
            for i in 0..traffic {
                p.send_app((rank + 1) % n, i + 1);
            }
            if rank == migrant {
                p.begin_snapshot();
            }
            p.run_until_snapshot_done()
        }));
    }
    drop(txs);
    let snapshots: Vec<LocalSnapshot> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    // Restart the migrant from its checkpoint: local state + replay of
    // recorded channel state.
    let mig_snap = &snapshots[migrant];
    let replayed: u64 = mig_snap.channel_state.values().flat_map(|v| v.iter()).sum();
    let restored_state = mig_snap.state.wrapping_add(replayed);

    let marker_count: u64 = snapshots.iter().map(|s| s.markers_seen).sum();
    CocheckOutcome {
        metrics: Metrics {
            coordination_msgs: marker_count,
            processes_disturbed: n as u64,
            post_migration_extra_hops: 0.0,
            blocked_messages: 0,
            residual_dependency: false,
            // Consistent-cut restart conservatively stores everyone's
            // checkpoint (that is what makes CoCheck a fault-tolerance
            // system first, §7).
            state_bytes_moved: state_bytes * n as u64,
        },
        restored_state,
        snapshots,
    }
}

/// Drive a CoCheck-style migration under an open-loop offered load:
/// `n = schedules.len()` processes in a ring (proc `r` paces
/// `schedules[r]` to its right neighbour, payload = the scheduled
/// nanosecond stamp), a Chandy–Lamport snapshot initiated by proc 0 at
/// `snapshot_at_ns`, and a `restart` stall while the migrant restores
/// from its checkpoint. While a process is recording it defers its
/// application sends — the paper's "blocking off communication among
/// these processes during checkpointing" — so *every* process's traffic
/// eats the snapshot window, not just the migrant's. Returns comparable
/// [`Metrics`] plus phase-sliced service latencies.
pub fn run_cocheck_load(
    schedules: &[Vec<Offered>],
    snapshot_at_ns: u64,
    restart: Duration,
    state_bytes: u64,
) -> (Metrics, LoadSamples) {
    let n = schedules.len();
    assert!(n >= 2, "the mesh needs at least two processes");
    let epoch = Instant::now();
    // End of the global disturbance window: set once, by the migrant,
    // after its restart completes. MAX means "still inside".
    let win_end = Arc::new(AtomicU64::new(u64::MAX));

    let mut txs: Vec<Sender<(usize, Msg)>> = Vec::new();
    let mut rxs: Vec<Receiver<(usize, Msg)>> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut joins = Vec::new();
    for (rank, rx) in rxs.into_iter().enumerate() {
        let txs = txs.clone();
        let sched = schedules[rank].clone();
        let expected = schedules[(rank + n - 1) % n].len() as u64;
        let win_end = Arc::clone(&win_end);
        joins.push(thread::spawn(move || {
            let right = (rank + 1) % n;
            let mut marker_from = vec![false; n];
            let mut recording = false;
            let mut snapshot_done = false;
            let mut markers_seen = 0u64;
            let mut deferred = 0u64;
            let mut next = 0usize;
            let mut first_deferral_of_next = true;
            let mut recvd = 0u64;
            let mut samples = LoadSamples::default();
            let begin = |marker_from: &mut [bool], txs: &[Sender<(usize, Msg)>]| {
                marker_from[rank] = true;
                for (to, tx) in txs.iter().enumerate() {
                    if to != rank {
                        let _ = tx.send((rank, Msg::Marker));
                    }
                }
            };
            while next < sched.len() || recvd < expected || !snapshot_done {
                let now = epoch.elapsed().as_nanos() as u64;
                let mut progressed = false;
                if rank == 0 && !recording && !snapshot_done && now >= snapshot_at_ns {
                    recording = true;
                    begin(&mut marker_from, &txs);
                    progressed = true;
                }
                while let Ok((from, msg)) = rx.try_recv() {
                    progressed = true;
                    match msg {
                        Msg::Marker => {
                            markers_seen += 1;
                            if !recording && !snapshot_done {
                                recording = true;
                                begin(&mut marker_from, &txs);
                            }
                            marker_from[from] = true;
                            if marker_from.iter().all(|&d| d) {
                                recording = false;
                                snapshot_done = true;
                                if rank == 0 {
                                    // Restart from the checkpoint at the
                                    // new location: the migrant is down
                                    // for the restore.
                                    thread::sleep(restart);
                                    win_end.store(
                                        epoch.elapsed().as_nanos() as u64,
                                        Ordering::Release,
                                    );
                                }
                            }
                        }
                        Msg::App(sched_ns) => {
                            let now = epoch.elapsed().as_nanos() as u64;
                            samples.push_at(
                                now,
                                snapshot_at_ns,
                                win_end.load(Ordering::Acquire),
                                now.saturating_sub(sched_ns),
                            );
                            recvd += 1;
                        }
                    }
                }
                if next < sched.len() && now >= sched[next].at_ns {
                    // Communication is blocked off for the whole
                    // checkpoint: from this process's recording point
                    // until the migrant has restarted from the
                    // consistent cut (win_end set).
                    let blocked_off =
                        recording || (snapshot_done && win_end.load(Ordering::Acquire) == u64::MAX);
                    if blocked_off {
                        if first_deferral_of_next {
                            deferred += 1;
                            first_deferral_of_next = false;
                        }
                    } else {
                        let _ = txs[right].send((rank, Msg::App(sched[next].at_ns)));
                        next += 1;
                        first_deferral_of_next = true;
                        progressed = true;
                    }
                }
                if !progressed {
                    thread::yield_now();
                }
            }
            (samples, markers_seen, deferred)
        }));
    }
    drop(txs);

    let mut samples = LoadSamples::default();
    let mut markers = 0u64;
    let mut blocked = 0u64;
    for j in joins {
        let (s, m, d) = j.join().unwrap();
        samples.merge(s);
        markers += m;
        blocked += d;
    }
    (
        Metrics {
            coordination_msgs: markers,
            processes_disturbed: n as u64,
            post_migration_extra_hops: 0.0,
            blocked_messages: blocked,
            residual_dependency: false,
            // Consistent-cut restart stores everyone's checkpoint.
            state_bytes_moved: state_bytes * n as u64,
        },
        samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_count_is_n_squared_ish() {
        // Every process sends a marker on every outgoing channel:
        // N·(N−1) markers total.
        for n in [2usize, 4, 6] {
            let out = run_cocheck_migration(n, 5, 0, 100);
            assert_eq!(out.metrics.coordination_msgs, (n * (n - 1)) as u64);
            assert_eq!(out.metrics.processes_disturbed, n as u64);
        }
    }

    #[test]
    fn snapshot_is_consistent() {
        // The global invariant: the sum of recorded states plus recorded
        // in-channel messages equals the traffic actually injected by
        // processes before their recording points. We check the weaker
        // but sufficient property that the restored migrant equals its
        // live final counter (all inbound traffic either reached the
        // counter before recording or sits in the channel state).
        let n = 4;
        let traffic = 10u64;
        let out = run_cocheck_migration(n, traffic, 1, 64);
        let expected: u64 = (1..=traffic).sum();
        // Each process receives exactly `traffic` messages from its left
        // neighbour; after the snapshot completes, state+channel must
        // account for all of them.
        assert_eq!(out.restored_state, expected);
    }

    #[test]
    fn state_moved_scales_with_world_size() {
        let small = run_cocheck_migration(2, 3, 0, 1000);
        let large = run_cocheck_migration(6, 3, 0, 1000);
        assert_eq!(small.metrics.state_bytes_moved, 2000);
        assert_eq!(large.metrics.state_bytes_moved, 6000);
    }

    #[test]
    fn all_processes_record() {
        let out = run_cocheck_migration(5, 2, 3, 10);
        assert_eq!(out.snapshots.len(), 5);
        for s in &out.snapshots {
            assert_eq!(s.markers_seen, 4, "one marker per inbound channel");
        }
    }

    fn uniform(n: u64, span_ns: u64) -> Vec<Offered> {
        (0..n)
            .map(|i| Offered {
                at_ns: i * span_ns / n,
                bytes: 64,
            })
            .collect()
    }

    #[test]
    fn load_run_disturbs_everyone_with_quadratic_markers() {
        // Five processes, snapshot a third of the way in, 4 ms restart:
        // the marker flood is N·(N−1) and the disturbance is global —
        // every process's during-phase traffic eats the stall, not just
        // the migrant's.
        let n = 5usize;
        let schedules: Vec<Vec<Offered>> = (0..n).map(|_| uniform(90, 30_000_000)).collect();
        let (m, s) = run_cocheck_load(&schedules, 10_000_000, Duration::from_millis(4), 512);
        assert_eq!(m.coordination_msgs, (n * (n - 1)) as u64, "O(N²) markers");
        assert_eq!(m.processes_disturbed, n as u64, "all N disturbed");
        assert_eq!(m.state_bytes_moved, 512 * n as u64, "everyone checkpoints");
        assert_eq!(s.total(), n * 90, "no loss across the restart");
        assert!(!s.pre.is_empty(), "steady state before the snapshot");
        assert!(!s.post.is_empty(), "traffic resumes after the restart");
        assert!(
            m.blocked_messages > 0,
            "sends due inside the recording window must be deferred"
        );
    }

    #[test]
    fn load_run_restart_stall_shows_in_the_window() {
        let n = 3usize;
        let schedules: Vec<Vec<Offered>> = (0..n).map(|_| uniform(80, 24_000_000)).collect();
        let (_, s) = run_cocheck_load(&schedules, 8_000_000, Duration::from_millis(6), 0);
        let pre_p50 = LoadSamples::quantile_us(&s.pre, 0.5).expect("pre samples");
        // The worst sample anywhere at/after the snapshot must carry
        // the checkpoint+restart stall.
        let worst = s
            .during
            .iter()
            .chain(s.post.iter())
            .copied()
            .max()
            .expect("samples at or after the snapshot") as f64
            / 1_000.0;
        assert!(
            worst > pre_p50 + 3_000.0,
            "global stall must show up: pre p50 {pre_p50}, worst later {worst}"
        );
    }
}
