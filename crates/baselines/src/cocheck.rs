//! Coordinated checkpointing migration (CoCheck on Chandy–Lamport).
//!
//! §7: CoCheck migrates by intentionally "crashing" a process and
//! restarting it from the last *globally consistent* checkpoint, built
//! with Chandy & Lamport's snapshot algorithm \[28\]. The price the paper
//! calls out: "coordination of all processes that are directly or
//! indirectly connected to the migrating process, and blocking off
//! communication among these processes during checkpointing".
//!
//! This module is a working Chandy–Lamport snapshot over a full message
//! mesh, plus the CoCheck-style migration driver on top. Every process
//! records its state; markers flood every channel (N·(N−1) of them);
//! the migrating process is then restarted from its recorded state.

use crate::Metrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread;

/// Traffic on a mesh channel: application payloads or snapshot markers.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Application payload.
    App(u64),
    /// Chandy–Lamport marker.
    Marker,
}

/// One process's recorded snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalSnapshot {
    /// Local state: the application counter value at recording time.
    pub state: u64,
    /// In-transit messages recorded per inbound channel.
    pub channel_state: HashMap<usize, Vec<u64>>,
    /// Markers this process received.
    pub markers_seen: u64,
}

struct Proc {
    rank: usize,
    n: usize,
    txs: Vec<Sender<(usize, Msg)>>,
    rx: Receiver<(usize, Msg)>,
    counter: u64,
    recording: bool,
    /// Channels (by source) that have delivered their marker.
    marker_from: Vec<bool>,
    snap: LocalSnapshot,
}

impl Proc {
    fn send_app(&mut self, to: usize, v: u64) {
        let _ = self.txs[to].send((self.rank, Msg::App(v)));
    }

    fn begin_snapshot(&mut self) {
        // Record local state, then flood markers on every outgoing
        // channel (the CL rule).
        self.recording = true;
        self.snap.state = self.counter;
        for to in 0..self.n {
            if to != self.rank {
                let _ = self.txs[to].send((self.rank, Msg::Marker));
            }
        }
    }

    /// Run until the snapshot is complete (a marker received on every
    /// inbound channel), processing application traffic along the way.
    fn run_until_snapshot_done(&mut self) -> LocalSnapshot {
        while !self
            .marker_from
            .iter()
            .enumerate()
            .all(|(s, done)| s == self.rank || *done)
        {
            let (from, msg) = self.rx.recv().expect("mesh peers alive");
            match msg {
                Msg::Marker => {
                    self.snap.markers_seen += 1;
                    if !self.recording {
                        self.begin_snapshot();
                    }
                    self.marker_from[from] = true;
                }
                Msg::App(v) => {
                    self.counter = self.counter.wrapping_add(v);
                    if self.recording && !self.marker_from[from] {
                        // In-transit on this channel: part of the
                        // channel state.
                        self.snap.channel_state.entry(from).or_default().push(v);
                    }
                }
            }
        }
        self.snap.clone()
    }
}

/// Result of one CoCheck-style migration.
#[derive(Debug)]
pub struct CocheckOutcome {
    /// Every process's snapshot (globally consistent cut).
    pub snapshots: Vec<LocalSnapshot>,
    /// The migrated process's restored state (== its snapshot state
    /// plus replayed channel messages).
    pub restored_state: u64,
    /// Comparable metrics.
    pub metrics: Metrics,
}

/// Run a mesh of `n` processes exchanging a burst of application
/// traffic, take a coordinated snapshot initiated by `migrant`, and
/// "restart" the migrant from its checkpoint (CoCheck migration).
/// `state_bytes` models each process's checkpoint size.
pub fn run_cocheck_migration(
    n: usize,
    traffic: u64,
    migrant: usize,
    state_bytes: u64,
) -> CocheckOutcome {
    assert!(n >= 2 && migrant < n);
    let mut txs: Vec<Sender<(usize, Msg)>> = Vec::new();
    let mut rxs: Vec<Receiver<(usize, Msg)>> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut joins = Vec::new();
    for (rank, rx) in rxs.into_iter().enumerate() {
        let txs = txs.clone();
        joins.push(thread::spawn(move || {
            let mut p = Proc {
                rank,
                n,
                txs,
                rx,
                counter: 0,
                recording: false,
                marker_from: vec![false; n],
                snap: LocalSnapshot::default(),
            };
            // A burst of app traffic to the right neighbour before the
            // snapshot starts.
            for i in 0..traffic {
                p.send_app((rank + 1) % n, i + 1);
            }
            if rank == migrant {
                p.begin_snapshot();
            }
            p.run_until_snapshot_done()
        }));
    }
    drop(txs);
    let snapshots: Vec<LocalSnapshot> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    // Restart the migrant from its checkpoint: local state + replay of
    // recorded channel state.
    let mig_snap = &snapshots[migrant];
    let replayed: u64 = mig_snap.channel_state.values().flat_map(|v| v.iter()).sum();
    let restored_state = mig_snap.state.wrapping_add(replayed);

    let marker_count: u64 = snapshots.iter().map(|s| s.markers_seen).sum();
    CocheckOutcome {
        metrics: Metrics {
            coordination_msgs: marker_count,
            processes_disturbed: n as u64,
            post_migration_extra_hops: 0.0,
            blocked_messages: 0,
            residual_dependency: false,
            // Consistent-cut restart conservatively stores everyone's
            // checkpoint (that is what makes CoCheck a fault-tolerance
            // system first, §7).
            state_bytes_moved: state_bytes * n as u64,
        },
        restored_state,
        snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_count_is_n_squared_ish() {
        // Every process sends a marker on every outgoing channel:
        // N·(N−1) markers total.
        for n in [2usize, 4, 6] {
            let out = run_cocheck_migration(n, 5, 0, 100);
            assert_eq!(out.metrics.coordination_msgs, (n * (n - 1)) as u64);
            assert_eq!(out.metrics.processes_disturbed, n as u64);
        }
    }

    #[test]
    fn snapshot_is_consistent() {
        // The global invariant: the sum of recorded states plus recorded
        // in-channel messages equals the traffic actually injected by
        // processes before their recording points. We check the weaker
        // but sufficient property that the restored migrant equals its
        // live final counter (all inbound traffic either reached the
        // counter before recording or sits in the channel state).
        let n = 4;
        let traffic = 10u64;
        let out = run_cocheck_migration(n, traffic, 1, 64);
        let expected: u64 = (1..=traffic).sum();
        // Each process receives exactly `traffic` messages from its left
        // neighbour; after the snapshot completes, state+channel must
        // account for all of them.
        assert_eq!(out.restored_state, expected);
    }

    #[test]
    fn state_moved_scales_with_world_size() {
        let small = run_cocheck_migration(2, 3, 0, 1000);
        let large = run_cocheck_migration(6, 3, 0, 1000);
        assert_eq!(small.metrics.state_bytes_moved, 2000);
        assert_eq!(large.metrics.state_bytes_moved, 6000);
    }

    #[test]
    fn all_processes_record() {
        let out = run_cocheck_migration(5, 2, 3, 10);
        assert_eq!(out.snapshots.len(), 5);
        for s in &out.snapshots {
            assert_eq!(s.markers_seen, 4, "one marker per inbound channel");
        }
    }
}
