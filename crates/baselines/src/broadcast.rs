//! Broadcast + blocking migration (ChaRM / Dynamite).
//!
//! §7: "Dynamite broadcasts new location information of the migrating
//! process to every host in the virtual machine, while ChaRM broadcasts
//! the new location to every other process in a distributed
//! application. … The needs for broadcast mechanisms in these systems
//! severely limit their applicability in a large distributed
//! environment." ChaRM additionally buffers ("delays") messages headed
//! to the migrating process until a second broadcast announces
//! completion.
//!
//! This module implements that scheme: a migration manager freezes
//! senders by broadcast, senders buffer outbound traffic to the
//! migrant, the mailbox moves, and a second broadcast unfreezes and
//! flushes. Control-message count is inherently Θ(N) per migration.

use crate::Metrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;

/// Control traffic of the migration manager.
#[derive(Debug)]
enum Ctl {
    /// Stop sending to the migrant; buffer instead. Ack required.
    Freeze,
    /// New address for the migrant; flush buffers. Ack required.
    Update(Sender<u64>),
}

/// One sender process: emits `msgs` sequence numbers to the migrant,
/// obeying freeze/update broadcasts between messages.
fn sender_thread(
    mut dest: Sender<u64>,
    ctl: Receiver<Ctl>,
    ack: Sender<()>,
    msgs: u64,
    base: u64,
) -> (u64, u64) {
    // Returns (sent, max_buffered).
    let mut buffer: Vec<u64> = Vec::new();
    let mut frozen = false;
    let mut max_buffered = 0u64;
    let mut sent = 0u64;
    for i in 0..msgs {
        // Poll control between application sends.
        while let Ok(c) = ctl.try_recv() {
            match c {
                Ctl::Freeze => {
                    frozen = true;
                    ack.send(()).unwrap();
                }
                Ctl::Update(new_dest) => {
                    dest = new_dest;
                    for m in buffer.drain(..) {
                        let _ = dest.send(m);
                        sent += 1;
                    }
                    frozen = false;
                    ack.send(()).unwrap();
                }
            }
        }
        let m = base + i;
        if frozen {
            buffer.push(m);
            max_buffered = max_buffered.max(buffer.len() as u64);
        } else {
            let _ = dest.send(m);
            sent += 1;
        }
    }
    // Application sends are done, but the process must keep servicing
    // the migration protocol until the manager hangs up — otherwise the
    // freeze/update broadcast would race its exit.
    while let Ok(c) = ctl.recv() {
        match c {
            Ctl::Freeze => {
                frozen = true;
                ack.send(()).unwrap();
            }
            Ctl::Update(new_dest) => {
                dest = new_dest;
                for m in buffer.drain(..) {
                    let _ = dest.send(m);
                    sent += 1;
                }
                frozen = false;
                ack.send(()).unwrap();
            }
        }
    }
    let _ = frozen;
    (sent, max_buffered)
}

/// Outcome of [`run_broadcast_demo`] beyond the common metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// Messages each sender had to buffer at peak.
    pub peak_buffered: u64,
    /// Application messages delivered to the migrant.
    pub delivered: u64,
}

/// Run one ChaRM-style migration among `n_senders` senders, each
/// emitting `msgs_per_sender` messages while the migration happens.
pub fn run_broadcast_demo(n_senders: usize, msgs_per_sender: u64) -> (Metrics, BroadcastOutcome) {
    let (old_tx, old_rx) = unbounded::<u64>();
    let (ack_tx, ack_rx) = unbounded::<()>();
    let mut ctls: Vec<Sender<Ctl>> = Vec::new();
    let mut joins = Vec::new();
    for s in 0..n_senders {
        let (ctl_tx, ctl_rx) = unbounded();
        ctls.push(ctl_tx);
        let dest = old_tx.clone();
        let ack = ack_tx.clone();
        joins.push(thread::spawn(move || {
            sender_thread(dest, ctl_rx, ack, msgs_per_sender, (s as u64) << 32)
        }));
    }
    drop(old_tx);

    let mut control_msgs = 0u64;
    // Phase 1: freeze broadcast + acks (ChaRM's pre-migration signal).
    for c in &ctls {
        c.send(Ctl::Freeze).unwrap();
        control_msgs += 1;
    }
    for _ in &ctls {
        ack_rx.recv().unwrap();
        control_msgs += 1;
    }
    // Migration: move the mailbox.
    let (new_tx, new_rx) = unbounded::<u64>();
    // Phase 2: location-update broadcast + acks, buffers flush.
    for c in &ctls {
        c.send(Ctl::Update(new_tx.clone())).unwrap();
        control_msgs += 1;
    }
    for _ in &ctls {
        ack_rx.recv().unwrap();
        control_msgs += 1;
    }
    drop(new_tx);
    // Hang up the control channels so sender tails observe disconnect.
    drop(ctls);

    let mut peak = 0u64;
    for j in joins {
        let (_sent, buffered) = j.join().unwrap();
        peak = peak.max(buffered);
    }
    // Everything sent pre-freeze sits in the old mailbox and must be
    // drained by the migrant before the move (counted as delivered).
    let delivered = old_rx.try_iter().count() as u64 + new_rx.try_iter().count() as u64;

    (
        Metrics {
            coordination_msgs: control_msgs,
            processes_disturbed: n_senders as u64 + 1,
            post_migration_extra_hops: 0.0,
            blocked_messages: peak,
            residual_dependency: false,
            state_bytes_moved: 0,
        },
        BroadcastOutcome {
            peak_buffered: peak,
            delivered,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_traffic_is_linear_in_world_size() {
        let (m4, _) = run_broadcast_demo(4, 50);
        let (m8, _) = run_broadcast_demo(8, 50);
        assert_eq!(m4.coordination_msgs, 4 * 4);
        assert_eq!(m8.coordination_msgs, 4 * 8);
        assert_eq!(m8.processes_disturbed, 9);
    }

    #[test]
    fn no_message_loss_across_the_move() {
        let (_, out) = run_broadcast_demo(3, 100);
        assert_eq!(out.delivered, 300);
    }

    #[test]
    fn senders_buffer_while_frozen() {
        // With many messages per sender, some sends must land in the
        // frozen window and get buffered.
        let (m, out) = run_broadcast_demo(2, 2000);
        assert_eq!(out.delivered, 4000);
        // Peak buffering is timing-dependent but the window exists; we
        // only assert the accounting is consistent.
        assert_eq!(m.blocked_messages, out.peak_buffered);
    }

    #[test]
    fn single_sender_edge_case() {
        let (m, out) = run_broadcast_demo(1, 10);
        assert_eq!(m.coordination_msgs, 4);
        assert_eq!(out.delivered, 10);
    }
}
