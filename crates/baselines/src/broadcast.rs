//! Broadcast + blocking migration (ChaRM / Dynamite).
//!
//! §7: "Dynamite broadcasts new location information of the migrating
//! process to every host in the virtual machine, while ChaRM broadcasts
//! the new location to every other process in a distributed
//! application. … The needs for broadcast mechanisms in these systems
//! severely limit their applicability in a large distributed
//! environment." ChaRM additionally buffers ("delays") messages headed
//! to the migrating process until a second broadcast announces
//! completion.
//!
//! This module implements that scheme: a migration manager freezes
//! senders by broadcast, senders buffer outbound traffic to the
//! migrant, the mailbox moves, and a second broadcast unfreezes and
//! flushes. Control-message count is inherently Θ(N) per migration.

use crate::{LoadSamples, Metrics, Offered};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;
use std::time::{Duration, Instant};

/// Control traffic of the migration manager.
#[derive(Debug)]
enum Ctl {
    /// Stop sending to the migrant; buffer instead. Ack required.
    Freeze,
    /// New address for the migrant; flush buffers. Ack required.
    Update(Sender<u64>),
}

/// One sender process: emits `msgs` sequence numbers to the migrant,
/// obeying freeze/update broadcasts between messages.
fn sender_thread(
    mut dest: Sender<u64>,
    ctl: Receiver<Ctl>,
    ack: Sender<()>,
    msgs: u64,
    base: u64,
) -> (u64, u64) {
    // Returns (sent, max_buffered).
    let mut buffer: Vec<u64> = Vec::new();
    let mut frozen = false;
    let mut max_buffered = 0u64;
    let mut sent = 0u64;
    for i in 0..msgs {
        // Poll control between application sends.
        while let Ok(c) = ctl.try_recv() {
            match c {
                Ctl::Freeze => {
                    frozen = true;
                    ack.send(()).unwrap();
                }
                Ctl::Update(new_dest) => {
                    dest = new_dest;
                    for m in buffer.drain(..) {
                        let _ = dest.send(m);
                        sent += 1;
                    }
                    frozen = false;
                    ack.send(()).unwrap();
                }
            }
        }
        let m = base + i;
        if frozen {
            buffer.push(m);
            max_buffered = max_buffered.max(buffer.len() as u64);
        } else {
            let _ = dest.send(m);
            sent += 1;
        }
    }
    // Application sends are done, but the process must keep servicing
    // the migration protocol until the manager hangs up — otherwise the
    // freeze/update broadcast would race its exit.
    while let Ok(c) = ctl.recv() {
        match c {
            Ctl::Freeze => {
                frozen = true;
                ack.send(()).unwrap();
            }
            Ctl::Update(new_dest) => {
                dest = new_dest;
                for m in buffer.drain(..) {
                    let _ = dest.send(m);
                    sent += 1;
                }
                frozen = false;
                ack.send(()).unwrap();
            }
        }
    }
    let _ = frozen;
    (sent, max_buffered)
}

/// Outcome of [`run_broadcast_demo`] beyond the common metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// Messages each sender had to buffer at peak.
    pub peak_buffered: u64,
    /// Application messages delivered to the migrant.
    pub delivered: u64,
}

/// Run one ChaRM-style migration among `n_senders` senders, each
/// emitting `msgs_per_sender` messages while the migration happens.
pub fn run_broadcast_demo(n_senders: usize, msgs_per_sender: u64) -> (Metrics, BroadcastOutcome) {
    let (old_tx, old_rx) = unbounded::<u64>();
    let (ack_tx, ack_rx) = unbounded::<()>();
    let mut ctls: Vec<Sender<Ctl>> = Vec::new();
    let mut joins = Vec::new();
    for s in 0..n_senders {
        let (ctl_tx, ctl_rx) = unbounded();
        ctls.push(ctl_tx);
        let dest = old_tx.clone();
        let ack = ack_tx.clone();
        joins.push(thread::spawn(move || {
            sender_thread(dest, ctl_rx, ack, msgs_per_sender, (s as u64) << 32)
        }));
    }
    drop(old_tx);

    let mut control_msgs = 0u64;
    // Phase 1: freeze broadcast + acks (ChaRM's pre-migration signal).
    for c in &ctls {
        c.send(Ctl::Freeze).unwrap();
        control_msgs += 1;
    }
    for _ in &ctls {
        ack_rx.recv().unwrap();
        control_msgs += 1;
    }
    // Migration: move the mailbox.
    let (new_tx, new_rx) = unbounded::<u64>();
    // Phase 2: location-update broadcast + acks, buffers flush.
    for c in &ctls {
        c.send(Ctl::Update(new_tx.clone())).unwrap();
        control_msgs += 1;
    }
    for _ in &ctls {
        ack_rx.recv().unwrap();
        control_msgs += 1;
    }
    drop(new_tx);
    // Hang up the control channels so sender tails observe disconnect.
    drop(ctls);

    let mut peak = 0u64;
    for j in joins {
        let (_sent, buffered) = j.join().unwrap();
        peak = peak.max(buffered);
    }
    // Everything sent pre-freeze sits in the old mailbox and must be
    // drained by the migrant before the move (counted as delivered).
    let delivered = old_rx.try_iter().count() as u64 + new_rx.try_iter().count() as u64;

    (
        Metrics {
            coordination_msgs: control_msgs,
            processes_disturbed: n_senders as u64 + 1,
            post_migration_extra_hops: 0.0,
            blocked_messages: peak,
            residual_dependency: false,
            state_bytes_moved: 0,
        },
        BroadcastOutcome {
            peak_buffered: peak,
            delivered,
        },
    )
}

/// One open-loop sender under the broadcast scheme: paces its schedule
/// against the shared epoch (payload = the scheduled nanosecond stamp)
/// while obeying freeze/update broadcasts. Returns
/// `(sent, max_buffered)`.
fn paced_sender(
    dest: Sender<u64>,
    ctl: Receiver<Ctl>,
    ack: Sender<()>,
    schedule: Vec<Offered>,
    epoch: Instant,
) -> (u64, u64) {
    struct PacedState {
        dest: Sender<u64>,
        buffer: Vec<u64>,
        frozen: bool,
        sent: u64,
    }
    fn service(st: &mut PacedState, ctl: &Receiver<Ctl>, ack: &Sender<()>) {
        while let Ok(c) = ctl.try_recv() {
            match c {
                Ctl::Freeze => {
                    st.frozen = true;
                    ack.send(()).unwrap();
                }
                Ctl::Update(new_dest) => {
                    st.dest = new_dest;
                    for m in st.buffer.drain(..) {
                        let _ = st.dest.send(m);
                        st.sent += 1;
                    }
                    st.frozen = false;
                    ack.send(()).unwrap();
                }
            }
        }
    }
    let mut st = PacedState {
        dest,
        buffer: Vec::new(),
        frozen: false,
        sent: 0,
    };
    let mut max_buffered = 0u64;
    for m in &schedule {
        // Sleep to the scheduled time in control-poll slices, so a
        // freeze broadcast is acked promptly even mid-gap.
        loop {
            service(&mut st, &ctl, &ack);
            let now = epoch.elapsed().as_nanos() as u64;
            if now >= m.at_ns {
                break;
            }
            thread::sleep(Duration::from_nanos((m.at_ns - now).min(200_000)));
        }
        if st.frozen {
            st.buffer.push(m.at_ns);
            max_buffered = max_buffered.max(st.buffer.len() as u64);
        } else {
            let _ = st.dest.send(m.at_ns);
            st.sent += 1;
        }
    }
    // Keep servicing the protocol until the manager hangs up, exactly
    // like the closed-loop sender: an unflushed buffer would otherwise
    // race the exit.
    while let Ok(c) = ctl.recv() {
        match c {
            Ctl::Freeze => {
                st.frozen = true;
                ack.send(()).unwrap();
            }
            Ctl::Update(new_dest) => {
                st.dest = new_dest;
                for m in st.buffer.drain(..) {
                    let _ = st.dest.send(m);
                    st.sent += 1;
                }
                st.frozen = false;
                ack.send(()).unwrap();
            }
        }
    }
    (st.sent, max_buffered)
}

/// Drive one ChaRM-style migration under an open-loop offered load: one
/// paced sender per entry of `schedules`, a freeze broadcast at
/// `freeze_at_ns`, the mailbox held down for `transfer` while the state
/// moves, then the location-update broadcast flushes every buffer.
/// Returns comparable [`Metrics`] plus phase-sliced service latencies —
/// the sender-stall window shows up as a post-unfreeze latency spike on
/// everything buffered, the §7 cost of broadcast+blocking schemes.
pub fn run_broadcast_load(
    schedules: &[Vec<Offered>],
    freeze_at_ns: u64,
    transfer: Duration,
    state_bytes: u64,
) -> (Metrics, LoadSamples) {
    let n_senders = schedules.len();
    let expected: u64 = schedules.iter().map(|s| s.len() as u64).sum();
    let epoch = Instant::now();
    let (old_tx, old_rx) = unbounded::<u64>();
    let (ack_tx, ack_rx) = unbounded::<()>();
    let mut ctls: Vec<Sender<Ctl>> = Vec::new();
    let mut joins = Vec::new();
    for sched in schedules {
        let (ctl_tx, ctl_rx) = unbounded();
        ctls.push(ctl_tx);
        let dest = old_tx.clone();
        let ack = ack_tx.clone();
        let sched = sched.clone();
        joins.push(thread::spawn(move || {
            paced_sender(dest, ctl_rx, ack, sched, epoch)
        }));
    }
    drop(old_tx);

    let mut samples = LoadSamples::default();
    let mut delivered = 0u64;
    let mut win = (freeze_at_ns, u64::MAX);
    let record = |samples: &mut LoadSamples, sched_ns: u64, win: (u64, u64)| {
        let now = epoch.elapsed().as_nanos() as u64;
        samples.push_at(now, win.0, win.1, now.saturating_sub(sched_ns));
    };

    // Steady state: the migrant drains its mailbox until the manager
    // decides to move it.
    loop {
        let now = epoch.elapsed().as_nanos() as u64;
        if now >= freeze_at_ns {
            break;
        }
        match old_rx.try_recv() {
            Ok(s) => {
                record(&mut samples, s, win);
                delivered += 1;
            }
            Err(_) => thread::yield_now(),
        }
    }

    let mut control_msgs = 0u64;
    for c in &ctls {
        c.send(Ctl::Freeze).unwrap();
        control_msgs += 1;
    }
    for _ in &ctls {
        ack_rx.recv().unwrap();
        control_msgs += 1;
    }
    // The migrant is down while its state (and mailbox) move.
    thread::sleep(transfer);
    let (new_tx, new_rx) = unbounded::<u64>();
    for c in &ctls {
        c.send(Ctl::Update(new_tx.clone())).unwrap();
        control_msgs += 1;
    }
    for _ in &ctls {
        ack_rx.recv().unwrap();
        control_msgs += 1;
    }
    win.1 = epoch.elapsed().as_nanos() as u64;
    drop(new_tx);
    drop(ctls);

    // Drain the old mailbox (pre-freeze stragglers travelled with the
    // checkpoint) and the new one until the whole offered load landed.
    while delivered < expected {
        let s = match old_rx.try_recv() {
            Ok(s) => s,
            Err(_) => match new_rx.try_recv() {
                Ok(s) => s,
                Err(_) => {
                    thread::yield_now();
                    continue;
                }
            },
        };
        record(&mut samples, s, win);
        delivered += 1;
    }

    let mut peak = 0u64;
    for j in joins {
        let (_sent, buffered) = j.join().unwrap();
        peak = peak.max(buffered);
    }
    (
        Metrics {
            coordination_msgs: control_msgs,
            processes_disturbed: n_senders as u64 + 1,
            post_migration_extra_hops: 0.0,
            blocked_messages: peak,
            residual_dependency: false,
            state_bytes_moved: state_bytes,
        },
        samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_traffic_is_linear_in_world_size() {
        let (m4, _) = run_broadcast_demo(4, 50);
        let (m8, _) = run_broadcast_demo(8, 50);
        assert_eq!(m4.coordination_msgs, 4 * 4);
        assert_eq!(m8.coordination_msgs, 4 * 8);
        assert_eq!(m8.processes_disturbed, 9);
    }

    #[test]
    fn no_message_loss_across_the_move() {
        let (_, out) = run_broadcast_demo(3, 100);
        assert_eq!(out.delivered, 300);
    }

    #[test]
    fn senders_buffer_while_frozen() {
        // With many messages per sender, some sends must land in the
        // frozen window and get buffered.
        let (m, out) = run_broadcast_demo(2, 2000);
        assert_eq!(out.delivered, 4000);
        // Peak buffering is timing-dependent but the window exists; we
        // only assert the accounting is consistent.
        assert_eq!(m.blocked_messages, out.peak_buffered);
    }

    #[test]
    fn single_sender_edge_case() {
        let (m, out) = run_broadcast_demo(1, 10);
        assert_eq!(m.coordination_msgs, 4);
        assert_eq!(out.delivered, 10);
    }

    fn uniform(n: u64, span_ns: u64) -> Vec<Offered> {
        (0..n)
            .map(|i| Offered {
                at_ns: i * span_ns / n,
                bytes: 64,
            })
            .collect()
    }

    #[test]
    fn load_run_coordination_stays_linear_and_stall_shows_in_tail() {
        // Four paced senders, freeze a third of the way in, 5 ms of
        // transfer: the buffered stall must surface as a latency spike
        // after the unfreeze, and control traffic stays exactly 4N no
        // matter the offered load.
        let schedules: Vec<Vec<Offered>> = (0..4).map(|_| uniform(120, 30_000_000)).collect();
        let (m, s) = run_broadcast_load(&schedules, 10_000_000, Duration::from_millis(5), 4096);
        assert_eq!(
            m.coordination_msgs,
            4 * 4,
            "freeze+ack+update+ack per sender"
        );
        assert_eq!(m.processes_disturbed, 5, "every sender plus the migrant");
        assert!(!m.residual_dependency);
        assert_eq!(s.total(), 4 * 120, "no loss across the move");
        assert!(
            m.blocked_messages > 0,
            "a 5 ms freeze across a paced load must buffer something"
        );
        // The flushed buffer lands late: the post-unfreeze tail must
        // show the stall (p99 well above the steady-state median).
        let pre_p50 = LoadSamples::quantile_us(&s.pre, 0.5).expect("pre samples");
        let post_p99 = LoadSamples::quantile_us(&s.post, 0.99).expect("post samples");
        assert!(
            post_p99 > pre_p50 + 2_000.0,
            "sender stall must dominate the post tail: pre p50 {pre_p50}, post p99 {post_p99}"
        );
    }

    #[test]
    fn load_run_world_size_scales_control_traffic() {
        let sched =
            |n: usize| -> Vec<Vec<Offered>> { (0..n).map(|_| uniform(20, 6_000_000)).collect() };
        let (m2, _) = run_broadcast_load(&sched(2), 2_000_000, Duration::from_millis(1), 0);
        let (m6, _) = run_broadcast_load(&sched(6), 2_000_000, Duration::from_millis(1), 0);
        assert_eq!(m2.coordination_msgs, 8);
        assert_eq!(m6.coordination_msgs, 24, "O(N) broadcast cost");
    }
}
