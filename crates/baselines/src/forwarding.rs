//! Message forwarding after migration (Mach / tmPVM / MPVM-indirect).
//!
//! The migrated process leaves a *forwarder* behind on the source host;
//! senders keep using the old address and every message pays an extra
//! hop per past migration. §7: "message forwarding can degrade
//! communication performance \[and\] dependencies between the migrating
//! process and source or original computers further make these systems
//! unsuitable for virtual machine environments where computers can join
//! and leave dynamically."

use crate::{LoadSamples, Metrics, Offered};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;
use std::time::{Duration, Instant};

/// A message whose hop count grows at each forwarder.
#[derive(Debug, Clone, PartialEq)]
pub struct Hopped {
    /// Message sequence number.
    pub seq: u64,
    /// Forwarding hops taken after leaving the sender.
    pub hops: u32,
    /// Payload size (bytes) for cost accounting.
    pub bytes: usize,
}

/// One live forwarder: relays everything from its inbox to the next
/// address, bumping the hop count. Dropping the handle stops the relay
/// (simulating the source host leaving) — messages still in its queue
/// are lost, which is exactly the residual-dependency failure.
pub struct Forwarder {
    stop: Sender<()>,
    join: Option<thread::JoinHandle<u64>>,
}

impl Forwarder {
    fn spawn(from: Receiver<Hopped>, to: Sender<Hopped>, hop_delay: Duration) -> Forwarder {
        let (stop_tx, stop_rx) = unbounded::<()>();
        let join = thread::spawn(move || {
            let mut relayed = 0u64;
            loop {
                crossbeam::channel::select! {
                    recv(from) -> msg => match msg {
                        Ok(mut m) => {
                            // The extra network traversal a relayed
                            // message pays on a real deployment.
                            if !hop_delay.is_zero() {
                                thread::sleep(hop_delay);
                            }
                            m.hops += 1;
                            if to.send(m).is_err() {
                                return relayed;
                            }
                            relayed += 1;
                        }
                        Err(_) => return relayed,
                    },
                    recv(stop_rx) -> _ => return relayed,
                }
            }
        });
        Forwarder {
            stop: stop_tx,
            join: Some(join),
        }
    }

    /// Stop the forwarder ("the source host leaves"); returns how many
    /// messages it relayed while alive.
    pub fn stop(mut self) -> u64 {
        let _ = self.stop.send(());
        self.join.take().map(|j| j.join().unwrap()).unwrap_or(0)
    }
}

/// A process address under the forwarding scheme. Senders hold the
/// *original* address forever — location updates never propagate.
pub struct ForwardingEndpoint {
    /// Address senders use (never changes).
    pub address: Sender<Hopped>,
    inbox: Receiver<Hopped>,
    forwarders: Vec<Forwarder>,
    migrations: u32,
}

impl Default for ForwardingEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl ForwardingEndpoint {
    /// A fresh process at its birth host.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        ForwardingEndpoint {
            address: tx,
            inbox: rx,
            forwarders: Vec::new(),
            migrations: 0,
        }
    }

    /// Migrate: the current inbox stays behind as a forwarder's input;
    /// a new inbox is created at the destination. Senders are *not*
    /// told anything.
    pub fn migrate(&mut self) {
        self.migrate_with_delay(Duration::ZERO);
    }

    /// [`migrate`](Self::migrate), with the relay charging `hop_delay`
    /// per forwarded message (the cost of the extra network traversal).
    pub fn migrate_with_delay(&mut self, hop_delay: Duration) {
        let (new_tx, new_rx) = unbounded();
        let old_rx = std::mem::replace(&mut self.inbox, new_rx);
        self.forwarders
            .push(Forwarder::spawn(old_rx, new_tx, hop_delay));
        self.migrations += 1;
    }

    /// Number of completed migrations (= forwarding-chain length).
    pub fn chain_len(&self) -> u32 {
        self.migrations
    }

    /// Receive the next message at the current location.
    pub fn recv(&self) -> Option<Hopped> {
        self.inbox.recv().ok()
    }

    /// Non-blocking receive at the current location.
    pub fn try_recv(&self) -> Option<Hopped> {
        self.inbox.try_recv().ok()
    }

    /// Tear down all forwarders (source hosts leave). Messages queued
    /// inside them are lost.
    pub fn drop_forwarders(&mut self) -> u64 {
        self.forwarders.drain(..).map(Forwarder::stop).sum()
    }
}

/// Drive the forwarding scheme: `msgs` messages are sent after each of
/// `migrations` migrations; returns comparable [`Metrics`] (hops grow
/// with chain length; the old hosts can never leave).
pub fn run_forwarding_demo(migrations: u32, msgs: u64, payload: usize) -> Metrics {
    let mut ep = ForwardingEndpoint::new();
    let mut seq = 0u64;
    let mut total_hops = 0u64;
    let mut delivered = 0u64;
    for _ in 0..migrations {
        ep.migrate();
    }
    for _ in 0..msgs {
        ep.address
            .send(Hopped {
                seq,
                hops: 0,
                bytes: payload,
            })
            .unwrap();
        seq += 1;
    }
    for _ in 0..msgs {
        let m = ep.recv().expect("forwarding chain delivers");
        total_hops += m.hops as u64;
        delivered += 1;
    }
    Metrics {
        // Migration itself is cheap: no peer coordination at all.
        coordination_msgs: 0,
        processes_disturbed: 1,
        post_migration_extra_hops: if delivered > 0 {
            total_hops as f64 / delivered as f64
        } else {
            0.0
        },
        blocked_messages: 0,
        residual_dependency: migrations > 0,
        state_bytes_moved: payload as u64, // one process's state
    }
}

/// Drive the forwarding scheme with an open-loop offered load: a sender
/// paces `schedule` against a shared epoch while the endpoint drains;
/// at `migrate_at_ns` the process migrates (leaving a forwarder that
/// charges `hop_delay` per relayed message) and is frozen for
/// `transfer` while its state moves. Returns comparable [`Metrics`]
/// plus phase-sliced service latencies — the hop tax shows up as a
/// permanent post-migration latency floor, which is the cost §7 holds
/// against Mach/tmPVM-style forwarding.
pub fn run_forwarding_load(
    schedule: &[Offered],
    migrate_at_ns: u64,
    transfer: Duration,
    hop_delay: Duration,
    state_bytes: u64,
) -> (Metrics, LoadSamples) {
    let epoch = Instant::now();
    let mut ep = ForwardingEndpoint::new();
    let address = ep.address.clone();
    let sched: Vec<Offered> = schedule.to_vec();
    let sender = thread::spawn(move || {
        for (seq, m) in sched.iter().enumerate() {
            let now = epoch.elapsed().as_nanos() as u64;
            if now < m.at_ns {
                thread::sleep(Duration::from_nanos(m.at_ns - now));
            }
            // The sender keeps using the birth address forever: under
            // forwarding, location updates never propagate.
            if address
                .send(Hopped {
                    seq: seq as u64,
                    hops: 0,
                    bytes: m.bytes as usize,
                })
                .is_err()
            {
                return;
            }
        }
    });

    let mut samples = LoadSamples::default();
    let mut delivered = 0u64;
    let mut relayed_hops = 0u64;
    let mut relayed_msgs = 0u64;
    let mut migrated = false;
    let mut win = (migrate_at_ns, u64::MAX);
    while delivered < schedule.len() as u64 {
        let now = epoch.elapsed().as_nanos() as u64;
        if !migrated && now >= migrate_at_ns {
            ep.migrate_with_delay(hop_delay);
            // The migrant is down while its state transfers: nothing
            // drains, traffic piles up behind the forwarder.
            thread::sleep(transfer);
            win.1 = epoch.elapsed().as_nanos() as u64;
            migrated = true;
        }
        match ep.try_recv() {
            Some(m) => {
                let now = epoch.elapsed().as_nanos() as u64;
                let lat = now.saturating_sub(schedule[m.seq as usize].at_ns);
                samples.push_at(now, win.0, win.1, lat);
                if m.hops > 0 {
                    relayed_hops += u64::from(m.hops);
                    relayed_msgs += 1;
                }
                delivered += 1;
            }
            None => thread::yield_now(),
        }
    }
    sender.join().unwrap();
    let residual = ep.chain_len() > 0;
    ep.drop_forwarders();
    (
        Metrics {
            coordination_msgs: 0,
            processes_disturbed: 1,
            post_migration_extra_hops: if relayed_msgs > 0 {
                relayed_hops as f64 / relayed_msgs as f64
            } else {
                0.0
            },
            blocked_messages: 0,
            residual_dependency: residual,
            state_bytes_moved: state_bytes,
        },
        samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_migration_no_hops() {
        let m = run_forwarding_demo(0, 10, 100);
        assert_eq!(m.post_migration_extra_hops, 0.0);
        assert!(!m.residual_dependency);
    }

    #[test]
    fn each_migration_adds_a_hop() {
        let m1 = run_forwarding_demo(1, 20, 100);
        assert_eq!(m1.post_migration_extra_hops, 1.0);
        assert!(m1.residual_dependency);
        let m3 = run_forwarding_demo(3, 20, 100);
        assert_eq!(m3.post_migration_extra_hops, 3.0);
    }

    #[test]
    fn messages_survive_while_forwarders_live() {
        let mut ep = ForwardingEndpoint::new();
        ep.migrate();
        ep.migrate();
        for seq in 0..5 {
            ep.address
                .send(Hopped {
                    seq,
                    hops: 0,
                    bytes: 8,
                })
                .unwrap();
        }
        for seq in 0..5 {
            let m = ep.recv().unwrap();
            assert_eq!(m.seq, seq, "forwarding preserves order");
            assert_eq!(m.hops, 2);
        }
        assert_eq!(ep.chain_len(), 2);
    }

    /// Build a uniform `Offered` schedule: `n` messages evenly spaced
    /// over `span_ns`.
    fn uniform(n: u64, span_ns: u64) -> Vec<Offered> {
        (0..n)
            .map(|i| Offered {
                at_ns: i * span_ns / n,
                bytes: 64,
            })
            .collect()
    }

    #[test]
    fn load_run_pays_residual_hops_that_grow_with_post_traffic() {
        // Migrate a third of the way in: every message offered after
        // the migration relays through the forwarder, so the mean
        // relayed hop count is pinned at 1 and the number of taxed
        // messages grows with the post-migration share of the load.
        let schedule = uniform(300, 30_000_000);
        let (m, s) = run_forwarding_load(
            &schedule,
            10_000_000,
            Duration::from_millis(2),
            Duration::ZERO,
            4096,
        );
        assert_eq!(m.post_migration_extra_hops, 1.0, "one migration = one hop");
        assert!(m.residual_dependency, "forwarder must stay alive");
        assert_eq!(m.coordination_msgs, 0, "forwarding migrates silently");
        assert_eq!(s.total(), 300, "open loop delivers the whole schedule");
        assert!(!s.pre.is_empty(), "steady state before the migration");
        assert!(!s.post.is_empty(), "taxed traffic after the migration");

        // An earlier migration leaves more of the load on the taxed
        // side of the window: the residual cost scales with how much
        // traffic follows the migration, not with the migration itself.
        let (_, early) = run_forwarding_load(
            &schedule,
            2_000_000,
            Duration::from_millis(2),
            Duration::ZERO,
            4096,
        );
        assert!(
            early.post.len() > s.post.len(),
            "earlier migration ⇒ more taxed messages: {} vs {}",
            early.post.len(),
            s.post.len()
        );
    }

    #[test]
    fn hop_delay_inflates_post_migration_latency() {
        let schedule = uniform(120, 24_000_000);
        let (_, s) = run_forwarding_load(
            &schedule,
            8_000_000,
            Duration::from_millis(1),
            Duration::from_micros(300),
            0,
        );
        let pre = LoadSamples::quantile_us(&s.pre, 0.5).expect("pre samples");
        let post = LoadSamples::quantile_us(&s.post, 0.5).expect("post samples");
        assert!(
            post > pre,
            "hop tax must lift the post-migration median: pre {pre} post {post}"
        );
    }

    #[test]
    fn dead_forwarder_breaks_delivery() {
        // The residual-dependency failure: once the source host leaves,
        // traffic to the old address goes nowhere.
        let mut ep = ForwardingEndpoint::new();
        ep.migrate();
        // Let the forwarder drain nothing, then kill it.
        ep.drop_forwarders();
        // The old address is now a dead letterbox: sends fail outright
        // (or, on a real network, vanish) and nothing reaches the new
        // inbox. SNOW has no such dependency (§7).
        let send_result = ep.address.send(Hopped {
            seq: 0,
            hops: 0,
            bytes: 8,
        });
        assert!(send_result.is_err(), "old host gone ⇒ address dead");
        assert!(ep
            .inbox
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
    }
}
