//! Message forwarding after migration (Mach / tmPVM / MPVM-indirect).
//!
//! The migrated process leaves a *forwarder* behind on the source host;
//! senders keep using the old address and every message pays an extra
//! hop per past migration. §7: "message forwarding can degrade
//! communication performance \[and\] dependencies between the migrating
//! process and source or original computers further make these systems
//! unsuitable for virtual machine environments where computers can join
//! and leave dynamically."

use crate::Metrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;

/// A message whose hop count grows at each forwarder.
#[derive(Debug, Clone, PartialEq)]
pub struct Hopped {
    /// Message sequence number.
    pub seq: u64,
    /// Forwarding hops taken after leaving the sender.
    pub hops: u32,
    /// Payload size (bytes) for cost accounting.
    pub bytes: usize,
}

/// One live forwarder: relays everything from its inbox to the next
/// address, bumping the hop count. Dropping the handle stops the relay
/// (simulating the source host leaving) — messages still in its queue
/// are lost, which is exactly the residual-dependency failure.
pub struct Forwarder {
    stop: Sender<()>,
    join: Option<thread::JoinHandle<u64>>,
}

impl Forwarder {
    fn spawn(from: Receiver<Hopped>, to: Sender<Hopped>) -> Forwarder {
        let (stop_tx, stop_rx) = unbounded::<()>();
        let join = thread::spawn(move || {
            let mut relayed = 0u64;
            loop {
                crossbeam::channel::select! {
                    recv(from) -> msg => match msg {
                        Ok(mut m) => {
                            m.hops += 1;
                            if to.send(m).is_err() {
                                return relayed;
                            }
                            relayed += 1;
                        }
                        Err(_) => return relayed,
                    },
                    recv(stop_rx) -> _ => return relayed,
                }
            }
        });
        Forwarder {
            stop: stop_tx,
            join: Some(join),
        }
    }

    /// Stop the forwarder ("the source host leaves"); returns how many
    /// messages it relayed while alive.
    pub fn stop(mut self) -> u64 {
        let _ = self.stop.send(());
        self.join.take().map(|j| j.join().unwrap()).unwrap_or(0)
    }
}

/// A process address under the forwarding scheme. Senders hold the
/// *original* address forever — location updates never propagate.
pub struct ForwardingEndpoint {
    /// Address senders use (never changes).
    pub address: Sender<Hopped>,
    inbox: Receiver<Hopped>,
    forwarders: Vec<Forwarder>,
    migrations: u32,
}

impl Default for ForwardingEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl ForwardingEndpoint {
    /// A fresh process at its birth host.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        ForwardingEndpoint {
            address: tx,
            inbox: rx,
            forwarders: Vec::new(),
            migrations: 0,
        }
    }

    /// Migrate: the current inbox stays behind as a forwarder's input;
    /// a new inbox is created at the destination. Senders are *not*
    /// told anything.
    pub fn migrate(&mut self) {
        let (new_tx, new_rx) = unbounded();
        let old_rx = std::mem::replace(&mut self.inbox, new_rx);
        self.forwarders.push(Forwarder::spawn(old_rx, new_tx));
        self.migrations += 1;
    }

    /// Number of completed migrations (= forwarding-chain length).
    pub fn chain_len(&self) -> u32 {
        self.migrations
    }

    /// Receive the next message at the current location.
    pub fn recv(&self) -> Option<Hopped> {
        self.inbox.recv().ok()
    }

    /// Tear down all forwarders (source hosts leave). Messages queued
    /// inside them are lost.
    pub fn drop_forwarders(&mut self) -> u64 {
        self.forwarders.drain(..).map(Forwarder::stop).sum()
    }
}

/// Drive the forwarding scheme: `msgs` messages are sent after each of
/// `migrations` migrations; returns comparable [`Metrics`] (hops grow
/// with chain length; the old hosts can never leave).
pub fn run_forwarding_demo(migrations: u32, msgs: u64, payload: usize) -> Metrics {
    let mut ep = ForwardingEndpoint::new();
    let mut seq = 0u64;
    let mut total_hops = 0u64;
    let mut delivered = 0u64;
    for _ in 0..migrations {
        ep.migrate();
    }
    for _ in 0..msgs {
        ep.address
            .send(Hopped {
                seq,
                hops: 0,
                bytes: payload,
            })
            .unwrap();
        seq += 1;
    }
    for _ in 0..msgs {
        let m = ep.recv().expect("forwarding chain delivers");
        total_hops += m.hops as u64;
        delivered += 1;
    }
    Metrics {
        // Migration itself is cheap: no peer coordination at all.
        coordination_msgs: 0,
        processes_disturbed: 1,
        post_migration_extra_hops: if delivered > 0 {
            total_hops as f64 / delivered as f64
        } else {
            0.0
        },
        blocked_messages: 0,
        residual_dependency: migrations > 0,
        state_bytes_moved: payload as u64, // one process's state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_migration_no_hops() {
        let m = run_forwarding_demo(0, 10, 100);
        assert_eq!(m.post_migration_extra_hops, 0.0);
        assert!(!m.residual_dependency);
    }

    #[test]
    fn each_migration_adds_a_hop() {
        let m1 = run_forwarding_demo(1, 20, 100);
        assert_eq!(m1.post_migration_extra_hops, 1.0);
        assert!(m1.residual_dependency);
        let m3 = run_forwarding_demo(3, 20, 100);
        assert_eq!(m3.post_migration_extra_hops, 3.0);
    }

    #[test]
    fn messages_survive_while_forwarders_live() {
        let mut ep = ForwardingEndpoint::new();
        ep.migrate();
        ep.migrate();
        for seq in 0..5 {
            ep.address
                .send(Hopped {
                    seq,
                    hops: 0,
                    bytes: 8,
                })
                .unwrap();
        }
        for seq in 0..5 {
            let m = ep.recv().unwrap();
            assert_eq!(m.seq, seq, "forwarding preserves order");
            assert_eq!(m.hops, 2);
        }
        assert_eq!(ep.chain_len(), 2);
    }

    #[test]
    fn dead_forwarder_breaks_delivery() {
        // The residual-dependency failure: once the source host leaves,
        // traffic to the old address goes nowhere.
        let mut ep = ForwardingEndpoint::new();
        ep.migrate();
        // Let the forwarder drain nothing, then kill it.
        ep.drop_forwarders();
        // The old address is now a dead letterbox: sends fail outright
        // (or, on a real network, vanish) and nothing reaches the new
        // inbox. SNOW has no such dependency (§7).
        let send_result = ep.address.send(Hopped {
            seq: 0,
            hops: 0,
            bytes: 8,
        });
        assert!(send_result.is_err(), "old host gone ⇒ address dead");
        assert!(ep
            .inbox
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
    }
}
