//! Cross-strategy property test: SNOW's analytic cost model dominates
//! the three §7 comparator systems on the paper's axes — coordination
//! traffic, disturbance, forwarding hops, residual dependency, state
//! moved — for the same migration scenario.
//!
//! Scope: the paper's *sparse* regime. SNOW coordinates only the
//! migrant's directly connected peers (§3), and the paper's argument is
//! about large worlds where `peers ≪ N`. We therefore generate
//! `peers ≤ min(4, N − 2)` with `N ≥ 5`: in a tiny dense world (e.g.
//! N = 4 with 3 peers) broadcast's 4·N control messages can undercut
//! SNOW's 3·peers + 5 handshake, which is consistent with §7 — the
//! broadcast schemes fail to *scale*, they are not wrong at toy sizes.

use proptest::prelude::*;
use snow_baselines::{
    broadcast::run_broadcast_demo, cocheck::run_cocheck_migration, forwarding::run_forwarding_demo,
    snow_reference_metrics,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snow_dominates_on_the_papers_axes(
        n in 5usize..=12,
        peers_raw in 1u64..=4,
        state in 64u64..=4096,
        msgs in 10u64..=60,
    ) {
        let peers = peers_raw.min(n as u64 - 2);
        let snow = snow_reference_metrics(peers, state);

        // Forwarding: cheap coordination, but a permanent hop tax and a
        // residual dependency on the source host. SNOW has neither.
        let fwd = run_forwarding_demo(1, msgs, state as usize);
        prop_assert!(snow.post_migration_extra_hops < fwd.post_migration_extra_hops);
        prop_assert!(!snow.residual_dependency && fwd.residual_dependency);

        // Broadcast+blocking: Θ(N) control traffic and every sender
        // disturbed. SNOW touches only the connected peers and never
        // blocks a sender.
        let (bc, _) = run_broadcast_demo(n, msgs);
        prop_assert!(snow.coordination_msgs < bc.coordination_msgs,
            "3p+5 = {} vs 4N = {}", snow.coordination_msgs, bc.coordination_msgs);
        prop_assert!(snow.processes_disturbed < bc.processes_disturbed);
        prop_assert!(snow.blocked_messages == 0 && snow.blocked_messages <= bc.blocked_messages);

        // Coordinated checkpointing: O(N²) markers, all N processes
        // disturbed, everyone's state stored. SNOW moves one process's
        // state and leaves non-neighbours untouched.
        let cc = run_cocheck_migration(n, msgs.min(20), 0, state).metrics;
        prop_assert!(snow.coordination_msgs < cc.coordination_msgs,
            "3p+5 = {} vs N(N-1) = {}", snow.coordination_msgs, cc.coordination_msgs);
        prop_assert!(snow.processes_disturbed < cc.processes_disturbed);
        prop_assert!(snow.state_bytes_moved < cc.state_bytes_moved);
    }
}
