//! Kernel MG over the SNOW protocol, with and without migration — the
//! §6 case study as an executable correctness check: "the experimental
//! outputs with and without the migration are identical".

use snow_core::Computation;
use snow_mg::{mg_app, MgConfig, MgResult};
use snow_vm::HostSpec;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn run_snow_mg(cfg: MgConfig, migrate_rank: Option<usize>) -> HashMap<usize, MgResult> {
    let results = Arc::new(Mutex::new(HashMap::new()));
    // One host per rank plus a spare destination, like the paper's
    // testbed (8 workers + scheduler host + destination).
    let comp = Computation::builder()
        .hosts(HostSpec::ideal(), cfg.nprocs + 2)
        .build();
    let spare = comp.hosts()[cfg.nprocs + 1];
    let handles = comp.launch(cfg.nprocs, mg_app(cfg, Arc::clone(&results)));
    if let Some(rank) = migrate_rank {
        // Fire mid-run; the rank polls at iteration boundaries, so the
        // request is intercepted at whichever boundary comes next.
        comp.migrate(rank, spare).expect("migration commits");
    }
    for h in handles {
        h.join().unwrap();
    }
    comp.join_init_processes();
    // The scheduler's executable image keeps a reference to the app
    // closure (and thus to `results`), so clone the map out.
    let map = results.lock().unwrap().clone();
    assert_eq!(map.len(), cfg.nprocs, "every rank must report a result");
    map
}

#[test]
fn mg_converges_over_snow() {
    let cfg = MgConfig::small(4);
    let res = run_snow_mg(cfg, None);
    let r = &res[&0].residuals;
    assert_eq!(r.len(), cfg.iterations);
    assert!(r.last().unwrap() < r.first().unwrap(), "{r:?}");
}

#[test]
fn migration_does_not_change_the_answer() {
    // The paper's headline correctness result: outputs with and without
    // migration are identical. We check bit-exact equality of every
    // rank's final slab and the residual history.
    let cfg = MgConfig::small(4);
    let base = run_snow_mg(cfg, None);
    let migr = run_snow_mg(cfg, Some(0));
    for rank in 0..cfg.nprocs {
        assert_eq!(
            base[&rank].residuals, migr[&rank].residuals,
            "rank {rank} residual history changed"
        );
        assert_eq!(
            base[&rank].slab.as_slice(),
            migr[&rank].slab.as_slice(),
            "rank {rank} final field changed"
        );
    }
}

#[test]
fn migrating_a_middle_rank_also_preserves_results() {
    let cfg = MgConfig::small(4);
    let base = run_snow_mg(cfg, None);
    let migr = run_snow_mg(cfg, Some(2));
    for rank in 0..cfg.nprocs {
        assert_eq!(base[&rank].slab.as_slice(), migr[&rank].slab.as_slice());
    }
}

#[test]
fn paper_shape_run_with_migration() {
    // The paper's actual configuration (8 ranks, 64³-message shape) at
    // reduced iteration count to keep test time sane.
    let cfg = MgConfig {
        n: 32,
        nprocs: 8,
        iterations: 3,
        levels: 3,
        ..MgConfig::default()
    };
    let base = run_snow_mg(cfg, None);
    let migr = run_snow_mg(cfg, Some(0));
    for rank in 0..cfg.nprocs {
        assert_eq!(base[&rank].slab.as_slice(), migr[&rank].slab.as_slice());
    }
    let r = &migr[&0].residuals;
    assert!(r.last().unwrap() < r.first().unwrap());
}
